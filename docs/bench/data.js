window.BENCHMARK_DATA = {
  "entries": {
    "Flicker bench trajectory": [
      {
        "benches": [
          {
            "name": "apps/ca/p50_ms",
            "unit": "ms",
            "value": 1174.4051200000001
          },
          {
            "name": "apps/ca/p95_ms",
            "unit": "ms",
            "value": 1174.4051200000001
          },
          {
            "name": "apps/distcomp/p50_ms",
            "unit": "ms",
            "value": 957.8784
          },
          {
            "name": "apps/distcomp/p95_ms",
            "unit": "ms",
            "value": 957.8784
          },
          {
            "name": "apps/rootkit/p50_ms",
            "unit": "ms",
            "value": 1027.064784
          },
          {
            "name": "apps/rootkit/p95_ms",
            "unit": "ms",
            "value": 1027.064784
          },
          {
            "name": "apps/ssh/p50_ms",
            "unit": "ms",
            "value": 2113.929216
          },
          {
            "name": "apps/ssh/p95_ms",
            "unit": "ms",
            "value": 2214.5925119999997
          },
          {
            "name": "apps/storage/p50_ms",
            "unit": "ms",
            "value": 1947.2299400000002
          },
          {
            "name": "apps/storage/p95_ms",
            "unit": "ms",
            "value": 1947.2299400000002
          },
          {
            "name": "sessions",
            "unit": "",
            "value": 250
          }
        ],
        "commit": {
          "id": "2c90dcf",
          "message": "",
          "url": ""
        },
        "date": 0,
        "tool": "customSmallerIsBetter"
      },
      {
        "benches": [
          {
            "name": "farm/done",
            "unit": "",
            "value": 200
          },
          {
            "name": "farm/failed",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm/machines",
            "unit": "",
            "value": 8
          },
          {
            "name": "farm/p50_ms",
            "unit": "ms",
            "value": 1341.696993
          },
          {
            "name": "farm/p95_ms",
            "unit": "ms",
            "value": 3322.4910630000004
          },
          {
            "name": "farm/p99_ms",
            "unit": "ms",
            "value": 3895.288985
          },
          {
            "name": "farm/quarantines",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm/requests",
            "unit": "",
            "value": 200
          },
          {
            "name": "farm/requeues",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm/retries",
            "unit": "",
            "value": 84
          },
          {
            "name": "farm/sessions_per_sec",
            "unit": "",
            "value": 37.540733086752546
          },
          {
            "name": "farm/shed",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm/timed_out",
            "unit": "",
            "value": 0
          }
        ],
        "commit": {
          "id": "ac5e647",
          "message": "",
          "url": ""
        },
        "date": 1,
        "tool": "customSmallerIsBetter"
      },
      {
        "benches": [
          {
            "name": "apps/ca/p50_ms",
            "unit": "ms",
            "value": 1174.4051200000001
          },
          {
            "name": "apps/ca/p95_ms",
            "unit": "ms",
            "value": 1174.4051200000001
          },
          {
            "name": "apps/distcomp/p50_ms",
            "unit": "ms",
            "value": 956.301312
          },
          {
            "name": "apps/distcomp/p95_ms",
            "unit": "ms",
            "value": 956.301312
          },
          {
            "name": "apps/rootkit/p50_ms",
            "unit": "ms",
            "value": 1027.064784
          },
          {
            "name": "apps/rootkit/p95_ms",
            "unit": "ms",
            "value": 1027.064784
          },
          {
            "name": "apps/ssh/p50_ms",
            "unit": "ms",
            "value": 2113.929216
          },
          {
            "name": "apps/ssh/p95_ms",
            "unit": "ms",
            "value": 2198.081267
          },
          {
            "name": "apps/storage/p50_ms",
            "unit": "ms",
            "value": 1923.66122
          },
          {
            "name": "apps/storage/p95_ms",
            "unit": "ms",
            "value": 1923.66122
          },
          {
            "name": "sessions",
            "unit": "",
            "value": 250
          },
          {
            "name": "warm/ssh/cold_p50_ms",
            "unit": "ms",
            "value": 2140.6600080000003
          },
          {
            "name": "warm/ssh/speedup",
            "unit": "",
            "value": 1.0014034037165747
          },
          {
            "name": "warm/ssh/warm_p50_ms",
            "unit": "ms",
            "value": 2137.6600080000003
          },
          {
            "name": "warm/storage_refresh/cold_p50_ms",
            "unit": "ms",
            "value": 922.74296
          },
          {
            "name": "warm/storage_refresh/speedup",
            "unit": "",
            "value": 1.014512783431362
          },
          {
            "name": "warm/storage_refresh/warm_p50_ms",
            "unit": "ms",
            "value": 909.54296
          },
          {
            "name": "warm/warm_hits",
            "unit": "",
            "value": 196
          },
          {
            "name": "warm/warm_misses",
            "unit": "",
            "value": 30
          }
        ],
        "commit": {
          "id": "7c1e090",
          "message": "",
          "url": ""
        },
        "date": 2,
        "tool": "customSmallerIsBetter"
      },
      {
        "benches": [
          {
            "name": "farm/done",
            "unit": "",
            "value": 200
          },
          {
            "name": "farm/failed",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm/machines",
            "unit": "",
            "value": 8
          },
          {
            "name": "farm/p50_ms",
            "unit": "ms",
            "value": 1328.082905
          },
          {
            "name": "farm/p95_ms",
            "unit": "ms",
            "value": 3342.772148
          },
          {
            "name": "farm/p99_ms",
            "unit": "ms",
            "value": 3871.851545
          },
          {
            "name": "farm/quarantines",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm/requests",
            "unit": "",
            "value": 200
          },
          {
            "name": "farm/requeues",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm/retries",
            "unit": "",
            "value": 84
          },
          {
            "name": "farm/sessions_per_sec",
            "unit": "",
            "value": 58.95614312324069
          },
          {
            "name": "farm/shed",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm/timed_out",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/categories/cpu_ms",
            "unit": "ms",
            "value": 21020.96585
          },
          {
            "name": "farm_attr/categories/net_ms",
            "unit": "ms",
            "value": 1972.00613
          },
          {
            "name": "farm_attr/categories/queue_wait_ms",
            "unit": "ms",
            "value": 2077.0760290000003
          },
          {
            "name": "farm_attr/categories/retry_backoff_ms",
            "unit": "ms",
            "value": 518.8623180000001
          },
          {
            "name": "farm_attr/categories/skinit_ms",
            "unit": "ms",
            "value": 4923.40024
          },
          {
            "name": "farm_attr/categories/tpm_backoff_ms",
            "unit": "ms",
            "value": 95
          },
          {
            "name": "farm_attr/categories/tpm_ms",
            "unit": "ms",
            "value": 304767.15264
          },
          {
            "name": "farm_attr/categories/warm_saved_oiap_ms",
            "unit": "ms",
            "value": 663
          },
          {
            "name": "farm_attr/categories/warm_saved_seal_ms",
            "unit": "ms",
            "value": 448.79999999999995
          },
          {
            "name": "farm_attr/min_coverage",
            "unit": "",
            "value": 1
          },
          {
            "name": "farm_attr/outliers",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/unattributed_ms",
            "unit": "ms",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/ca/breaches",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/ca/burn",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/ca/worst_ms",
            "unit": "ms",
            "value": 2433.802977
          },
          {
            "name": "farm_attr/workloads/distcomp/breaches",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/distcomp/burn",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/distcomp/worst_ms",
            "unit": "ms",
            "value": 1925.083473
          },
          {
            "name": "farm_attr/workloads/rootkit/breaches",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/rootkit/burn",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/rootkit/worst_ms",
            "unit": "ms",
            "value": 2141.206234
          },
          {
            "name": "farm_attr/workloads/ssh/breaches",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/ssh/burn",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/ssh/worst_ms",
            "unit": "ms",
            "value": 4339.172439
          },
          {
            "name": "farm_attr/workloads/storage/breaches",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/storage/burn",
            "unit": "",
            "value": 0
          },
          {
            "name": "farm_attr/workloads/storage/worst_ms",
            "unit": "ms",
            "value": 3900.670333
          }
        ],
        "commit": {
          "id": "1333357",
          "message": "",
          "url": ""
        },
        "date": 3,
        "tool": "customSmallerIsBetter"
      },
      {
        "benches": [
          {
            "name": "apps/ca/p50_ms",
            "unit": "ms",
            "value": 1153.394
          },
          {
            "name": "apps/ca/p95_ms",
            "unit": "ms",
            "value": 1193.954
          },
          {
            "name": "apps/distcomp/p50_ms",
            "unit": "ms",
            "value": 955.76592
          },
          {
            "name": "apps/distcomp/p95_ms",
            "unit": "ms",
            "value": 955.76592
          },
          {
            "name": "apps/rootkit/p50_ms",
            "unit": "ms",
            "value": 1027.218356
          },
          {
            "name": "apps/rootkit/p95_ms",
            "unit": "ms",
            "value": 1027.610167
          },
          {
            "name": "apps/ssh/p50_ms",
            "unit": "ms",
            "value": 2130.735892
          },
          {
            "name": "apps/ssh/p95_ms",
            "unit": "ms",
            "value": 2186.911954
          },
          {
            "name": "apps/storage/p50_ms",
            "unit": "ms",
            "value": 1923.66122
          },
          {
            "name": "apps/storage/p95_ms",
            "unit": "ms",
            "value": 1923.66122
          },
          {
            "name": "profile/attribution/TPM_Quote",
            "unit": "",
            "value": 0.96
          },
          {
            "name": "profile/attribution/TPM_Seal",
            "unit": "",
            "value": 0.92
          },
          {
            "name": "profile/attribution/TPM_Unseal",
            "unit": "",
            "value": 0.94
          },
          {
            "name": "profile/reconciliation_error",
            "unit": "",
            "value": 0
          },
          {
            "name": "profile/session_total_ms",
            "unit": "ms",
            "value": 130614.24975
          },
          {
            "name": "profile/top_stacks/(untraced);tpm.TPM_Quote;modmul",
            "unit": "",
            "value": 0.2550465347205728
          },
          {
            "name": "profile/top_stacks/session;phase.pal",
            "unit": "",
            "value": 0.05588290530627451
          },
          {
            "name": "profile/top_stacks/session;phase.pal;tpm.TPM_Unseal",
            "unit": "",
            "value": 0.03769890255844711
          },
          {
            "name": "profile/top_stacks/session;phase.pal;tpm.TPM_Unseal;modmul",
            "unit": "",
            "value": 0.5780498392295224
          },
          {
            "name": "profile/top_stacks/session;phase.skinit",
            "unit": "",
            "value": 0.014136999198235137
          },
          {
            "name": "profile/total_ms",
            "unit": "ms",
            "value": 179249.24975
          },
          {
            "name": "sessions",
            "unit": "",
            "value": 250
          }
        ],
        "commit": {
          "id": "f8e3f81",
          "message": "",
          "url": ""
        },
        "date": 4,
        "tool": "customSmallerIsBetter"
      }
    ]
  },
  "lastUpdate": 5,
  "repoUrl": ""
}
;
