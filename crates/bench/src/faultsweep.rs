//! Seeded fault-injection sweep across the paper's §6 applications.
//!
//! Each schedule derives a [`FaultPlan`] from its seed, arms a fresh
//! platform (machine, TPM, network link) with the injector, and drives one
//! application through its normal protocol. The contract under test:
//!
//! * **Survived** — the protocol completed with *correct* results despite
//!   the injected faults (retries absorbed them).
//! * **Recovered** — the protocol failed with a clean error, but the
//!   platform invariants hold (OS resumed, no suspend state leaked, DEV
//!   protections lifted, no secret residue in RAM), a disarmed follow-up
//!   session succeeds, and any replay-protected state sealed before the
//!   fault is still readable.
//! * **Violation** — anything else: a panic, a leaked invariant, secret
//!   bytes in RAM, or permanently unreadable sealed storage.
//!
//! A correct implementation produces zero violations for every seed.

use flicker_apps::{
    known_good_hash, Administrator, BoincClient, Csr, FlickerCa, IssuancePolicy, PasswdEntry,
    SshClient, SshServer, WorkUnit,
};
use flicker_core::{
    run_session, FlickerResult, NativePal, PalContext, PalPayload, ReplayProtectedStorage,
    SessionParams, SlbImage, SlbOptions,
};
use flicker_crypto::rng::XorShiftRng;
use flicker_crypto::{RsaPrivateKey, RsaPublicKey};
use flicker_faults::{FaultCounts, FaultInjector, FaultPlan};
use flicker_os::{NetLink, Os, OsConfig};
use flicker_tpm::{AikCertificate, PrivacyCa, SealedBlob};
use flicker_trace::{audit, Event, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// The applications the sweep rotates through, by `seed % 5`. The last is
/// a replay-protected-storage workload — the only one that writes TPM NV,
/// so it is what torn-NV-write faults exercise.
pub const APPS: [&str; 5] = ["rootkit", "ssh", "distcomp", "ca", "storage"];

/// The SSH trial's password: a recognisable byte string that must never
/// appear in simulated RAM after a session, faulted or not.
const SSH_PASSWORD: &[u8] = b"SWEEP-SECRET-hunter2";

/// NV index for the storage trial (distinct from any test's).
const SWEEP_NV_INDEX: u32 = 0x0001_4000;

/// How one schedule ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Protocol completed with correct results despite the faults.
    Survived,
    /// Protocol failed cleanly (the carried message) and the platform
    /// recovered fully.
    Recovered(String),
    /// The robustness contract was broken.
    Violation(String),
}

/// One schedule's result.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The schedule's fault-plan seed.
    pub seed: u64,
    /// Which application scenario ran.
    pub app: &'static str,
    /// How the schedule ended.
    pub outcome: Outcome,
    /// Faults the plan actually fired.
    pub faults: FaultCounts,
    /// The schedule's flight record, kept only when the outcome is a
    /// violation (so a failing sweep can dump exactly what the platform
    /// did); empty otherwise.
    pub flight_record: Vec<Event>,
}

/// The whole sweep's results plus aggregate counts.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Every schedule's individual result.
    pub results: Vec<ScheduleResult>,
    /// Schedules that completed with no fault landing.
    pub survived: usize,
    /// Schedules that hit faults and recovered correctly.
    pub recovered: usize,
    /// Schedules that broke the robustness contract.
    pub violations: usize,
    /// Total faults fired across the sweep.
    pub faults_fired: u64,
}

impl SweepReport {
    /// The schedules that broke the contract (for failure reports).
    pub fn violating(&self) -> impl Iterator<Item = &ScheduleResult> {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Violation(_)))
    }
}

/// Runs `schedules` seeded schedules starting at `base_seed`.
pub fn run_sweep(base_seed: u64, schedules: u64) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in base_seed..base_seed + schedules {
        let result = run_schedule(seed);
        match &result.outcome {
            Outcome::Survived => report.survived += 1,
            Outcome::Recovered(_) => report.recovered += 1,
            Outcome::Violation(_) => report.violations += 1,
        }
        report.faults_fired += result.faults.total();
        report.results.push(result);
    }
    report
}

/// Runs one seeded schedule: provision, arm faults, drive the app, then
/// classify against the recovery contract.
pub fn run_schedule(seed: u64) -> ScheduleResult {
    let app = APPS[(seed % APPS.len() as u64) as usize];
    let mut os = Os::boot(OsConfig::fast_for_tests((seed % 211) as u8 + 1));
    let mut link = NetLink::paper_verifier_link(seed);
    // Every schedule flies with the recorder on: after classification the
    // event stream is replayed through the paper-invariant auditor, and on
    // a violation it is kept for the post-mortem dump.
    let trace = Trace::new();
    os.set_tracer(trace.clone());
    link.set_tracer(trace.clone());
    link.set_clock(os.clock());

    // Provisioning (Privacy-CA interaction, AIK certification) is
    // manufacture-time setup, not the protocol under test: it happens
    // before the faults are armed.
    let attested = matches!(app, "rootkit" | "ssh");
    let (cert, ca_public) = if attested {
        let mut rng = XorShiftRng::new(seed.wrapping_add(9_000));
        let mut pca = PrivacyCa::new(512, &mut rng);
        os.provision_attestation(&mut pca, "sweep-host")
            .expect("fault-free provisioning");
        (
            Some(os.aik_certificate().expect("just provisioned").clone()),
            Some(pca.public_key().clone()),
        )
    } else {
        (None, None)
    };

    let inj = FaultInjector::new(&FaultPlan::seeded(seed));
    os.machine_mut().set_fault_injector(inj.clone());
    link.set_fault_injector(inj.clone());

    // The storage trial records the newest blob that *escaped* a session
    // (reached the untrusted OS), with the data it should decrypt to.
    let mut last_blob: Option<(Vec<u8>, Vec<u8>)> = None;

    let trial = catch_unwind(AssertUnwindSafe(|| match app {
        "rootkit" => rootkit_trial(
            &mut os,
            link,
            cert.as_ref().expect("provisioned"),
            ca_public.clone().expect("provisioned"),
            seed,
        ),
        "ssh" => ssh_trial(
            &mut os,
            &mut link,
            seed,
            cert.as_ref().expect("provisioned"),
            ca_public.clone().expect("provisioned"),
        ),
        "distcomp" => distcomp_trial(&mut os),
        "ca" => ca_trial(&mut os, seed),
        _ => storage_trial(&mut os, &mut last_blob),
    }));

    let faults = inj.counts();
    os.machine_mut().clear_fault_injector();

    let outcome = match trial {
        Err(_) => Outcome::Violation("panic during schedule".into()),
        Ok(Ok(())) if os.machine().power_lost() => {
            // A protocol must never claim success on a machine that died
            // under it.
            Outcome::Violation("protocol succeeded on a dead machine".into())
        }
        Ok(result) => {
            if os.machine().power_lost() {
                // Power died *outside* a session (e.g. during the tqd
                // quote), where no resume guard runs. Restoring power
                // reboots the machine, exactly as the guard does for
                // in-session losses; the invariant and probe checks below
                // then hold the rebooted platform to the same contract.
                os.reboot_after_power_loss();
            }
            classify(&mut os, result, &last_blob)
        }
    };
    // The trace audit is part of the robustness contract: a schedule that
    // "recovered" but whose flight record shows a Figure-2 invariant broken
    // (a resume without erasure, an unmeasured unseal) is a violation. A
    // truncated stream is a violation too — an audit that only saw the
    // surviving suffix of the ring buffer proves nothing, and letting it
    // pass for clean would hide exactly the long, fault-heavy schedules
    // most likely to break an invariant.
    let events = trace.events();
    let outcome = match outcome {
        Outcome::Violation(v) => Outcome::Violation(v),
        other => match audit::audit_trace(&trace) {
            verdict if verdict.is_clean() => other,
            verdict => match verdict.violations().first() {
                Some(v) => Outcome::Violation(format!("trace audit: {v}")),
                None => Outcome::Violation(format!("trace audit {verdict}")),
            },
        },
    };
    let flight_record = if matches!(outcome, Outcome::Violation(_)) {
        events
    } else {
        Vec::new()
    };
    ScheduleResult {
        seed,
        app,
        outcome,
        faults,
        flight_record,
    }
}

/// The post-trial contract, shared by success and failure paths.
fn classify(
    os: &mut Os,
    result: Result<(), String>,
    last_blob: &Option<(Vec<u8>, Vec<u8>)>,
) -> Outcome {
    if let Err(v) = platform_invariants(os) {
        return Outcome::Violation(v);
    }
    // Disarmed follow-up: the platform must still run Flicker sessions.
    if let Err(v) = probe_session(os) {
        return Outcome::Violation(format!("disarmed follow-up failed: {v}"));
    }
    // And any storage blob that escaped before the fault must still
    // unseal — a permanent ReplayDetected here is the §4.3.2 desync.
    if let Some((blob, expect)) = last_blob {
        if let Err(v) = storage_read(os, blob, expect) {
            return Outcome::Violation(format!("permanent storage loss: {v}"));
        }
    }
    match result {
        Ok(()) => Outcome::Survived,
        // Injected faults may abort a protocol, but a *verified* bytecode
        // session ending in a VM safety fault means the static verifier's
        // soundness contract broke — never an acceptable recovery.
        Err(e) if crate::vm_safety_fault(&e) => {
            Outcome::Violation(format!("verified session hit a VM safety fault: {e}"))
        }
        Err(e) => Outcome::Recovered(e),
    }
}

/// Platform invariants that must hold after *every* schedule.
fn platform_invariants(os: &Os) -> Result<(), String> {
    if os.saved_state().is_some() {
        return Err("suspend state leaked".into());
    }
    if os.machine().active_skinit().is_some() {
        return Err("launch left active".into());
    }
    let protections = os.machine().dev().active_protections();
    if protections != 0 {
        return Err(format!("{protections} DEV protections leaked"));
    }
    if os.machine().power_lost() {
        return Err("machine left dead".into());
    }
    let mem = os.machine().memory();
    let ram = mem.read(0, mem.size()).map_err(|e| format!("{e:?}"))?;
    if ram.windows(SSH_PASSWORD.len()).any(|w| w == SSH_PASSWORD) {
        return Err("secret password residue in RAM".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Trials. Each returns Ok(()) only for a fully correct protocol run.
// ---------------------------------------------------------------------------

fn rootkit_trial(
    os: &mut Os,
    link: NetLink,
    cert: &AikCertificate,
    ca_public: RsaPublicKey,
    seed: u64,
) -> Result<(), String> {
    let known_good = known_good_hash(os);
    let mut admin = Administrator::new(ca_public, known_good, link);
    // Alternate between the native detector and the statically verified
    // bytecode one, so the sweep also drives verified PalVM sessions with
    // faults armed (`classify` escalates any VM safety fault).
    let report = if seed.is_multiple_of(2) {
        admin.query(os, cert).map_err(|e| e.to_string())?
    } else {
        admin.query_bytecode(os, cert).map_err(|e| e.to_string())?
    };
    if !report.clean {
        return Err("pristine kernel reported compromised".into());
    }
    Ok(())
}

fn ssh_trial(
    os: &mut Os,
    link: &mut NetLink,
    seed: u64,
    cert: &AikCertificate,
    ca_public: RsaPublicKey,
) -> Result<(), String> {
    let mut server = SshServer::new(vec![PasswdEntry::new("alice", SSH_PASSWORD, b"fl1ck3r")]);
    let mut client = SshClient::new(ca_public);

    let attestation_nonce = [0x55; 20];
    let transcript = server
        .connection_setup(os, link, attestation_nonce)
        .map_err(|e| e.to_string())?;
    client
        .verify_setup(cert, &transcript)
        .map_err(|e| e.to_string())?;

    let nonce = server.issue_nonce();
    let mut rng = XorShiftRng::new(seed.wrapping_add(4_000));
    let ciphertext = client
        .encrypt_password(SSH_PASSWORD, &nonce, &mut rng)
        .map_err(|e| e.to_string())?;
    let outcome = server
        .login(os, link, "alice", &ciphertext, nonce)
        .map_err(|e| e.to_string())?;
    if !outcome.accepted {
        return Err("correct password rejected".into());
    }
    Ok(())
}

fn distcomp_trial(os: &mut Os) -> Result<(), String> {
    let unit = WorkUnit {
        n: 91,
        lo: 2,
        hi: 64,
    };
    let (mut client, _) = BoincClient::start(os, unit).map_err(|e| e.to_string())?;
    client
        .run_slice(os, Duration::from_millis(50))
        .map_err(|e| e.to_string())?;
    Ok(())
}

fn ca_trial(os: &mut Os, seed: u64) -> Result<(), String> {
    let policy = IssuancePolicy {
        allowed_suffixes: vec![".corp.example".into()],
        max_certificates: 8,
    };
    let (mut ca, _) = FlickerCa::init(os, policy).map_err(|e| e.to_string())?;
    let mut rng = XorShiftRng::new(seed.wrapping_add(5_000));
    let (subject_key, _) = RsaPrivateKey::generate(512, &mut rng);
    let csr = Csr {
        subject: "sweep.corp.example".into(),
        public_key: subject_key.public_key().clone(),
    };
    let report = ca.sign(os, &csr).map_err(|e| e.to_string())?;
    report
        .certificate
        .verify(&ca.public_key)
        .map_err(|e| e.to_string())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// The storage trial: a PAL with replay-protected state (§4.3.2), the one
// workload whose NV-counter writes the torn-write fault can hit.
// ---------------------------------------------------------------------------

enum StoreAction {
    /// Define the counter space and seal the first version.
    Init { data: Vec<u8> },
    /// Unseal (input blob), reseal new data.
    Update { data: Vec<u8> },
    /// Unseal (input blob) and emit the data.
    Read,
}

struct StoragePal {
    action: StoreAction,
}

impl NativePal for StoragePal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let store = ReplayProtectedStorage::new(SWEEP_NV_INDEX);
        match &self.action {
            StoreAction::Init { data } => {
                store.setup(ctx, &[0u8; 20])?;
                let blob = store.seal(ctx, data)?;
                ctx.write_output(blob.as_bytes())
            }
            StoreAction::Update { data } => {
                let old = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let _ = store.unseal(ctx, &old)?;
                let blob = store.seal(ctx, data)?;
                ctx.write_output(blob.as_bytes())
            }
            StoreAction::Read => {
                let blob = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let data = store.unseal(ctx, &blob)?;
                ctx.write_output(&data)
            }
        }
    }
}

fn storage_session(os: &mut Os, action: StoreAction, inputs: Vec<u8>) -> Result<Vec<u8>, String> {
    // The same identity for every action: the NV space is gated on the
    // PAL's PCR 17 value, which only an identical measurement reproduces.
    let slb = SlbImage::build(
        PalPayload::Native {
            identity: b"sweep-storage-pal".to_vec(),
            program: Arc::new(StoragePal { action }),
        },
        SlbOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let rec =
        run_session(os, &slb, &SessionParams::with_inputs(inputs)).map_err(|e| e.to_string())?;
    rec.pal_result.clone().map_err(|e| format!("pal: {e}"))?;
    Ok(rec.outputs)
}

fn storage_trial(os: &mut Os, last: &mut Option<(Vec<u8>, Vec<u8>)>) -> Result<(), String> {
    let blob1 = storage_session(
        os,
        StoreAction::Init {
            data: b"state-v1".to_vec(),
        },
        Vec::new(),
    )?;
    *last = Some((blob1.clone(), b"state-v1".to_vec()));

    let blob2 = storage_session(
        os,
        StoreAction::Update {
            data: b"state-v2".to_vec(),
        },
        blob1,
    )?;
    *last = Some((blob2.clone(), b"state-v2".to_vec()));

    let out = storage_session(os, StoreAction::Read, blob2)?;
    if out != b"state-v2" {
        return Err("read returned wrong data".into());
    }
    Ok(())
}

/// Disarmed recovery read: the given blob must still unseal to the
/// expected data. `ReplayDetected` here means the counter outran every
/// surviving ciphertext — the exact desync the two-slot lazy-commit
/// protocol exists to prevent.
fn storage_read(os: &mut Os, blob: &[u8], expect: &[u8]) -> Result<(), String> {
    let out = storage_session(os, StoreAction::Read, blob.to_vec())?;
    if out != expect {
        return Err("wrong data after recovery".into());
    }
    Ok(())
}

/// Disarmed follow-up: a trivial session that must succeed on any
/// recovered platform.
fn probe_session(os: &mut Os) -> Result<(), String> {
    let slb = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::progs::hello_world()),
        SlbOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let rec = run_session(os, &slb, &SessionParams::default()).map_err(|e| e.to_string())?;
    rec.pal_result.clone().map_err(|e| format!("pal: {e}"))?;
    if rec.outputs != b"Hello, world" {
        return Err("probe outputs wrong".into());
    }
    Ok(())
}
