//! Shared infrastructure for the evaluation harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's §7, printing the paper's reported values next to this
//! reproduction's simulated measurements. Absolute agreement is expected
//! for modelled quantities (they are calibrated from the paper); the
//! interesting outputs are the *derived* numbers — totals, percentages,
//! crossovers, distributions — which emerge from running the real system
//! logic against the virtual clock.

use flicker_os::{Os, OsConfig};
use flicker_tpm::{PrivacyCa, TpmTimingProfile};
use std::time::Duration;

pub mod baseline;
pub mod farmattr;
pub mod faultsweep;
pub mod json;
pub mod profile;

/// Whether an error string carries one of PalVM's *safety* fault
/// signatures — the faults the static verifier proves away. A verified
/// bytecode session may legitimately run out of fuel or have a hypercall
/// refused under injected faults, but if one of these four appears, the
/// verifier (or the VM) is unsound and the harness must fail loudly
/// rather than classify it as an absorbed fault.
pub fn vm_safety_fault(err: &str) -> bool {
    [
        "memory fault at",
        "pc out of range:",
        "illegal instruction at",
        "ret with empty stack at",
    ]
    .iter()
    .any(|sig| err.contains(sig))
}

/// RSA modulus size used for TPM-internal keys during evaluation runs.
///
/// The v1.2 spec mandates 2048-bit keys; the evaluation uses 1024-bit ones
/// to keep *host* CPU time reasonable. No simulated timing depends on this
/// (TPM latencies come from [`TpmTimingProfile`]), and every protocol runs
/// identically.
pub const EVAL_TPM_KEY_BITS: usize = 1024;

/// Builds the evaluation platform: the paper's HP dc5750 (dual-core,
/// Broadcom TPM, ~2.2 MB measured kernel region).
pub fn eval_os(seed: u8) -> Os {
    eval_os_with_profile(seed, TpmTimingProfile::broadcom_bcm0102())
}

/// [`eval_os`] with an explicit TPM timing profile (Infineon / future
/// hardware ablations).
pub fn eval_os_with_profile(seed: u8, timing: TpmTimingProfile) -> Os {
    let mut config = OsConfig::default();
    config.machine.tpm.key_bits = EVAL_TPM_KEY_BITS;
    config.machine.tpm.entropy_seed = [seed; 32];
    config.machine.tpm.timing = timing;
    config.kernel_seed = seed as u64;
    Os::boot(config)
}

/// Provisions attestation and returns the OS + certificate + Privacy CA
/// public key.
pub fn provisioned_eval_os(
    seed: u8,
) -> (
    Os,
    flicker_tpm::AikCertificate,
    flicker_crypto::RsaPublicKey,
) {
    let mut rng = flicker_crypto::rng::XorShiftRng::new(seed as u64 + 7_000);
    let mut ca = PrivacyCa::new(EVAL_TPM_KEY_BITS, &mut rng);
    let mut os = eval_os(seed);
    os.provision_attestation(&mut ca, "hp-dc5750")
        .expect("provisioning succeeds");
    let cert = os.aik_certificate().expect("provisioned").clone();
    (os, cert, ca.public_key().clone())
}

/// Sample statistics over durations.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Population standard deviation.
    pub std_dev: Duration,
    /// Minimum sample.
    pub min: Duration,
    /// Maximum sample.
    pub max: Duration,
}

impl Stats {
    /// Computes statistics over samples.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn of(samples: &[Duration]) -> Stats {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len() as f64;
        let mean_s = samples.iter().map(Duration::as_secs_f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|s| (s.as_secs_f64() - mean_s).powi(2))
            .sum::<f64>()
            / n;
        Stats {
            mean: Duration::from_secs_f64(mean_s),
            std_dev: Duration::from_secs_f64(var.sqrt()),
            min: *samples.iter().min().expect("non-empty"),
            max: *samples.iter().max().expect("non-empty"),
        }
    }

    /// Mean in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Standard deviation in milliseconds.
    pub fn std_ms(&self) -> f64 {
        self.std_dev.as_secs_f64() * 1e3
    }
}

/// Nearest-rank percentile (`p` in percent) over an unsorted sample set:
/// the smallest sample at or above rank `⌈p/100·n⌉`. Exact — unlike
/// `DurationHistogram::quantile`, whose log-bucket midpoints carry ~6 %
/// error and collapse nearby quantiles into one bucket. Returns
/// [`Duration::ZERO`] on an empty set.
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    nearest_rank(&sorted, p)
}

/// The (p50, p95, p99) nearest-rank percentiles over an unsorted sample
/// set (all zero when empty). One sort serves all three ranks — the
/// shared helper behind the farm bench's latency table and the perf
/// baseline's per-app stats.
pub fn percentiles(samples: &[Duration]) -> (Duration, Duration, Duration) {
    if samples.is_empty() {
        return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    (
        nearest_rank(&sorted, 50.0),
        nearest_rank(&sorted, 95.0),
        nearest_rank(&sorted, 99.0),
    )
}

fn nearest_rank(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

/// Milliseconds with one decimal, like the paper's tables.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Formats `m:ss.s` like the paper's Table 3.
pub fn min_sec(d: Duration) -> String {
    let total = d.as_secs_f64();
    let minutes = (total / 60.0).floor() as u64;
    format!("{}:{:04.1}", minutes, total - minutes as f64 * 60.0)
}

/// Prints a table header + aligned rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&hdr));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Looks up an operation's total simulated time in a session op log.
pub fn op_total(log: &[(&'static str, Duration)], name: &str) -> Duration {
    log.iter()
        .filter(|(n, _)| *n == name)
        .map(|(_, d)| *d)
        .sum()
}

/// Paper-reported reference values, quoted verbatim for the side-by-side
/// tables.
pub mod paper {
    /// Table 1 rows (ms).
    pub const TABLE1: &[(&str, f64)] = &[
        ("SKINIT", 15.4),
        ("PCR Extend", 1.2),
        ("Hash of Kernel", 22.0),
        ("TPM Quote", 972.7),
        ("Total Query Latency", 1022.7),
    ];

    /// Table 2: (SLB KB, ms).
    pub const TABLE2: &[(usize, f64)] = &[(0, 0.0), (4, 11.9), (16, 45.0), (32, 89.2), (64, 177.5)];

    /// Table 3: (detection period seconds or None, build m:s, std s).
    pub const TABLE3: &[(Option<u64>, &str, f64)] = &[
        (None, "7:22.6", 2.6),
        (Some(300), "7:21.4", 1.1),
        (Some(180), "7:21.4", 0.9),
        (Some(120), "7:21.8", 1.0),
        (Some(60), "7:21.9", 1.1),
        (Some(30), "7:22.6", 1.7),
    ];

    /// Table 4: (app work ms, overhead %).
    pub const TABLE4: &[(u64, f64)] = &[(1000, 47.0), (2000, 30.0), (4000, 18.0), (8000, 10.0)];
    /// Table 4 constants (ms).
    pub const TABLE4_SKINIT: f64 = 14.3;
    /// Table 4 unseal (ms).
    pub const TABLE4_UNSEAL: f64 = 898.3;

    /// Figure 9a (ms): SKINIT, Key Gen, Seal, Total.
    pub const FIG9A: &[(&str, f64)] = &[
        ("SKINIT", 14.3),
        ("Key Gen", 185.7),
        ("Seal", 10.2),
        ("Total Time", 217.1),
    ];
    /// Figure 9b (ms): SKINIT, Unseal, Decrypt, Total.
    pub const FIG9B: &[(&str, f64)] = &[
        ("SKINIT", 14.3),
        ("Unseal", 905.4),
        ("Decrypt", 4.6),
        ("Total Time", 937.6),
    ];

    /// §7.4.1 client-perceived latencies (ms): to prompt, to session.
    pub const SSH_CLIENT: (f64, f64) = (1221.0, 940.0);
    /// §7.4.2 CA signing latency (ms).
    pub const CA_SIGN: f64 = 906.2;
    /// §7.4.2 CA signature operation (ms).
    pub const CA_SIGN_OP: f64 = 4.7;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let s = Stats::of(&[
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ]);
        assert_eq!(s.mean, Duration::from_millis(20));
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(30));
        assert!((s.std_ms() - 8.165).abs() < 0.01);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(Duration::from_micros(15_400)), "15.4");
        assert_eq!(min_sec(Duration::from_secs_f64(442.6)), "7:22.6");
    }

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        // 1..=100 ms: nearest-rank p50 is the 50th sample, p95 the 95th,
        // p99 the 99th — exactly, with no bucketing error.
        let mut samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        // Order must not matter.
        samples.reverse();
        let (p50, p95, p99) = percentiles(&samples);
        assert_eq!(p50, Duration::from_millis(50));
        assert_eq!(p95, Duration::from_millis(95));
        assert_eq!(p99, Duration::from_millis(99));
        assert_eq!(percentile(&samples, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&samples, 1.0), Duration::from_millis(1));
    }

    #[test]
    fn percentiles_degenerate_sets() {
        assert_eq!(
            percentiles(&[]),
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        );
        let one = [Duration::from_millis(7)];
        assert_eq!(
            percentiles(&one),
            (
                Duration::from_millis(7),
                Duration::from_millis(7),
                Duration::from_millis(7)
            )
        );
        let two = [Duration::from_millis(10), Duration::from_millis(20)];
        let (p50, p95, p99) = percentiles(&two);
        assert_eq!(p50, Duration::from_millis(10));
        assert_eq!(p95, Duration::from_millis(20));
        assert_eq!(p99, Duration::from_millis(20));
    }

    #[test]
    fn op_total_sums_repeats() {
        let log: Vec<(&'static str, Duration)> = vec![
            ("seal", Duration::from_millis(10)),
            ("unseal", Duration::from_millis(900)),
            ("seal", Duration::from_millis(10)),
        ];
        assert_eq!(op_total(&log, "seal"), Duration::from_millis(20));
        assert_eq!(op_total(&log, "quote"), Duration::ZERO);
    }
}
