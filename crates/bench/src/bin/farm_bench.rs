//! Farm benchmark: drives the sharded attestation farm under the seeded
//! fault injector and reports throughput, latency percentiles, and the
//! conservation invariant (no request lost, none duplicated).
//!
//! ```text
//! farm_bench [--quick] [--machines N] [--requests N] [--trajectory PATH]
//!            [--flight-dir DIR]
//! ```
//!
//! Full mode runs 8 machines against a 200-schedule fault sweep (the same
//! `FaultPlan::seeded` schedules the fault-sweep harness uses). The run
//! FAILS — non-zero exit — if any request is lost or duplicated, if any
//! attempt bound is exceeded, if any machine's flight record violates a
//! paper invariant or was truncated, if latency attribution covers less
//! than 99% of any request's wall time, or if any workload burns through
//! its SLO error budget. Each run appends one JSONL line (farm metrics +
//! the `farm_attr` attribution/SLO extension) to the trajectory file so
//! farm drift across commits stays diffable. `--flight-dir` additionally
//! persists the full flight record (coordinator + per-machine streams +
//! request outcomes) for offline analysis with
//! `flicker_trace_tool attribute --from DIR`, plus per-request dumps for
//! every latency outlier the SLO monitor flags.

use flicker_bench::farmattr::{self, FarmFlight};
use flicker_bench::json::Value;
use flicker_bench::{percentiles, print_table};
use flicker_farm::{Farm, FarmConfig, RequestSpec, Terminal};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut quick = false;
    let mut machines: Option<usize> = None;
    let mut requests: Option<u64> = None;
    let mut trajectory = String::from("BENCH_trajectory.jsonl");
    let mut flight_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--machines" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => machines = Some(n),
                None => return usage("--machines needs a count"),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => requests = Some(n),
                None => return usage("--requests needs a count"),
            },
            "--trajectory" => match args.next() {
                Some(path) => trajectory = path,
                None => return usage("--trajectory needs a path"),
            },
            "--flight-dir" => match args.next() {
                Some(dir) => flight_dir = Some(PathBuf::from(dir)),
                None => return usage("--flight-dir needs a directory"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let machines = machines.unwrap_or(if quick { 2 } else { 8 });
    let requests = requests.unwrap_or(if quick { 15 } else { 200 });
    let config = FarmConfig {
        machines,
        queue_bound: requests as usize, // size the queue for the sweep
        ..FarmConfig::default()
    };
    eprintln!(
        "farm_bench: {machines} machines, {requests} seeded fault schedules{}",
        if quick { " (quick)" } else { "" }
    );

    let wall_start = std::time::Instant::now();
    let farm = Farm::start(config);
    let boot_secs = wall_start.elapsed().as_secs_f64();
    let serve_start = std::time::Instant::now();
    for seed in 0..requests {
        farm.submit(RequestSpec::seeded(seed));
    }
    let report = farm.shutdown();
    let serve_secs = serve_start.elapsed().as_secs_f64();

    // ---- hard invariants -----------------------------------------------
    if let Err(e) = report.verify_conservation() {
        eprintln!("CONSERVATION VIOLATED: {e}");
        return ExitCode::FAILURE;
    }
    let violations = report.audit_shards();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("VIOLATION {v}");
        }
        eprintln!("trace audit failed: {} violation(s)", violations.len());
        return ExitCode::FAILURE;
    }

    // ---- throughput + latency ------------------------------------------
    let ran: Vec<Duration> = report
        .outcomes
        .iter()
        .filter(|o| !matches!(o.terminal, Terminal::Shed))
        .map(|o| o.latency)
        .collect();
    let sessions_per_sec = if serve_secs > 0.0 {
        ran.len() as f64 / serve_secs
    } else {
        0.0
    };
    let (p50, p95, p99) = percentiles(&ran);

    print_table(
        "Farm outcomes",
        &["terminal", "count"],
        &[
            vec!["done".into(), report.done().to_string()],
            vec!["failed".into(), report.failed().to_string()],
            vec!["timed_out".into(), report.timed_out().to_string()],
            vec!["shed".into(), report.shed().to_string()],
        ],
    );
    print_table(
        "Supervision",
        &["metric", "value"],
        &[
            vec!["retries".into(), report.retries().to_string()],
            vec!["requeues".into(), report.requeues().to_string()],
            vec!["quarantines".into(), report.quarantines().to_string()],
            vec![
                "retired machines".into(),
                report
                    .shards
                    .iter()
                    .filter(|s| s.retired)
                    .count()
                    .to_string(),
            ],
        ],
    );
    print_table(
        "Latency (virtual ms, over non-shed requests)",
        &["p50", "p95", "p99"],
        &[vec![ms(p50), ms(p95), ms(p99)]],
    );
    println!(
        "\nzero lost, zero duplicated: {} submitted -> {} terminal outcomes",
        report.submitted,
        report.outcomes.len()
    );
    println!(
        "throughput: {sessions_per_sec:.1} sessions/sec wall \
         ({:.1}s boot, {serve_secs:.1}s serving)",
        boot_secs
    );

    // ---- attribution + SLO ---------------------------------------------
    let flight = FarmFlight::from_report(&report);
    let policy = farmattr::default_slo_policy();
    let (attr, slo) = farmattr::evaluate(&flight, &policy);
    farmattr::print_summary(&attr, &slo);
    if let Some(dir) = &flight_dir {
        if let Err(e) = flight.write(dir) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote flight record to {}", dir.display());
        if !slo.outliers.is_empty() {
            if let Err(e) = flight.dump_outliers(dir, &slo.outliers) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            eprintln!("dumped {} outlier flight record(s)", slo.outliers.len());
        }
    }
    let failures = farmattr::gate(&flight, &attr, &slo);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ATTRIBUTION GATE: {f}");
        }
        return ExitCode::FAILURE;
    }

    let line = trajectory_line(
        &report,
        machines,
        quick,
        sessions_per_sec,
        p50,
        p95,
        p99,
        farmattr::farm_attr_value(&attr, &slo),
    );
    if let Err(e) = append_line(&trajectory, &line) {
        eprintln!("appending {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("appended {trajectory}");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: farm_bench [--quick] [--machines N] [--requests N] \
         [--trajectory PATH] [--flight-dir DIR]"
    );
    ExitCode::FAILURE
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Best-effort current commit; missing `git` degrades to `"unknown"`.
fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

#[allow(clippy::too_many_arguments)]
fn trajectory_line(
    report: &flicker_farm::FarmReport,
    machines: usize,
    quick: bool,
    sessions_per_sec: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    farm_attr: Value,
) -> Value {
    let num = |v: f64| Value::Number(v);
    let dur_ms = |d: Duration| Value::Number(d.as_secs_f64() * 1e3);
    let farm = Value::Object(BTreeMap::from([
        ("machines".into(), num(machines as f64)),
        ("requests".into(), num(report.submitted as f64)),
        ("done".into(), num(report.done() as f64)),
        ("failed".into(), num(report.failed() as f64)),
        ("timed_out".into(), num(report.timed_out() as f64)),
        ("shed".into(), num(report.shed() as f64)),
        ("retries".into(), num(report.retries() as f64)),
        ("requeues".into(), num(report.requeues() as f64)),
        ("quarantines".into(), num(report.quarantines() as f64)),
        ("sessions_per_sec".into(), num(sessions_per_sec)),
        ("p50_ms".into(), dur_ms(p50)),
        ("p95_ms".into(), dur_ms(p95)),
        ("p99_ms".into(), dur_ms(p99)),
    ]));
    Value::Object(BTreeMap::from([
        (
            "schema".into(),
            Value::String("flicker-bench-trajectory/v1".into()),
        ),
        ("commit".into(), Value::String(current_commit())),
        ("quick".into(), Value::Bool(quick)),
        ("farm".into(), farm),
        ("farm_attr".into(), farm_attr),
    ]))
}

fn append_line(path: &str, line: &Value) -> Result<(), String> {
    let mut text = line.to_compact();
    text.push('\n');
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| e.to_string())?;
    f.write_all(text.as_bytes()).map_err(|e| e.to_string())
}
