//! Runs every experiment regenerator in sequence (the full §7 evaluation).
//!
//! Invokes the sibling binaries from the same target directory, so build
//! once with `cargo build --release -p flicker-bench` and then run
//! `target/release/run_all`, or simply
//! `cargo run --release -p flicker-bench --bin run_all`.

use std::process::{Command, ExitCode};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "fig8",
    "fig9",
    "ca_eval",
    "table5_io",
    "module_inventory",
    "attestation_granularity",
    "ablation_hw",
];

fn main() -> ExitCode {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("target dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n################ {exp} ################");
        let path = dir.join(exp);
        if !path.exists() {
            eprintln!(
                "run_all: {} not built; run `cargo build --release -p flicker-bench` first",
                path.display()
            );
            failures.push(*exp);
            continue;
        }
        match Command::new(&path).status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("run_all: {exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("run_all: {exp} failed to start: {e}");
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        ExitCode::FAILURE
    }
}
