//! Regenerates **Table 1**: breakdown of the rootkit detector's overhead,
//! plus the end-to-end query latency experiment (§7.2: "Over 25
//! experiments, the average query time was 1.02 seconds").

use flicker_apps::rootkit::{known_good_hash, Administrator};
use flicker_bench::{ms, op_total, paper, print_table, provisioned_eval_os, Stats};
use flicker_os::NetLink;

fn main() {
    const TRIALS: usize = 25;
    let (mut os, cert, ca_pub) = provisioned_eval_os(1);
    let mut admin = Administrator::new(
        ca_pub,
        known_good_hash(&os),
        NetLink::paper_verifier_link(1),
    );

    let mut skinit = Vec::new();
    let mut extend = Vec::new();
    let mut hash = Vec::new();
    let mut quote = Vec::new();
    let mut total = Vec::new();

    for _ in 0..TRIALS {
        let report = admin.query(&mut os, &cert).expect("query succeeds");
        assert!(report.clean);
        skinit.push(report.session.timings.skinit);
        extend.push(op_total(&report.session.op_log(), "pcr_extend"));
        hash.push(op_total(&report.session.op_log(), "sha1"));
        quote.push(report.quote_time);
        total.push(report.query_latency);
    }

    let rows = [
        ("SKINIT", Stats::of(&skinit)),
        ("PCR Extend", Stats::of(&extend)),
        ("Hash of Kernel", Stats::of(&hash)),
        ("TPM Quote", Stats::of(&quote)),
        ("Total Query Latency", Stats::of(&total)),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper::TABLE1.iter())
        .map(|((name, stats), (pname, pval))| {
            assert_eq!(name, pname);
            vec![
                name.to_string(),
                format!("{pval:.1}"),
                format!("{:.1}", stats.mean_ms()),
                format!("{:.2}", stats.std_ms()),
            ]
        })
        .collect();

    print_table(
        "Table 1: Breakdown of Rootkit Detector Overhead (ms)",
        &["Operation", "paper", "repro mean", "repro std"],
        &table,
    );
    println!(
        "\nEnd-to-end: paper avg 1.02 s over 25 trials (std < 1.4 ms); \
         repro avg {} ms over {TRIALS} trials (std {:.2} ms).",
        ms(Stats::of(&total).mean),
        Stats::of(&total).std_ms()
    );
    println!(
        "Note: the repro's hashing covers the detector's kernel hash; the \
         launch uses the §7.2 hashing-stub path, matching the paper's \
         Table 1 configuration (SKINIT ≈ 14-15 ms)."
    );
}
