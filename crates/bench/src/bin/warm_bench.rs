//! Warm-path benchmark: measures the §7.6 session-reuse / caching win on
//! back-to-back runs of the same PAL, and gates it.
//!
//! ```text
//! warm_bench [--quick] [--iterations N] [--out PATH] [--trajectory PATH]
//!            [--check PATH]
//! ```
//!
//! Two workloads run twice each — once with the warm path disabled (the
//! cold baseline: one-shot auth sessions, every seal executed) and once
//! with it enabled (parked sessions, measurement memo, seal-skip):
//!
//! * **ssh** — repeated Figure-9a SSH sessions against one platform, the
//!   paper's motivating "same PAL, back to back" case.
//! * **storage_refresh** — a PAL that re-seals an *unchanged* payload each
//!   run, the pure seal-skip case (§7.6: skip re-seal when the sealed
//!   payload and PCR-17 policy are unchanged).
//!
//! The run FAILS — non-zero exit — if any auth session leaks (cold runs
//! must end with an empty session table, warm runs with at most the one
//! parked session), if any flight record violates a paper invariant, if
//! the warm p50 is not strictly below the cold p50, or (with `--check`)
//! if the warm path regressed against a committed baseline. Latencies are
//! virtual-clock, so every number here is deterministic.

use flicker_apps::{PasswdEntry, SshClient, SshServer};
use flicker_bench::json::{self, Value};
use flicker_bench::{eval_os, print_table, provisioned_eval_os};
use flicker_core::{
    run_session, FlickerResult, NativePal, PalContext, PalPayload, SessionParams, SlbImage,
    SlbOptions,
};
use flicker_crypto::rng::XorShiftRng;
use flicker_os::NetLink;
use flicker_trace::{audit, Trace};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Schema identifier stamped into (and required of) the warm baseline.
pub const SCHEMA: &str = "flicker-warm-bench/v1";

/// Allowed relative slowdown of a warm p50 against the committed baseline
/// before `--check` fails. The clock is virtual, so honest drift only
/// comes from timing-model changes; 5% absorbs small recalibrations.
const CHECK_TOLERANCE: f64 = 0.05;

const SSH_PASSWORD: &[u8] = b"warm-bench-hunter2";

fn main() -> ExitCode {
    let mut quick = false;
    let mut iterations: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut trajectory = String::from("BENCH_trajectory.jsonl");
    let mut check: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--iterations" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => iterations = Some(n),
                None => return usage("--iterations needs a count"),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage("--out needs a path"),
            },
            "--trajectory" => match args.next() {
                Some(path) => trajectory = path,
                None => return usage("--trajectory needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let iterations = iterations.unwrap_or(if quick { 4 } else { 25 });
    eprintln!(
        "warm_bench: {iterations} back-to-back iterations per workload{}",
        if quick { " (quick)" } else { "" }
    );

    let mut workloads = BTreeMap::new();
    let mut rows = Vec::new();
    let mut counters = Counters::default();
    for (name, runner) in [
        ("ssh", run_ssh as fn(bool, usize) -> Series),
        ("storage_refresh", run_refresh as fn(bool, usize) -> Series),
    ] {
        let cold = runner(false, iterations);
        let warm = runner(true, iterations);
        for (mode, series) in [("cold", &cold), ("warm", &warm)] {
            if let Err(e) = series.verify(mode) {
                eprintln!("{name}/{mode}: {e}");
                return ExitCode::FAILURE;
            }
        }
        let cold_p50 = p50(&cold.latencies);
        let warm_p50 = p50(&warm.latencies);
        if warm_p50 >= cold_p50 {
            eprintln!(
                "{name}: warm p50 {} not below cold p50 {} — the warm path \
                 bought nothing",
                ms(warm_p50),
                ms(cold_p50)
            );
            return ExitCode::FAILURE;
        }
        let speedup = cold_p50.as_secs_f64() / warm_p50.as_secs_f64();
        counters.absorb(&warm.trace);
        rows.push(vec![
            name.into(),
            ms(cold_p50),
            ms(warm_p50),
            format!("{speedup:.2}x"),
        ]);
        workloads.insert(
            name.to_string(),
            Value::Object(BTreeMap::from([
                ("cold_p50_ms".into(), Value::Number(to_ms(cold_p50))),
                ("warm_p50_ms".into(), Value::Number(to_ms(warm_p50))),
                ("speedup".into(), Value::Number(speedup)),
            ])),
        );
    }

    print_table(
        "Warm-path win (virtual ms per iteration)",
        &["workload", "cold p50", "warm p50", "speedup"],
        &rows,
    );
    println!(
        "\ncounters: {} warm hits, {} misses, {} invalidations, {} evictions",
        counters.hit, counters.miss, counters.invalidate, counters.evicted
    );

    let doc = document(quick, iterations, &workloads, &counters);
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, doc.to_pretty()) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    let line = trajectory_line(quick, &workloads, &counters);
    if let Err(e) = append_line(&trajectory, &line) {
        eprintln!("appending {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("appended {trajectory}");

    if let Some(path) = check {
        return check_against(&path, &doc);
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: warm_bench [--quick] [--iterations N] [--out PATH] \
         [--trajectory PATH] [--check PATH]"
    );
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// One measured series: per-iteration virtual latencies plus everything
/// needed to prove the run was safe.
struct Series {
    latencies: Vec<Duration>,
    trace: Trace,
    /// Auth sessions live in the TPM table when the series ended.
    open_sessions: usize,
    /// Whether the warm path was enabled.
    warm: bool,
}

impl Series {
    /// The §7.6 safety gates: no leaked sessions, no invariant violation.
    fn verify(&self, mode: &str) -> Result<(), String> {
        let allowed = if self.warm { 1 } else { 0 };
        if self.open_sessions > allowed {
            return Err(format!(
                "{} live auth sessions after the {mode} run (allowed {allowed})",
                self.open_sessions
            ));
        }
        let violations = audit::audit_events(&self.trace.events());
        if !violations.is_empty() {
            return Err(format!(
                "{} paper-invariant violation(s), first: {}",
                violations.len(),
                violations[0]
            ));
        }
        Ok(())
    }
}

fn run_ssh(warm: bool, iterations: usize) -> Series {
    let (mut os, cert, ca_public) = provisioned_eval_os(21);
    let trace = Trace::new();
    os.set_tracer(trace.clone());
    os.machine_mut().set_warm_enabled(warm);
    let mut link = NetLink::paper_verifier_link(21);
    link.set_tracer(trace.clone());
    link.set_clock(os.clock());
    let mut client = SshClient::new(ca_public);
    let mut rng = XorShiftRng::new(0x3A96_0001);
    let mut latencies = Vec::new();
    for _ in 0..iterations {
        let mut server = SshServer::new(vec![PasswdEntry::new("alice", SSH_PASSWORD, b"fl1ck3r")]);
        let t0 = os.machine().clock().now();
        let transcript = server
            .connection_setup(&mut os, &mut link, [0x55; 20])
            .expect("ssh connection setup");
        client.verify_setup(&cert, &transcript).expect("ssh verify");
        let nonce = server.issue_nonce();
        let ciphertext = client
            .encrypt_password(SSH_PASSWORD, &nonce, &mut rng)
            .expect("ssh encrypt");
        let outcome = server
            .login(&mut os, &mut link, "alice", &ciphertext, nonce)
            .expect("ssh login");
        assert!(outcome.accepted, "correct password rejected");
        latencies.push(os.machine().clock().now() - t0);
    }
    let open_sessions = os.machine().tpm().open_session_count();
    Series {
        latencies,
        trace,
        open_sessions,
        warm,
    }
}

/// Seals one unchanged payload to itself and unseals it back — a storage
/// refresh. Warm runs skip the re-seal entirely after the first pass.
struct RefreshPal;
impl NativePal for RefreshPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let blob = ctx.seal_to_self(b"warm-bench-refresh-state")?;
        let data = ctx.unseal(&blob)?;
        ctx.write_output(&data)
    }
}

fn run_refresh(warm: bool, iterations: usize) -> Series {
    let mut os = eval_os(22);
    let trace = Trace::new();
    os.set_tracer(trace.clone());
    os.machine_mut().set_warm_enabled(warm);
    let slb = SlbImage::build(
        PalPayload::Native {
            identity: b"warm-refresh-pal".to_vec(),
            program: Arc::new(RefreshPal),
        },
        SlbOptions::default(),
    )
    .expect("refresh SLB builds");
    let mut latencies = Vec::new();
    for _ in 0..iterations {
        let t0 = os.machine().clock().now();
        let rec = run_session(&mut os, &slb, &SessionParams::default()).expect("refresh session");
        rec.pal_result.clone().expect("refresh PAL succeeds");
        assert_eq!(rec.outputs, b"warm-bench-refresh-state");
        latencies.push(os.machine().clock().now() - t0);
    }
    let open_sessions = os.machine().tpm().open_session_count();
    Series {
        latencies,
        trace,
        open_sessions,
        warm,
    }
}

// ---------------------------------------------------------------------------
// Metrics + artifacts
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    hit: u64,
    miss: u64,
    invalidate: u64,
    evicted: u64,
}

impl Counters {
    fn absorb(&mut self, trace: &Trace) {
        self.hit += trace.counter("warm.hit");
        self.miss += trace.counter("warm.miss");
        self.invalidate += trace.counter("warm.invalidate");
        self.evicted += trace.counter("tpm.session_evicted");
    }
}

fn p50(samples: &[Duration]) -> Duration {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 / 2.0).ceil() as usize).max(1) - 1;
    sorted[idx]
}

fn to_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ms(d: Duration) -> String {
    format!("{:.2}", to_ms(d))
}

fn document(
    quick: bool,
    iterations: usize,
    workloads: &BTreeMap<String, Value>,
    counters: &Counters,
) -> Value {
    Value::Object(BTreeMap::from([
        ("schema".into(), Value::String(SCHEMA.into())),
        ("quick".into(), Value::Bool(quick)),
        ("iterations".into(), Value::Number(iterations as f64)),
        ("workloads".into(), Value::Object(workloads.clone())),
        (
            "counters".into(),
            Value::Object(BTreeMap::from([
                ("warm_hit".into(), Value::Number(counters.hit as f64)),
                ("warm_miss".into(), Value::Number(counters.miss as f64)),
                (
                    "warm_invalidate".into(),
                    Value::Number(counters.invalidate as f64),
                ),
                (
                    "session_evicted".into(),
                    Value::Number(counters.evicted as f64),
                ),
            ])),
        ),
    ]))
}

fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn trajectory_line(quick: bool, workloads: &BTreeMap<String, Value>, counters: &Counters) -> Value {
    let mut warm = workloads.clone();
    warm.insert("warm_hits".into(), Value::Number(counters.hit as f64));
    warm.insert("warm_misses".into(), Value::Number(counters.miss as f64));
    Value::Object(BTreeMap::from([
        (
            "schema".into(),
            Value::String("flicker-bench-trajectory/v1".into()),
        ),
        ("commit".into(), Value::String(current_commit())),
        ("quick".into(), Value::Bool(quick)),
        ("warm".into(), Value::Object(warm)),
    ]))
}

fn append_line(path: &str, line: &Value) -> Result<(), String> {
    let mut text = line.to_compact();
    text.push('\n');
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| e.to_string())?
        .write_all(text.as_bytes())
        .map_err(|e| e.to_string())
}

/// Regression gate: the fresh run's warm p50s and speedups must not have
/// regressed past [`CHECK_TOLERANCE`] against the committed baseline.
fn check_against(path: &str, fresh: &Value) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("parsing {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        eprintln!("{path}: missing or wrong schema (want {SCHEMA})");
        return ExitCode::FAILURE;
    }
    let (Some(base), Some(now)) = (
        baseline.get("workloads").and_then(Value::as_object),
        fresh.get("workloads").and_then(Value::as_object),
    ) else {
        eprintln!("{path}: no workloads object");
        return ExitCode::FAILURE;
    };
    for (name, b) in base {
        let Some(n) = now.get(name) else {
            eprintln!("workload {name} present in baseline but not in this run");
            return ExitCode::FAILURE;
        };
        let field = |v: &Value, key: &str| v.get(key).and_then(Value::as_number);
        let (Some(b_p50), Some(n_p50)) = (field(b, "warm_p50_ms"), field(n, "warm_p50_ms")) else {
            eprintln!("{name}: warm_p50_ms missing from baseline or this run");
            return ExitCode::FAILURE;
        };
        if n_p50 > b_p50 * (1.0 + CHECK_TOLERANCE) {
            eprintln!(
                "{name}: warm p50 regressed {b_p50:.2}ms -> {n_p50:.2}ms \
                 (tolerance {:.0}%)",
                CHECK_TOLERANCE * 100.0
            );
            return ExitCode::FAILURE;
        }
        let (Some(b_spd), Some(n_spd)) = (field(b, "speedup"), field(n, "speedup")) else {
            eprintln!("{name}: speedup missing from baseline or this run");
            return ExitCode::FAILURE;
        };
        if n_spd < b_spd * (1.0 - CHECK_TOLERANCE) {
            eprintln!(
                "{name}: warm speedup regressed {b_spd:.2}x -> {n_spd:.2}x \
                 (tolerance {:.0}%)",
                CHECK_TOLERANCE * 100.0
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!("warm-path check against {path} passed");
    ExitCode::SUCCESS
}
