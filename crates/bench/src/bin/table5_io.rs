//! Regenerates the **§7.5 suspended-OS experiment**: large file copies
//! while the distributed-computing application runs in back-to-back
//! Flicker sessions (paper: 8.3 s sessions, ~37 ms OS windows, kernel
//! reported no I/O errors and `md5sum` confirmed every copy intact).
//!
//! Adds the failure-injection rows the paper only argues about: a
//! free-running (non-host-paced) source overflows its device buffer during
//! long suspensions, corrupting the stream — the reason Flicker-aware
//! drivers are proposed as future work.

use flicker_bench::print_table;
use flicker_os::{CopyConfig, CopyExperiment, CopyReport, Pacing};
use std::time::Duration;

/// Paper cadence: 8.3 s sessions, 37 ms OS windows.
const SESSION: Duration = Duration::from_millis(8_300);
const OS_WINDOW: Duration = Duration::from_millis(37);

fn run_copy(total: u64, rate: u64, pacing: Pacing, buffer: u64) -> CopyReport {
    let mut copy = CopyExperiment::new(CopyConfig {
        total_bytes: total,
        rate,
        buffer_capacity: buffer,
        pacing,
        seed: 75,
    });
    let mut guard = 0u32;
    while !copy.is_done() {
        copy.advance(SESSION, false);
        copy.advance(OS_WINDOW, true);
        guard += 1;
        assert!(guard < 2_000_000, "copy does not terminate");
    }
    copy.finish()
}

fn baseline(total: u64, rate: u64) -> Duration {
    let mut copy = CopyExperiment::new(CopyConfig {
        total_bytes: total,
        rate,
        buffer_capacity: 1 << 21,
        pacing: Pacing::HostPaced,
        seed: 75,
    });
    while !copy.is_done() {
        copy.advance(Duration::from_millis(100), true);
    }
    copy.finish().elapsed
}

fn main() {
    // The paper's transfers: 1 GB HDD<->USB, 50-200 MB AVI files from
    // CD-ROM. Scaled to 1/8 size to keep the harness fast; rates are
    // era-appropriate.
    let cases: [(&str, u64, u64); 4] = [
        ("CD-ROM -> HDD (AVI files)", 128 << 20, 7_800_000),
        ("CD-ROM -> USB (AVI files)", 128 << 20, 7_800_000),
        ("HDD -> USB (urandom file)", 128 << 20, 18_000_000),
        ("USB -> HDD (urandom file)", 128 << 20, 18_000_000),
    ];

    let mut rows = Vec::new();
    for (name, total, rate) in cases {
        let base = baseline(total, rate);
        let r = run_copy(total, rate, Pacing::HostPaced, 2 << 20);
        rows.push(vec![
            name.to_string(),
            if r.integrity_ok {
                "OK".into()
            } else {
                "CORRUPT".into()
            },
            format!("{}", r.lost),
            format!("{:.1}", base.as_secs_f64()),
            format!("{:.1}", r.elapsed.as_secs_f64()),
            format!("{:.1}x", r.elapsed.as_secs_f64() / base.as_secs_f64()),
        ]);
    }
    print_table(
        "§7.5: File copies during back-to-back 8.3 s Flicker sessions (host-paced devices)",
        &[
            "Transfer",
            "md5 integrity",
            "bytes lost",
            "baseline [s]",
            "with Flicker [s]",
            "slowdown",
        ],
        &rows,
    );
    println!(
        "\nPaper result reproduced: host-paced block devices lose *time*, \
         never *data* — the kernel saw no I/O errors and every md5 matched. \
         (The paper reports only integrity, not copy wall-time; with a \
         0.44% OS duty cycle the slowdown is necessarily ~225x, which is \
         why §7.5 recommends scheduling transfers outside sessions.)"
    );

    // Failure injection: a free-running source (what §7.5's warning is
    // really about).
    let mut rows = Vec::new();
    for (buffer_label, buffer) in [
        ("256 KB", 256u64 << 10),
        ("2 MB", 2 << 20),
        ("256 MB", 256 << 20),
    ] {
        let r = run_copy(64 << 20, 1_500_000, Pacing::FreeRunning, buffer);
        rows.push(vec![
            format!("1.5 MB/s stream, {buffer_label} device buffer"),
            if r.integrity_ok {
                "OK".into()
            } else {
                "CORRUPT".into()
            },
            format!("{}", r.lost),
        ]);
    }
    print_table(
        "Failure injection: free-running source across 8.3 s suspensions",
        &["Configuration", "md5 integrity", "bytes lost"],
        &rows,
    );
    println!(
        "\nAn 8.3 s suspension at 1.5 MB/s produces ~12.5 MB the host never \
         fetches: only an impractically large device buffer saves the \
         stream. This is the case for Flicker-aware drivers / quiescing \
         the paper raises as future work."
    );
}
