//! Regenerates **Figure 9**: server-side breakdown of the two SSH PALs,
//! plus the §7.4.1 client-perceived latencies.

use flicker_bench::{op_total, paper, print_table, provisioned_eval_os, Stats};
use flicker_crypto::rng::XorShiftRng;
use flicker_os::NetLink;
use std::time::Duration;

fn main() {
    const TRIALS: usize = 100;

    let (mut os, cert, ca_pub) = provisioned_eval_os(9);
    let mut link = NetLink::paper_verifier_link(9);
    let mut rng = XorShiftRng::new(909);

    let mut pal1_skinit = Vec::new();
    let mut pal1_keygen = Vec::new();
    let mut pal1_seal = Vec::new();
    let mut pal1_total = Vec::new();
    let mut to_prompt = Vec::new();

    let mut pal2_skinit = Vec::new();
    let mut pal2_unseal = Vec::new();
    let mut pal2_decrypt = Vec::new();
    let mut pal2_total = Vec::new();
    let mut to_session = Vec::new();

    for trial in 0..TRIALS {
        let mut server = flicker_apps::SshServer::new(vec![flicker_apps::PasswdEntry::new(
            "alice", b"hunter2", b"fl1ck3r",
        )]);
        let mut client = flicker_apps::SshClient::new(ca_pub.clone());

        let mut att_nonce = [0u8; 20];
        att_nonce[..8].copy_from_slice(&(trial as u64).to_be_bytes());
        let transcript = server
            .connection_setup(&mut os, &mut link, att_nonce)
            .expect("setup");
        client.verify_setup(&cert, &transcript).expect("verified");

        pal1_skinit.push(transcript.session.timings.skinit);
        pal1_keygen.push(op_total(&transcript.session.op_log(), "rsa1024_keygen"));
        pal1_seal.push(op_total(&transcript.session.op_log(), "seal"));
        pal1_total.push(transcript.session.timings.total);
        to_prompt.push(transcript.time_to_prompt);

        let nonce = server.issue_nonce();
        let ct = client
            .encrypt_password(b"hunter2", &nonce, &mut rng)
            .expect("encrypt");
        let outcome = server
            .login(&mut os, &mut link, "alice", &ct, nonce)
            .expect("login runs");
        assert!(outcome.accepted);

        pal2_skinit.push(outcome.session.timings.skinit);
        pal2_unseal.push(op_total(&outcome.session.op_log(), "unseal"));
        pal2_decrypt.push(op_total(&outcome.session.op_log(), "rsa1024_decrypt"));
        pal2_total.push(outcome.session.timings.total);
        to_session.push(outcome.time_to_session);
    }

    let render = |title: &str, rows: &[(&str, &Vec<Duration>)], paper_rows: &[(&str, f64)]| {
        let table: Vec<Vec<String>> = rows
            .iter()
            .zip(paper_rows.iter())
            .map(|((name, samples), (pname, pval))| {
                assert_eq!(name, pname);
                let s = Stats::of(samples);
                vec![
                    name.to_string(),
                    format!("{pval:.1}"),
                    format!("{:.1}", s.mean_ms()),
                    format!("{:.1}", s.std_ms()),
                ]
            })
            .collect();
        print_table(
            title,
            &["Operation", "paper", "repro mean", "repro std"],
            &table,
        );
    };

    render(
        "Figure 9a: SSH PAL 1 (setup) server-side breakdown (ms)",
        &[
            ("SKINIT", &pal1_skinit),
            ("Key Gen", &pal1_keygen),
            ("Seal", &pal1_seal),
            ("Total Time", &pal1_total),
        ],
        paper::FIG9A,
    );
    let kg = Stats::of(&pal1_keygen);
    println!(
        "Key Gen coefficient of variation: {:.0}% (paper: ~14%; the repro's \
         variance comes from the same geometric prime search, charged per \
         Miller-Rabin round)",
        100.0 * kg.std_ms() / kg.mean_ms()
    );

    render(
        "Figure 9b: SSH PAL 2 (login) server-side breakdown (ms)",
        &[
            ("SKINIT", &pal2_skinit),
            ("Unseal", &pal2_unseal),
            ("Decrypt", &pal2_decrypt),
            ("Total Time", &pal2_total),
        ],
        paper::FIG9B,
    );

    println!(
        "\nClient-perceived latencies (ms): to password prompt paper {:.0} / repro {:.0}; \
         password-to-session paper {:.0} / repro {:.0}.",
        paper::SSH_CLIENT.0,
        Stats::of(&to_prompt).mean_ms(),
        paper::SSH_CLIENT.1,
        Stats::of(&to_session).mean_ms(),
    );
    println!(
        "(Unmodified OpenSSH: 210 ms / 10 ms — the delta is the price of a \
         password that never exists in cleartext outside a PAL.)"
    );
}
