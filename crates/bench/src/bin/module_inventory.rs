//! Regenerates **Figure 6**: the PAL module inventory, with the mapping
//! from each paper module to the part of this reproduction implementing
//! it, and checks the abstract's "as few as 250 lines" TCB claim.

use flicker_bench::print_table;
use flicker_core::modules::{paper_inventory, MINIMAL_TCB_LOC_BOUND};

fn main() {
    let inv = paper_inventory();
    let rows: Vec<Vec<String>> = inv
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                if m.mandatory { "yes" } else { "" }.to_string(),
                m.paper_loc.to_string(),
                format!("{:.3}", m.paper_size_kb),
                m.repro_path.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 6: Modules that can be included in the PAL",
        &[
            "Module",
            "mandatory",
            "LoC (paper)",
            "KB (paper)",
            "reproduction",
        ],
        &rows,
    );

    let mandatory: u32 = inv
        .iter()
        .filter(|m| m.mandatory)
        .map(|m| m.paper_loc)
        .sum();
    println!(
        "\nMandatory TCB: {mandatory} LoC (SLB Core). With OS Protection \
         (+5) and a ~100-line PAL, the total stays under the paper's \
         '{MINIMAL_TCB_LOC_BOUND} lines of additional code' headline."
    );
    println!(
        "Full optional stack (all modules): {} LoC — still three orders of \
         magnitude below a Xen+Dom0 TCB (the paper's ~50k + millions \
         comparison in §3.2).",
        inv.iter().map(|m| m.paper_loc).sum::<u32>()
    );
}
