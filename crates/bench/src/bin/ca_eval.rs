//! Regenerates the **§7.4.2 CA evaluation**: certificate-signing latency
//! (paper: 906.2 ms average over 100 trials, dominated by Unseal; the RSA
//! signature itself ≈ 4.7 ms).

use flicker_apps::{Csr, FlickerCa, IssuancePolicy};
use flicker_bench::{eval_os, op_total, paper, print_table, Stats};
use flicker_crypto::rng::XorShiftRng;
use flicker_crypto::rsa::RsaPrivateKey;

fn main() {
    const TRIALS: usize = 100;

    let mut os = eval_os(10);
    let policy = IssuancePolicy {
        allowed_suffixes: vec![".corp.example".to_string()],
        max_certificates: u64::MAX,
    };
    let (mut ca, init_rec) = FlickerCa::init(&mut os, policy).expect("CA init");
    println!(
        "CA initialization session: {:.1} ms (keygen {:.1} ms, seal {:.1} ms)",
        init_rec.timings.total.as_secs_f64() * 1e3,
        op_total(&init_rec.op_log(), "rsa1024_keygen").as_secs_f64() * 1e3,
        op_total(&init_rec.op_log(), "seal").as_secs_f64() * 1e3,
    );

    let mut rng = XorShiftRng::new(1010);
    let mut latency = Vec::new();
    let mut unseal = Vec::new();
    let mut sign_op = Vec::new();
    for i in 0..TRIALS {
        let (subject_key, _) = RsaPrivateKey::generate(512, &mut rng);
        let csr = Csr {
            subject: format!("host{i}.corp.example"),
            public_key: subject_key.public_key().clone(),
        };
        let report = ca.sign(&mut os, &csr).expect("sign");
        report
            .certificate
            .verify(&ca.public_key)
            .expect("valid cert");
        latency.push(report.latency);
        unseal.push(op_total(&report.session.op_log(), "unseal"));
        sign_op.push(op_total(&report.session.op_log(), "rsa1024_sign"));
    }

    let rows = vec![
        vec![
            "Total signing latency".to_string(),
            format!("{:.1}", paper::CA_SIGN),
            format!("{:.1}", Stats::of(&latency).mean_ms()),
            format!("{:.2}", Stats::of(&latency).std_ms()),
        ],
        vec![
            "Unseal".to_string(),
            "~905".to_string(),
            format!("{:.1}", Stats::of(&unseal).mean_ms()),
            format!("{:.2}", Stats::of(&unseal).std_ms()),
        ],
        vec![
            "RSA signature op".to_string(),
            format!("{:.1}", paper::CA_SIGN_OP),
            format!("{:.1}", Stats::of(&sign_op).mean_ms()),
            format!("{:.2}", Stats::of(&sign_op).std_ms()),
        ],
    ];
    print_table(
        "§7.4.2: Certificate Authority signing (ms, 100 trials)",
        &["Operation", "paper", "repro mean", "repro std"],
        &rows,
    );
}
