//! Regenerates **Table 4**: Flicker overhead for the distributed-computing
//! application at varying work-slice lengths.

use flicker_apps::{BoincClient, WorkUnit};
use flicker_bench::{eval_os, op_total, paper, print_table};
use std::time::Duration;

fn main() {
    let mut rows = Vec::new();
    for &(work_ms, paper_overhead_pct) in paper::TABLE4 {
        let mut os = eval_os(4);
        // A unit big enough to fill the longest slice.
        let unit = WorkUnit {
            n: 0xFFFF_FFFF_FFFF_FFC5, // a large prime: worst-case full scan
            lo: 2,
            hi: u64::MAX,
        };
        let (mut client, _) = BoincClient::start(&mut os, unit).expect("init");
        let report = client
            .run_slice(&mut os, Duration::from_millis(work_ms))
            .expect("slice");

        let skinit = report.session.timings.skinit;
        let unseal = op_total(&report.session.op_log(), "unseal");
        let overhead_pct =
            100.0 * report.overhead.as_secs_f64() / report.session.timings.total.as_secs_f64();

        rows.push(vec![
            format!("{work_ms}"),
            format!("{:.1}", skinit.as_secs_f64() * 1e3),
            format!("{:.1}", unseal.as_secs_f64() * 1e3),
            format!("{paper_overhead_pct:.0}%"),
            format!("{overhead_pct:.0}%"),
        ]);
    }
    print_table(
        "Table 4: Distributed-computing operations vs work-slice length",
        &[
            "App work [ms]",
            "SKINIT [ms]",
            "Unseal [ms]",
            "paper overhead",
            "repro overhead",
        ],
        &rows,
    );
    println!(
        "\nPaper constants: SKINIT {} ms (hashing-stub launch), Unseal {} ms.",
        paper::TABLE4_SKINIT,
        paper::TABLE4_UNSEAL
    );
}
