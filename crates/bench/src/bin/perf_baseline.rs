//! Perf-baseline harness: runs every §6 application under the trace
//! recorder and emits aggregated per-phase / per-TPM-ordinal / per-app
//! latency percentiles as `BENCH_perf_baseline.json`.
//!
//! ```text
//! perf_baseline [--quick] [--out PATH]   # run and write the report
//! perf_baseline --check PATH             # validate an existing report
//! ```

use flicker_bench::baseline::{run_baseline, validate, BaselineConfig};
use flicker_bench::json::{self, Value};
use flicker_bench::print_table;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_perf_baseline.json");
    let mut check: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        return check_file(&path);
    }

    let cfg = if quick {
        BaselineConfig::quick()
    } else {
        BaselineConfig::full()
    };
    eprintln!(
        "running perf baseline: {} iterations per app{}",
        cfg.iterations_per_app,
        if cfg.quick { " (quick)" } else { "" },
    );
    let doc = run_baseline(&cfg);
    let sessions = match validate(&doc) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("generated baseline failed validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, doc.to_pretty()) {
        eprintln!("writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    print_summary(&doc);
    eprintln!("\nwrote {out} ({sessions} sessions)");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: perf_baseline [--quick] [--out PATH] [--check PATH]");
    ExitCode::FAILURE
}

fn check_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&doc) {
        Ok(sessions) => {
            println!("{path}: schema-valid baseline covering {sessions} sessions");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path} failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints one aligned table per report section.
fn print_summary(doc: &Value) {
    for (section, title) in [
        ("phases", "Per-phase latency (ms)"),
        ("tpm", "Per-TPM-ordinal latency (ms)"),
        ("apps", "Per-application iteration latency (ms)"),
    ] {
        let Some(entries) = doc.get(section).and_then(Value::as_object) else {
            continue;
        };
        let rows: Vec<Vec<String>> = entries
            .iter()
            .map(|(name, stats)| {
                let cell = |key: &str| {
                    stats
                        .get(key)
                        .and_then(Value::as_number)
                        .map_or_else(|| "-".into(), |v| format!("{v:.2}"))
                };
                let count = stats.get("count").and_then(Value::as_number).unwrap_or(0.0);
                vec![
                    name.clone(),
                    format!("{count:.0}"),
                    cell("p50_ms"),
                    cell("p95_ms"),
                    cell("p99_ms"),
                    cell("mean_ms"),
                ]
            })
            .collect();
        print_table(
            title,
            &["name", "count", "p50", "p95", "p99", "mean"],
            &rows,
        );
    }
}
