//! Perf-baseline harness: runs every §6 application under the trace
//! recorder and emits aggregated per-phase / per-TPM-ordinal / per-app
//! latency percentiles as `BENCH_perf_baseline.json`.
//!
//! ```text
//! perf_baseline [--quick] [--out PATH] [--audit] [--trajectory PATH]
//! perf_baseline --check PATH             # validate an existing report
//! ```
//!
//! Every run (other than `--check`) also appends a one-line JSONL summary
//! to the trajectory file (default `BENCH_trajectory.jsonl`) so latency
//! drift across commits is diffable without re-running old revisions.

use flicker_bench::baseline::{run_baseline_traced, validate, BaselineConfig};
use flicker_bench::json::{self, Value};
use flicker_bench::print_table;
use flicker_trace::audit;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_perf_baseline.json");
    let mut trajectory = String::from("BENCH_trajectory.jsonl");
    let mut audit_run = false;
    let mut check: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--audit" => audit_run = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--trajectory" => match args.next() {
                Some(path) => trajectory = path,
                None => return usage("--trajectory needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        return check_file(&path);
    }

    let cfg = if quick {
        BaselineConfig::quick()
    } else {
        BaselineConfig::full()
    };
    eprintln!(
        "running perf baseline: {} iterations per app{}",
        cfg.iterations_per_app,
        if cfg.quick { " (quick)" } else { "" },
    );
    let (doc, trace) = run_baseline_traced(&cfg);
    let sessions = match validate(&doc) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("generated baseline failed validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    if audit_run {
        let events = trace.events();
        let violations = audit::audit_events(&events);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("VIOLATION {v}");
            }
            eprintln!(
                "trace audit failed: {} violation(s) over {} events",
                violations.len(),
                events.len()
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace audit clean: {} events satisfy every Figure-2/§4 invariant",
            events.len()
        );
    }
    let profile_doc = flicker_bench::profile::report(cfg.quick, &trace);
    if let Err(e) = flicker_bench::profile::validate(&profile_doc) {
        eprintln!("profile extension failed validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, doc.to_pretty()) {
        eprintln!("writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = append_trajectory(&trajectory, &doc, &profile_doc, sessions) {
        eprintln!("appending {trajectory}: {e}");
        return ExitCode::FAILURE;
    }
    print_summary(&doc);
    eprintln!("\nwrote {out} ({sessions} sessions); appended {trajectory}");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: perf_baseline [--quick] [--out PATH] [--audit] [--trajectory PATH] [--check PATH]"
    );
    ExitCode::FAILURE
}

/// Best-effort current commit for trajectory lines; benches must run in
/// exported tarballs too, so a missing `git` degrades to `"unknown"`.
fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Appends one JSONL summary line (commit, quick, sessions, per-app
/// p50/p95, plus the compact `profile` cost-attribution extension) to
/// the trajectory file, creating it if absent.
fn append_trajectory(
    path: &str,
    doc: &Value,
    profile_doc: &Value,
    sessions: u64,
) -> Result<(), String> {
    let mut apps = BTreeMap::new();
    if let Some(entries) = doc.get("apps").and_then(Value::as_object) {
        for (name, stats) in entries {
            let pick = |key: &str| stats.get(key).cloned().unwrap_or(Value::Null);
            apps.insert(
                name.clone(),
                Value::Object(BTreeMap::from([
                    ("p50_ms".into(), pick("p50_ms")),
                    ("p95_ms".into(), pick("p95_ms")),
                ])),
            );
        }
    }
    let line = Value::Object(BTreeMap::from([
        (
            "schema".into(),
            Value::String("flicker-bench-trajectory/v1".into()),
        ),
        ("commit".into(), Value::String(current_commit())),
        (
            "quick".into(),
            doc.get("quick").cloned().unwrap_or(Value::Null),
        ),
        ("sessions".into(), Value::Number(sessions as f64)),
        ("apps".into(), Value::Object(apps)),
        (
            "profile".into(),
            flicker_bench::profile::trajectory_extension(profile_doc),
        ),
    ]));
    let mut text = line.to_compact();
    text.push('\n');
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| e.to_string())?;
    f.write_all(text.as_bytes()).map_err(|e| e.to_string())
}

fn check_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&doc) {
        Ok(sessions) => {
            println!("{path}: schema-valid baseline covering {sessions} sessions");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path} failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints one aligned table per report section.
fn print_summary(doc: &Value) {
    for (section, title) in [
        ("phases", "Per-phase latency (ms)"),
        ("tpm", "Per-TPM-ordinal latency (ms)"),
        ("apps", "Per-application iteration latency (ms)"),
    ] {
        let Some(entries) = doc.get(section).and_then(Value::as_object) else {
            continue;
        };
        let rows: Vec<Vec<String>> = entries
            .iter()
            .map(|(name, stats)| {
                let cell = |key: &str| {
                    stats
                        .get(key)
                        .and_then(Value::as_number)
                        .map_or_else(|| "-".into(), |v| format!("{v:.2}"))
                };
                let count = stats.get("count").and_then(Value::as_number).unwrap_or(0.0);
                vec![
                    name.clone(),
                    format!("{count:.0}"),
                    cell("p50_ms"),
                    cell("p95_ms"),
                    cell("p99_ms"),
                    cell("mean_ms"),
                ]
            })
            .collect();
        print_table(
            title,
            &["name", "count", "p50", "p95", "p99", "mean"],
            &rows,
        );
    }
}
