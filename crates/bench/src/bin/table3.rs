//! Regenerates **Table 3**: impact of periodic rootkit detection on a
//! kernel build (7:22.6 of build work on the dual-core test machine).
//!
//! The detector session pauses the whole platform for ~37 ms (hashing-stub
//! SKINIT + kernel hash + extends); the 972.7 ms TPM quote runs *under the
//! resumed OS* and costs the build nothing (the TPM is not a CPU). The
//! paper's finding — detection "has negligible impact", with differences
//! lost in build-to-build noise — re-emerges from the model: we add the
//! same ±σ build noise the paper measured (its no-detection row has a
//! 2.6 s std-dev) and report mean ± std over five trials per period.

use flicker_apps::rootkit::detector_slb;
use flicker_bench::{eval_os, min_sec, paper, print_table};
use flicker_core::{run_session, SessionParams};
use flicker_crypto::{CryptoRng, HmacDrbg};
use flicker_os::{Job, Scheduler};
use std::time::Duration;

/// CPU work of the kernel build: 7:22.6 wall on 2 cores.
const BUILD_WALL: Duration = Duration::from_millis(442_600);
const TRIALS: usize = 5;

/// Simulates one build with detection every `period` (None = no detection);
/// returns wall time.
fn simulate_build(period: Option<Duration>, trial: u64) -> Duration {
    let mut os = eval_os(3);
    let clock = os.clock();

    // Build-to-build noise (cold caches, disk): ±N(0, ~1.2 s), matching the
    // paper's observed per-row std-devs (0.9-2.6 s).
    let mut drbg = HmacDrbg::new(&trial.to_be_bytes(), b"table3-noise");
    let noise_s = {
        // Sum of 12 uniforms ≈ normal(6, 1); scale to σ ≈ 1.2 s.
        let mut acc = 0.0f64;
        for _ in 0..12 {
            acc += drbg.next_u64() as f64 / u64::MAX as f64;
        }
        (acc - 6.0) * 1.2
    };
    let noisy_build = Duration::from_secs_f64((BUILD_WALL.as_secs_f64() + noise_s).max(1.0));
    // 2 cores x wall time of build CPU work.
    let mut sched = Scheduler::new(clock.clone(), 2);
    let job = sched.submit(Job::new("make -j2 vmlinux", noisy_build * 2));

    let (kbase, klen) = os.kernel_region();
    let mut inputs = Vec::new();
    inputs.extend_from_slice(&kbase.to_le_bytes());
    inputs.extend_from_slice(&(klen as u64).to_le_bytes());
    let slb = detector_slb();

    loop {
        let slice = period.unwrap_or(Duration::from_secs(3600));
        sched.run_for(slice);
        if sched.job(job).is_done() {
            return sched.job(job).finished_at.expect("done");
        }
        if period.is_some() {
            // The Flicker session pauses everything (cores descheduled,
            // interrupts off); the scheduler simply does not run during it
            // because the session advances the shared clock while the
            // scheduler is not granted time.
            let params = SessionParams {
                inputs: inputs.clone(),
                use_hashing_stub: true,
                ..Default::default()
            };
            let rec = run_session(&mut os, &slb, &params).expect("detector runs");
            assert!(rec.pal_result.is_ok());
            // The quote happens under the resumed OS and does not pause the
            // build; nothing to do here.
        }
    }
}

fn main() {
    let mut rows = Vec::new();
    for &(period_s, paper_time, paper_std) in paper::TABLE3 {
        let period = period_s.map(Duration::from_secs);
        let samples: Vec<Duration> = (0..TRIALS as u64)
            .map(|t| simulate_build(period, t + period_s.unwrap_or(0)))
            .collect();
        let stats = flicker_bench::Stats::of(&samples);
        let label = match period_s {
            None => "No Detection".to_string(),
            Some(s) => format!("{}:{:02}", s / 60, s % 60),
        };
        rows.push(vec![
            label,
            paper_time.to_string(),
            format!("{paper_std:.1}"),
            min_sec(stats.mean),
            format!("{:.1}", stats.std_dev.as_secs_f64()),
        ]);
    }
    print_table(
        "Table 3: Impact of the Rootkit Detector on kernel build time",
        &[
            "Detection Period",
            "paper [m:s]",
            "paper std [s]",
            "repro [m:s]",
            "repro std [s]",
        ],
        &rows,
    );
    println!(
        "\nAs in the paper, the detector's ~37 ms pauses are far below the \
         build's run-to-run noise; even a 30 s period costs < 0.6 s of a \
         442 s build (0.13 %)."
    );
}
