//! Renders the append-only bench trajectory (`BENCH_trajectory.jsonl`)
//! into a static HTML dashboard, `github-action-benchmark` style: a
//! `data.js` assigning `window.BENCHMARK_DATA` plus a dependency-free
//! `index.html` that charts every metric series across commits.
//!
//! ```text
//! trajectory_dashboard [--trajectory PATH] [--out-dir DIR] [--include-quick]
//! trajectory_dashboard --check-drift [--trajectory PATH] [--include-quick]
//! ```
//!
//! `--check-drift` renders nothing: it walks consecutive trajectory
//! entries carrying the `profile` cost-attribution extension and fails
//! if any gated ordinal's attributed fraction or any top stack's share
//! moved by more than [`flicker_bench::profile::MAX_SHARE_DRIFT`]
//! between adjacent same-quickness runs — cost *drift* caught in CI even
//! when absolute latency gates still pass.
//!
//! Defaults read `BENCH_trajectory.jsonl` and write `docs/bench/`. Quick
//! runs are skipped by default (the committed trajectory only carries
//! full runs; CI writes its quick lines under `target/`). Every numeric
//! leaf in a trajectory line becomes one series, named by its JSON path
//! (`apps/ssh/p50_ms`, `farm/p50_ms`, `farm_attr/categories/tpm_ms`, ...).
//!
//! The trajectory is *mixed-schema*: perf_baseline, farm_bench, and
//! warm_bench each append their own line shape, and one commit usually
//! appends several. Lines sharing a commit are merged into **one**
//! dashboard entry (last value wins when two lines carry the same leaf),
//! so the x-axis is commits, not lines — and a commit that lacks some
//! series (an older schema, a tool not run) simply has *no* sample there;
//! the chart renders a gap, never a fabricated zero.

use flicker_bench::json::{self, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

const INDEX_HTML: &str = include_str!("trajectory_dashboard_index.html");

fn main() -> ExitCode {
    let mut trajectory = String::from("BENCH_trajectory.jsonl");
    let mut out_dir = String::from("docs/bench");
    let mut include_quick = false;
    let mut check_drift = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trajectory" => match args.next() {
                Some(path) => trajectory = path,
                None => return usage("--trajectory needs a path"),
            },
            "--out-dir" => match args.next() {
                Some(dir) => out_dir = dir,
                None => return usage("--out-dir needs a directory"),
            },
            "--include-quick" => include_quick = true,
            "--check-drift" => check_drift = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let text = match std::fs::read_to_string(&trajectory) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {trajectory}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if check_drift {
        return run_check_drift(&trajectory, &text, include_quick);
    }
    // Merge lines commit-by-commit (in first-appearance order): one
    // dashboard entry per commit, holding the union of every tool's
    // series for it.
    let mut commit_order: Vec<String> = Vec::new();
    let mut by_commit: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{trajectory}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        if value.get("schema").and_then(Value::as_str) != Some("flicker-bench-trajectory/v1") {
            eprintln!("{trajectory}:{}: unknown schema", lineno + 1);
            return ExitCode::FAILURE;
        }
        let quick = value.get("quick").and_then(Value::as_bool).unwrap_or(false);
        if quick && !include_quick {
            continue;
        }
        let commit = value
            .get("commit")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let mut benches = Vec::new();
        flatten(&value, "", &mut benches);
        if benches.is_empty() {
            continue;
        }
        if !by_commit.contains_key(&commit) {
            commit_order.push(commit.clone());
        }
        by_commit.entry(commit).or_default().extend(benches);
    }
    let mut entries = Vec::new();
    for commit in &commit_order {
        let benches: Vec<(String, f64)> = by_commit
            .remove(commit)
            .expect("every ordered commit was inserted")
            .into_iter()
            .collect();
        entries.push(entry(commit, entries.len() as u64, benches));
    }
    if entries.is_empty() {
        eprintln!("{trajectory}: no full-run trajectory lines to chart");
        return ExitCode::FAILURE;
    }

    let doc = Value::Object(BTreeMap::from([
        (
            "lastUpdate".into(),
            Value::Number(entries.len() as f64), // monotonic, not wall time
        ),
        ("repoUrl".into(), Value::String(String::new())),
        (
            "entries".into(),
            Value::Object(BTreeMap::from([(
                "Flicker bench trajectory".into(),
                Value::Array(entries),
            )])),
        ),
    ]));

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("creating {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let data_js = format!("window.BENCHMARK_DATA = {};\n", doc.to_pretty());
    for (name, content) in [("data.js", data_js.as_str()), ("index.html", INDEX_HTML)] {
        let path = format!("{out_dir}/{name}");
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: trajectory_dashboard [--trajectory PATH] [--out-dir DIR] [--include-quick]\n\
         \x20      trajectory_dashboard --check-drift [--trajectory PATH] [--include-quick]"
    );
    ExitCode::FAILURE
}

/// The drift detector: compares each trajectory entry's `profile`
/// extension against the previous same-quickness entry that has one.
/// A gated ordinal's attributed fraction or a top stack's share moving
/// by more than [`flicker_bench::profile::MAX_SHARE_DRIFT`] fails the
/// run; a stack merely entering or leaving the top-5 list is reported
/// but tolerated (rank churn near the cut-off is not drift).
fn run_check_drift(trajectory: &str, text: &str, include_quick: bool) -> ExitCode {
    let max_drift = flicker_bench::profile::MAX_SHARE_DRIFT;
    // Previous profile extension per quickness class.
    let mut prev: BTreeMap<bool, (usize, Value)> = BTreeMap::new();
    let mut compared = 0u64;
    let mut failures = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{trajectory}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        let quick = value.get("quick").and_then(Value::as_bool).unwrap_or(false);
        if quick && !include_quick {
            continue;
        }
        let Some(profile) = value.get("profile").cloned() else {
            continue; // pre-profile schema lines, farm/warm lines
        };
        if let Some((prev_line, before)) = prev.get(&quick) {
            compared += 1;
            for issue in profile_drift(before, &profile, max_drift) {
                failures.push(format!(
                    "{trajectory}:{} vs line {}: {issue}",
                    lineno + 1,
                    prev_line
                ));
            }
        }
        prev.insert(quick, (lineno + 1, profile));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("DRIFT {f}");
        }
        eprintln!(
            "profile drift check failed: {} violation(s) over {compared} comparison(s)",
            failures.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "profile drift check passed: {compared} consecutive-run comparison(s) \
         within {:.0}pp",
        max_drift * 100.0
    );
    ExitCode::SUCCESS
}

/// Drift issues between two trajectory `profile` extensions: every
/// attribution fraction or top-stack share present in *both* must agree
/// within `max_drift`.
fn profile_drift(before: &Value, after: &Value, max_drift: f64) -> Vec<String> {
    let mut issues = Vec::new();
    for section in ["attribution", "top_stacks"] {
        let (Some(b), Some(a)) = (
            before.get(section).and_then(Value::as_object),
            after.get(section).and_then(Value::as_object),
        ) else {
            continue;
        };
        for (name, bv) in b {
            let Some(before_frac) = bv.as_number() else {
                continue;
            };
            match a.get(name).and_then(Value::as_number) {
                Some(after_frac) => {
                    let delta = (after_frac - before_frac).abs();
                    if delta > max_drift {
                        issues.push(format!(
                            "{section}/{name} moved {before_frac:.3} -> {after_frac:.3} \
                             (|delta| {delta:.3} > {max_drift})"
                        ));
                    }
                }
                None if section == "attribution" => {
                    issues.push(format!("{section}/{name} vanished (was {before_frac:.3})"));
                }
                // Top-stack rank churn near the cut-off is not drift.
                None => {}
            }
        }
    }
    issues
}

/// Collects every numeric leaf under `value` as a `path/to/leaf` series
/// sample, skipping the envelope fields (`schema`, `commit`, `quick`).
fn flatten(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map {
                if prefix.is_empty() && matches!(key.as_str(), "schema" | "commit" | "quick") {
                    continue;
                }
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}/{key}")
                };
                flatten(child, &path, out);
            }
        }
        Value::Number(n) => out.push((prefix.to_string(), *n)),
        _ => {}
    }
}

/// One `github-action-benchmark`-shaped entry: commit header, sequence
/// date, and the flattened samples. Virtual-clock latencies are labelled
/// `ms`; counts are unitless.
fn entry(commit: &str, seq: u64, benches: Vec<(String, f64)>) -> Value {
    let benches = benches
        .into_iter()
        .map(|(name, value)| {
            let unit = if name.ends_with("_ms") { "ms" } else { "" };
            Value::Object(BTreeMap::from([
                ("name".into(), Value::String(name)),
                ("value".into(), Value::Number(value)),
                ("unit".into(), Value::String(unit.into())),
            ]))
        })
        .collect();
    Value::Object(BTreeMap::from([
        (
            "commit".into(),
            Value::Object(BTreeMap::from([
                ("id".into(), Value::String(commit.into())),
                ("message".into(), Value::String(String::new())),
                ("url".into(), Value::String(String::new())),
            ])),
        ),
        ("date".into(), Value::Number(seq as f64)),
        ("tool".into(), Value::String("customSmallerIsBetter".into())),
        ("benches".into(), Value::Array(benches)),
    ]))
}
