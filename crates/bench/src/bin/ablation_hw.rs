//! Hardware-outlook ablation (§7's recurring "in concurrent work \[19\] we
//! identify hardware modifications that improve performance by up to six
//! orders of magnitude"): reruns the headline experiments under three
//! hardware profiles — the paper's Broadcom TPM, the faster Infineon the
//! paper cites, and the \[19\]-style future hardware.

use flicker_apps::rootkit::{known_good_hash, Administrator};
use flicker_apps::{BoincClient, PasswdEntry, SshClient, SshServer, WorkUnit};
use flicker_bench::{print_table, EVAL_TPM_KEY_BITS};
use flicker_crypto::rng::XorShiftRng;
use flicker_machine::SkinitCostModel;
use flicker_os::{NetLink, Os, OsConfig};
use flicker_tpm::{PrivacyCa, TpmTimingProfile};
use std::time::Duration;

struct ProfileResult {
    name: &'static str,
    rootkit_query: Duration,
    ssh_login: Duration,
    distcomp_overhead: Duration,
    fig8_crossover_s: f64,
}

fn run_profile(
    name: &'static str,
    timing: TpmTimingProfile,
    skinit_cost: SkinitCostModel,
) -> ProfileResult {
    let mut config = OsConfig::default();
    config.machine.tpm.key_bits = EVAL_TPM_KEY_BITS;
    config.machine.tpm.timing = timing;
    config.machine.skinit_cost = skinit_cost;
    if name == "Future [19]" {
        // Future hardware also accelerates the CPU-side SHA-1 (measurement
        // engines at memory bandwidth).
        config.machine.cpu_cost.sha1_per_byte = Duration::from_nanos(1);
    }
    let mut rng = XorShiftRng::new(4242);
    let mut ca = PrivacyCa::new(EVAL_TPM_KEY_BITS, &mut rng);
    let mut os = Os::boot(config);
    os.provision_attestation(&mut ca, "ablation").unwrap();
    let cert = os.aik_certificate().unwrap().clone();

    // Rootkit query.
    let mut admin = Administrator::new(
        ca.public_key().clone(),
        known_good_hash(&os),
        NetLink::paper_verifier_link(1),
    );
    let rootkit_query = admin.query(&mut os, &cert).unwrap().query_latency;

    // SSH login (PAL 2 total).
    let mut server = SshServer::new(vec![PasswdEntry::new("alice", b"pw", b"salt")]);
    let mut client = SshClient::new(ca.public_key().clone());
    let mut link = NetLink::paper_verifier_link(2);
    let transcript = server
        .connection_setup(&mut os, &mut link, [1; 20])
        .unwrap();
    client.verify_setup(&cert, &transcript).unwrap();
    let nonce = server.issue_nonce();
    let ct = client.encrypt_password(b"pw", &nonce, &mut rng).unwrap();
    let ssh_login = server
        .login(&mut os, &mut link, "alice", &ct, nonce)
        .unwrap()
        .session
        .timings
        .total;

    // Distributed-computing per-session overhead + Figure 8 crossover.
    let unit = WorkUnit {
        n: 0xFFFF_FFFF_FFFF_FFC5,
        lo: 2,
        hi: u64::MAX,
    };
    let (mut bc, _) = BoincClient::start(&mut os, unit).unwrap();
    let rep = bc.run_slice(&mut os, Duration::from_secs(1)).unwrap();
    let overhead = rep.overhead;
    // Crossover with 3-way replication: eff(L) = 1/3 ⇒ L = 1.5 * overhead.
    let fig8_crossover_s = 1.5 * overhead.as_secs_f64();

    ProfileResult {
        name,
        rootkit_query,
        ssh_login,
        distcomp_overhead: overhead,
        fig8_crossover_s,
    }
}

fn main() {
    let profiles = [
        run_profile(
            "Broadcom (paper)",
            TpmTimingProfile::broadcom_bcm0102(),
            SkinitCostModel::amd_dc5750(),
        ),
        run_profile(
            "Infineon",
            TpmTimingProfile::infineon(),
            SkinitCostModel::amd_dc5750(),
        ),
        run_profile(
            "Future [19]",
            TpmTimingProfile::future_hardware(),
            SkinitCostModel::future_hardware(),
        ),
    ];

    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{:.1}", p.rootkit_query.as_secs_f64() * 1e3),
                format!("{:.1}", p.ssh_login.as_secs_f64() * 1e3),
                format!("{:.1}", p.distcomp_overhead.as_secs_f64() * 1e3),
                format!("{:.3}", p.fig8_crossover_s),
            ]
        })
        .collect();
    print_table(
        "Hardware ablation: headline results under three TPM/launch profiles (ms)",
        &[
            "Profile",
            "rootkit query",
            "SSH login PAL",
            "distcomp ovh/session",
            "Fig8 crossover [s]",
        ],
        &rows,
    );

    let speedup =
        profiles[0].distcomp_overhead.as_secs_f64() / profiles[2].distcomp_overhead.as_secs_f64();
    println!(
        "\nFuture-hardware speedup on per-session overhead: {speedup:.0}x — \
         with [19]-style support the Figure 8 crossover collapses from \
         ~1.4 s to ~{:.0} ms, making Flicker strictly better than \
         replication at any practical latency.",
        profiles[2].fig8_crossover_s * 1e3
    );
}
