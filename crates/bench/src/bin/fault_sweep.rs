//! Seeded fault-injection sweep: N schedules across the §6 applications.
//!
//! Every schedule must either survive (correct results despite faults) or
//! recover (clean error, platform fully restored). Any violation — panic,
//! leaked suspend state, secret residue, permanently unreadable sealed
//! storage, or a flight-recorder audit failure — is reported and makes
//! the process exit non-zero. Violating schedules dump their full flight
//! record as JSONL (replayable with `flicker_trace_tool audit --jsonl`).
//!
//! Usage: `fault_sweep [--seed N] [--schedules N] [--quick] [--dump-dir DIR]`

use flicker_bench::faultsweep::{run_sweep, Outcome, APPS};
use flicker_bench::print_table;
use std::io::Write as _;
use std::path::Path;

/// `--quick` schedule count: enough to exercise every app and fault kind,
/// small enough for a CI gate.
const QUICK_SCHEDULES: u64 = 25;

fn main() {
    let mut base_seed = 0u64;
    let mut schedules = 200u64;
    let mut quick = false;
    let mut dump_dir = String::from("target");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs an argument"))
        };
        match arg.as_str() {
            "--seed" => {
                base_seed = value("--seed")
                    .parse()
                    .expect("--seed needs a numeric argument");
            }
            "--schedules" => {
                schedules = value("--schedules")
                    .parse()
                    .expect("--schedules needs a numeric argument");
            }
            "--quick" => quick = true,
            "--dump-dir" => dump_dir = value("--dump-dir"),
            other => panic!("unknown argument: {other}"),
        }
    }
    if quick {
        schedules = QUICK_SCHEDULES;
    }

    let report = run_sweep(base_seed, schedules);

    let rows: Vec<Vec<String>> = APPS
        .iter()
        .map(|app| {
            let of_app = report.results.iter().filter(|r| r.app == *app);
            let (mut survived, mut recovered, mut violations, mut faults) =
                (0u64, 0u64, 0u64, 0u64);
            for r in of_app {
                match &r.outcome {
                    Outcome::Survived => survived += 1,
                    Outcome::Recovered(_) => recovered += 1,
                    Outcome::Violation(_) => violations += 1,
                }
                faults += r.faults.total();
            }
            vec![
                app.to_string(),
                survived.to_string(),
                recovered.to_string(),
                violations.to_string(),
                faults.to_string(),
            ]
        })
        .collect();

    print_table(
        &format!(
            "Fault sweep: {schedules} schedules from seed {base_seed} \
             ({} faults fired)",
            report.faults_fired
        ),
        &["App", "Survived", "Recovered", "Violations", "Faults"],
        &rows,
    );

    for r in report.violating() {
        if let Outcome::Violation(why) = &r.outcome {
            eprintln!("VIOLATION seed={} app={}: {why}", r.seed, r.app);
            match dump_flight_record(&dump_dir, r.seed, r.app, &r.flight_record) {
                Ok(path) => eprintln!("  flight record: {path}"),
                Err(e) => eprintln!("  flight record dump failed: {e}"),
            }
        }
    }

    println!(
        "\n{} survived, {} recovered, {} violations",
        report.survived, report.recovered, report.violations
    );
    if report.violations > 0 {
        std::process::exit(1);
    }
}

/// Writes one violating schedule's events to
/// `<dir>/flight_record_seed<seed>_<app>.jsonl` and returns the path.
fn dump_flight_record(
    dir: &str,
    seed: u64,
    app: &str,
    events: &[flicker_trace::Event],
) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = Path::new(dir).join(format!("flight_record_seed{seed}_{app}.jsonl"));
    let mut f = std::fs::File::create(&path).map_err(|e| e.to_string())?;
    for e in events {
        writeln!(f, "{}", e.to_jsonl()).map_err(|e| e.to_string())?;
    }
    Ok(path.display().to_string())
}
