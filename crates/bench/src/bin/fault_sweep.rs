//! Seeded fault-injection sweep: N schedules across the §6 applications.
//!
//! Every schedule must either survive (correct results despite faults) or
//! recover (clean error, platform fully restored). Any violation — panic,
//! leaked suspend state, secret residue, permanently unreadable sealed
//! storage — is reported and makes the process exit non-zero.
//!
//! Usage: `fault_sweep [--seed N] [--schedules N]`

use flicker_bench::faultsweep::{run_sweep, Outcome, APPS};
use flicker_bench::print_table;

fn main() {
    let mut base_seed = 0u64;
    let mut schedules = 200u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match arg.as_str() {
            "--seed" => base_seed = value("--seed"),
            "--schedules" => schedules = value("--schedules"),
            other => panic!("unknown argument: {other}"),
        }
    }

    let report = run_sweep(base_seed, schedules);

    let rows: Vec<Vec<String>> = APPS
        .iter()
        .map(|app| {
            let of_app = report.results.iter().filter(|r| r.app == *app);
            let (mut survived, mut recovered, mut violations, mut faults) =
                (0u64, 0u64, 0u64, 0u64);
            for r in of_app {
                match &r.outcome {
                    Outcome::Survived => survived += 1,
                    Outcome::Recovered(_) => recovered += 1,
                    Outcome::Violation(_) => violations += 1,
                }
                faults += r.faults.total();
            }
            vec![
                app.to_string(),
                survived.to_string(),
                recovered.to_string(),
                violations.to_string(),
                faults.to_string(),
            ]
        })
        .collect();

    print_table(
        &format!(
            "Fault sweep: {schedules} schedules from seed {base_seed} \
             ({} faults fired)",
            report.faults_fired
        ),
        &["App", "Survived", "Recovered", "Violations", "Faults"],
        &rows,
    );

    for r in report.violating() {
        if let Outcome::Violation(why) = &r.outcome {
            eprintln!("VIOLATION seed={} app={}: {why}", r.seed, r.app);
        }
    }

    println!(
        "\n{} survived, {} recovered, {} violations",
        report.survived, report.recovered, report.violations
    );
    if report.violations > 0 {
        std::process::exit(1);
    }
}
