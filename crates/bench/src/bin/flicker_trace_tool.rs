//! Flight-recorder trace tool: export, summarise, audit, and analyse a
//! full §6 application run's event stream.
//!
//! ```text
//! flicker_trace_tool export [--quick] [--format chrome|jsonl|prom]
//!                           [--out PATH] [--verify]
//! flicker_trace_tool summary [--quick]
//! flicker_trace_tool audit [--quick | --jsonl PATH]
//! flicker_trace_tool critical-path [--quick]
//! ```
//!
//! Every subcommand except `audit --jsonl` runs the perf-baseline workload
//! (all five applications) under one shared trace and operates on that
//! flight record. `audit` exits non-zero if the stream breaks any of the
//! paper's Figure-2/§4 invariants.

use flicker_bench::baseline::{run_baseline_traced, BaselineConfig};
use flicker_bench::{json, print_table};
use flicker_trace::{audit, export, DurationHistogram, Trace, DROPPED_EVENTS_COUNTER};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing subcommand");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "export" => cmd_export(&args),
        "summary" => cmd_summary(&args),
        "audit" => cmd_audit(&args),
        "critical-path" => cmd_critical_path(&args),
        other => usage(&format!("unknown subcommand {other:?}")),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: flicker_trace_tool <subcommand> [options]\n\
         \n\
         subcommands:\n\
         \x20 export        [--quick] [--format chrome|jsonl|prom] [--out PATH] [--verify]\n\
         \x20 summary       [--quick]\n\
         \x20 audit         [--quick | --jsonl PATH]\n\
         \x20 critical-path [--quick]"
    );
    ExitCode::FAILURE
}

fn config(quick: bool) -> BaselineConfig {
    if quick {
        BaselineConfig::quick()
    } else {
        BaselineConfig::full()
    }
}

fn record_flight(quick: bool) -> Trace {
    eprintln!(
        "recording flight: all five applications{}",
        if quick { " (quick)" } else { "" }
    );
    run_baseline_traced(&config(quick)).1
}

// ----- export ---------------------------------------------------------------

fn cmd_export(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut format = String::from("chrome");
    let mut out: Option<String> = None;
    let mut verify = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--verify" => verify = true,
            "--format" => match it.next() {
                Some(f) => format = f.clone(),
                None => return usage("--format needs chrome|jsonl|prom"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown export argument {other:?}")),
        }
    }
    let trace = record_flight(quick);
    let text = match format.as_str() {
        "chrome" => export::chrome_trace_json(&trace),
        "jsonl" => export::events_jsonl(&trace),
        "prom" => export::prometheus_text(&trace),
        other => return usage(&format!("unknown format {other:?}")),
    };
    if verify {
        if let Err(e) = verify_export(&format, &text, &trace) {
            eprintln!("export self-check failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("export self-check passed ({format})");
    }
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Smoke-checks an exported document: it must parse in its own format and
/// agree with the trace it came from.
fn verify_export(format: &str, text: &str, trace: &Trace) -> Result<(), String> {
    match format {
        "chrome" => {
            let doc = json::parse(text).map_err(|e| format!("chrome JSON invalid: {e}"))?;
            let events = doc
                .get("traceEvents")
                .and_then(json::Value::as_array)
                .ok_or("traceEvents missing")?;
            if events.is_empty() {
                return Err("no trace events".into());
            }
            Ok(())
        }
        "jsonl" => {
            let events = export::parse_events_jsonl(text)?;
            if events.len() != trace.event_count() {
                return Err(format!(
                    "round-trip lost events: {} != {}",
                    events.len(),
                    trace.event_count()
                ));
            }
            Ok(())
        }
        "prom" => {
            if !text.lines().any(|l| l.starts_with("# TYPE flicker_")) {
                return Err("no flicker_* metric families".into());
            }
            Ok(())
        }
        other => Err(format!("unknown format {other:?}")),
    }
}

// ----- summary --------------------------------------------------------------

fn cmd_summary(args: &[String]) -> ExitCode {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return usage(&format!("unknown summary argument {other:?}")),
        }
    }
    let trace = record_flight(quick);
    let events = trace.events();
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in &events {
        *by_kind.entry(e.kind.name()).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = by_kind
        .iter()
        .map(|(kind, n)| vec![kind.to_string(), n.to_string()])
        .collect();
    print_table("Flight-recorder events by kind", &["kind", "count"], &rows);
    let sessions = trace.spans_named("phase.suspend").len();
    println!("\nsessions:       {sessions}");
    println!("events kept:    {}", events.len());
    println!(
        "events dropped: {} (ring-buffer evictions, `{DROPPED_EVENTS_COUNTER}`)",
        trace.counter(DROPPED_EVENTS_COUNTER)
    );
    ExitCode::SUCCESS
}

// ----- audit ----------------------------------------------------------------

fn cmd_audit(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut jsonl: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jsonl" => match it.next() {
                Some(p) => jsonl = Some(p.clone()),
                None => return usage("--jsonl needs a path"),
            },
            other => return usage(&format!("unknown audit argument {other:?}")),
        }
    }
    let events = match jsonl {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("reading {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match export::parse_events_jsonl(&text) {
                Ok(events) => events,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => record_flight(quick).events(),
    };
    let violations = audit::audit_events(&events);
    if violations.is_empty() {
        println!(
            "audit clean: {} events satisfy every Figure-2/§4 invariant",
            events.len()
        );
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("VIOLATION {v}");
    }
    eprintln!("{} invariant violation(s)", violations.len());
    ExitCode::FAILURE
}

// ----- critical-path --------------------------------------------------------

fn cmd_critical_path(args: &[String]) -> ExitCode {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return usage(&format!("unknown critical-path argument {other:?}")),
        }
    }
    let trace = record_flight(quick);

    // Where session wall-time goes, by Figure-2 phase.
    let mut phase_totals: Vec<(String, Duration, u64)> = Vec::new();
    let mut grand_total = Duration::ZERO;
    for name in flicker_core::PHASE_SPAN_NAMES {
        let spans = trace.spans_named(name);
        let total: Duration = spans.iter().filter_map(|s| s.duration).sum();
        grand_total += total;
        phase_totals.push((name.to_string(), total, spans.len() as u64));
    }
    phase_totals.sort_by_key(|t| std::cmp::Reverse(t.1));
    let rows: Vec<Vec<String>> = phase_totals
        .iter()
        .map(|(name, total, n)| {
            let share = if grand_total.is_zero() {
                0.0
            } else {
                total.as_secs_f64() / grand_total.as_secs_f64() * 100.0
            };
            vec![
                name.clone(),
                n.to_string(),
                format!("{:.1}", total.as_secs_f64() * 1e3),
                format!("{share:.1}%"),
            ]
        })
        .collect();
    print_table(
        "Critical path: session time by phase",
        &["phase", "spans", "total_ms", "share"],
        &rows,
    );

    // The TPM ordinals behind those phases, by total simulated time.
    let mut ordinals: Vec<(&'static str, DurationHistogram)> = trace
        .histograms()
        .into_iter()
        .filter(|(name, _)| name.starts_with("tpm.TPM_"))
        .collect();
    ordinals.sort_by_key(|o| std::cmp::Reverse(o.1.sum()));
    let rows: Vec<Vec<String>> = ordinals
        .iter()
        .take(8)
        .map(|(name, h)| {
            vec![
                name.to_string(),
                h.count().to_string(),
                format!("{:.1}", h.sum().as_secs_f64() * 1e3),
                format!("{:.1}", h.mean().as_secs_f64() * 1e3),
            ]
        })
        .collect();
    print_table(
        "Dominant TPM ordinals",
        &["ordinal", "count", "total_ms", "mean_ms"],
        &rows,
    );
    ExitCode::SUCCESS
}
