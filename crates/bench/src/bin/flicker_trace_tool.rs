//! Flight-recorder trace tool: export, summarise, audit, and analyse a
//! full §6 application run's event stream.
//!
//! ```text
//! flicker_trace_tool export [--quick] [--format chrome|jsonl|prom]
//!                           [--out PATH] [--verify]
//! flicker_trace_tool summary [--quick]
//! flicker_trace_tool audit [--quick | --jsonl PATH]
//! flicker_trace_tool critical-path [--quick]
//! flicker_trace_tool attribute [--quick | --from DIR]
//! flicker_trace_tool farm-timeline [--quick | --from DIR] [--limit N]
//! ```
//!
//! `export`, `summary`, `audit` (without `--jsonl`), and `critical-path`
//! run the perf-baseline workload (all five applications) under one
//! shared trace and operate on that flight record; `audit` exits non-zero
//! if the stream breaks any of the paper's Figure-2/§4 invariants *or*
//! was truncated by ring-buffer evictions (an incomplete stream proves
//! nothing). `attribute` and `farm-timeline` operate on a *farm* flight —
//! either a fresh quick/full farm run, or a flight directory previously
//! written by `farm_bench --flight-dir` — and respectively break each
//! request's latency into named categories (gated at ≥ 99% coverage, SLO
//! enforced) and render all machines' virtual clocks merged onto the
//! coordinator's wall-time axis through anchor events.

use flicker_bench::baseline::{run_baseline_traced, BaselineConfig};
use flicker_bench::farmattr::{self, FarmFlight};
use flicker_bench::{json, print_table};
use flicker_farm::{Farm, FarmConfig, RequestSpec};
use flicker_trace::{audit, export, DurationHistogram, Trace, DROPPED_EVENTS_COUNTER};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing subcommand");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "export" => cmd_export(&args),
        "summary" => cmd_summary(&args),
        "audit" => cmd_audit(&args),
        "critical-path" => cmd_critical_path(&args),
        "attribute" => cmd_attribute(&args),
        "farm-timeline" => cmd_farm_timeline(&args),
        other => usage(&format!("unknown subcommand {other:?}")),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: flicker_trace_tool <subcommand> [options]\n\
         \n\
         subcommands:\n\
         \x20 export        [--quick] [--format chrome|jsonl|prom] [--out PATH] [--verify]\n\
         \x20 summary       [--quick]\n\
         \x20 audit         [--quick | --jsonl PATH]\n\
         \x20 critical-path [--quick]\n\
         \x20 attribute     [--quick | --from DIR]\n\
         \x20 farm-timeline [--quick | --from DIR] [--limit N]"
    );
    ExitCode::FAILURE
}

fn config(quick: bool) -> BaselineConfig {
    if quick {
        BaselineConfig::quick()
    } else {
        BaselineConfig::full()
    }
}

fn record_flight(quick: bool) -> Trace {
    eprintln!(
        "recording flight: all five applications{}",
        if quick { " (quick)" } else { "" }
    );
    run_baseline_traced(&config(quick)).1
}

// ----- export ---------------------------------------------------------------

fn cmd_export(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut format = String::from("chrome");
    let mut out: Option<String> = None;
    let mut verify = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--verify" => verify = true,
            "--format" => match it.next() {
                Some(f) => format = f.clone(),
                None => return usage("--format needs chrome|jsonl|prom"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown export argument {other:?}")),
        }
    }
    let trace = record_flight(quick);
    let text = match format.as_str() {
        "chrome" => export::chrome_trace_json(&trace),
        "jsonl" => export::events_jsonl(&trace),
        "prom" => export::prometheus_text(&trace),
        other => return usage(&format!("unknown format {other:?}")),
    };
    if verify {
        if let Err(e) = verify_export(&format, &text, &trace) {
            eprintln!("export self-check failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("export self-check passed ({format})");
    }
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Smoke-checks an exported document: it must parse in its own format and
/// agree with the trace it came from.
fn verify_export(format: &str, text: &str, trace: &Trace) -> Result<(), String> {
    match format {
        "chrome" => {
            let doc = json::parse(text).map_err(|e| format!("chrome JSON invalid: {e}"))?;
            let events = doc
                .get("traceEvents")
                .and_then(json::Value::as_array)
                .ok_or("traceEvents missing")?;
            if events.is_empty() {
                return Err("no trace events".into());
            }
            Ok(())
        }
        "jsonl" => {
            let events = export::parse_events_jsonl(text)?;
            if events.len() != trace.event_count() {
                return Err(format!(
                    "round-trip lost events: {} != {}",
                    events.len(),
                    trace.event_count()
                ));
            }
            Ok(())
        }
        "prom" => {
            if !text.lines().any(|l| l.starts_with("# TYPE flicker_")) {
                return Err("no flicker_* metric families".into());
            }
            Ok(())
        }
        other => Err(format!("unknown format {other:?}")),
    }
}

// ----- summary --------------------------------------------------------------

fn cmd_summary(args: &[String]) -> ExitCode {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return usage(&format!("unknown summary argument {other:?}")),
        }
    }
    let trace = record_flight(quick);
    let events = trace.events();
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in &events {
        *by_kind.entry(e.kind.name()).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = by_kind
        .iter()
        .map(|(kind, n)| vec![kind.to_string(), n.to_string()])
        .collect();
    print_table("Flight-recorder events by kind", &["kind", "count"], &rows);
    let sessions = trace.spans_named("phase.suspend").len();
    println!("\nsessions:       {sessions}");
    println!("events kept:    {}", events.len());
    println!(
        "events dropped: {} (ring-buffer evictions, `{DROPPED_EVENTS_COUNTER}`)",
        trace.counter(DROPPED_EVENTS_COUNTER)
    );
    ExitCode::SUCCESS
}

// ----- audit ----------------------------------------------------------------

fn cmd_audit(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut jsonl: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jsonl" => match it.next() {
                Some(p) => jsonl = Some(p.clone()),
                None => return usage("--jsonl needs a path"),
            },
            other => return usage(&format!("unknown audit argument {other:?}")),
        }
    }
    // A live trace knows how many events its ring buffer evicted; a JSONL
    // file is taken at face value (its writer is responsible for refusing
    // to export a truncated stream).
    let (events, dropped) = match jsonl {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("reading {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match export::parse_events_jsonl(&text) {
                Ok(events) => (events, 0),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let trace = record_flight(quick);
            (trace.events(), trace.dropped_events())
        }
    };
    let verdict = audit::audit_events_with_drops(&events, dropped);
    if verdict.is_clean() {
        println!(
            "audit clean: {} events satisfy every Figure-2/§4 invariant",
            events.len()
        );
        return ExitCode::SUCCESS;
    }
    for v in verdict.violations() {
        eprintln!("VIOLATION {v}");
    }
    if verdict.dropped_events() > 0 {
        eprintln!(
            "stream truncated: {} event(s) evicted before the audit — the \
             verdict is inconclusive at best",
            verdict.dropped_events()
        );
    }
    eprintln!("audit verdict: {verdict}");
    ExitCode::FAILURE
}

// ----- attribute / farm-timeline --------------------------------------------

/// Obtains a farm flight: from a directory written by
/// `farm_bench --flight-dir`, or by driving a fresh farm run (2 machines
/// × 15 seeded schedules quick, 8 × 200 full — farm_bench's sizes).
fn farm_flight(quick: bool, from: Option<&str>) -> Result<FarmFlight, String> {
    if let Some(dir) = from {
        return FarmFlight::read(Path::new(dir));
    }
    let (machines, requests) = if quick { (2, 15u64) } else { (8, 200) };
    eprintln!("driving farm: {machines} machines, {requests} seeded fault schedules");
    let farm = Farm::start(FarmConfig {
        machines,
        queue_bound: requests as usize,
        ..FarmConfig::default()
    });
    for seed in 0..requests {
        farm.submit(RequestSpec::seeded(seed));
    }
    let report = farm.shutdown();
    report.verify_conservation()?;
    let findings = report.audit_shards();
    if !findings.is_empty() {
        return Err(format!("shard audit failed: {findings:?}"));
    }
    Ok(FarmFlight::from_report(&report))
}

/// Handler for subcommand-specific flags in [`flight_args`]: receives the
/// unrecognised argument plus the iterator (to consume a value).
type ExtraArg<'a, 'b> =
    &'b mut dyn FnMut(&str, &mut std::slice::Iter<'a, String>) -> Result<(), String>;

/// Parses the shared `[--quick | --from DIR]` argument pair.
fn flight_args<'a>(
    args: &'a [String],
    extra: ExtraArg<'a, '_>,
) -> Result<(bool, Option<&'a str>), String> {
    let mut quick = false;
    let mut from = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--from" => match it.next() {
                Some(dir) => from = Some(dir.as_str()),
                None => return Err("--from needs a directory".into()),
            },
            other => extra(other, &mut it)?,
        }
    }
    Ok((quick, from))
}

fn cmd_attribute(args: &[String]) -> ExitCode {
    let parsed = flight_args(args, &mut |arg, _| {
        Err(format!("unknown attribute argument {arg:?}"))
    });
    let (quick, from) = match parsed {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let flight = match farm_flight(quick, from) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let policy = farmattr::default_slo_policy();
    let (attr, slo) = farmattr::evaluate(&flight, &policy);
    farmattr::print_summary(&attr, &slo);
    let failures = farmattr::gate(&flight, &attr, &slo);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ATTRIBUTION GATE: {f}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "attribution gate passed: every request ≥ {:.0}% covered, SLOs held, \
         streams complete",
        farmattr::MIN_COVERAGE * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_farm_timeline(args: &[String]) -> ExitCode {
    let mut limit = 200usize;
    let parsed = flight_args(args, &mut |arg, it| match arg {
        "--limit" => match it.next().and_then(|v| v.parse().ok()) {
            Some(n) => {
                limit = n;
                Ok(())
            }
            None => Err("--limit needs a count".into()),
        },
        other => Err(format!("unknown farm-timeline argument {other:?}")),
    });
    let (quick, from) = match parsed {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let flight = match farm_flight(quick, from) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", farmattr::render_timeline(&flight, limit));
    ExitCode::SUCCESS
}

// ----- critical-path --------------------------------------------------------

fn cmd_critical_path(args: &[String]) -> ExitCode {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return usage(&format!("unknown critical-path argument {other:?}")),
        }
    }
    let trace = record_flight(quick);

    // Where session wall-time goes, by Figure-2 phase.
    let mut phase_totals: Vec<(String, Duration, u64)> = Vec::new();
    let mut grand_total = Duration::ZERO;
    for name in flicker_core::PHASE_SPAN_NAMES {
        let spans = trace.spans_named(name);
        let total: Duration = spans.iter().filter_map(|s| s.duration).sum();
        grand_total += total;
        phase_totals.push((name.to_string(), total, spans.len() as u64));
    }
    phase_totals.sort_by_key(|t| std::cmp::Reverse(t.1));
    let rows: Vec<Vec<String>> = phase_totals
        .iter()
        .map(|(name, total, n)| {
            let share = if grand_total.is_zero() {
                0.0
            } else {
                total.as_secs_f64() / grand_total.as_secs_f64() * 100.0
            };
            vec![
                name.clone(),
                n.to_string(),
                format!("{:.1}", total.as_secs_f64() * 1e3),
                format!("{share:.1}%"),
            ]
        })
        .collect();
    print_table(
        "Critical path: session time by phase",
        &["phase", "spans", "total_ms", "share"],
        &rows,
    );

    // The TPM ordinals behind those phases, by total simulated time.
    let mut ordinals: Vec<(&'static str, DurationHistogram)> = trace
        .histograms()
        .into_iter()
        .filter(|(name, _)| name.starts_with("tpm.TPM_"))
        .collect();
    ordinals.sort_by_key(|o| std::cmp::Reverse(o.1.sum()));
    let rows: Vec<Vec<String>> = ordinals
        .iter()
        .take(8)
        .map(|(name, h)| {
            vec![
                name.to_string(),
                h.count().to_string(),
                format!("{:.1}", h.sum().as_secs_f64() * 1e3),
                format!("{:.1}", h.mean().as_secs_f64() * 1e3),
            ]
        })
        .collect();
    print_table(
        "Dominant TPM ordinals",
        &["ordinal", "count", "total_ms", "mean_ms"],
        &rows,
    );
    ExitCode::SUCCESS
}
