//! Flight-recorder trace tool: export, summarise, audit, and analyse a
//! full §6 application run's event stream.
//!
//! ```text
//! flicker_trace_tool export [--quick] [--format chrome|jsonl|prom]
//!                           [--out PATH] [--verify]
//! flicker_trace_tool summary [--quick]
//! flicker_trace_tool audit [--quick | --jsonl PATH]
//! flicker_trace_tool critical-path [--quick]
//! flicker_trace_tool attribute [--quick | --from DIR]
//! flicker_trace_tool farm-timeline [--quick | --from DIR] [--limit N]
//! flicker_trace_tool profile [--quick] [--json] [--out PATH]
//! flicker_trace_tool profile --check PATH [--quick]
//! flicker_trace_tool flamegraph [--quick] [--format folded|chrome]
//!                               [--out PATH] [--diff PATH | --diff-warm]
//! ```
//!
//! `export`, `summary`, `audit` (without `--jsonl`), and `critical-path`
//! run the perf-baseline workload (all five applications) under one
//! shared trace and operate on that flight record; `audit` exits non-zero
//! if the stream breaks any of the paper's Figure-2/§4 invariants *or*
//! was truncated by ring-buffer evictions (an incomplete stream proves
//! nothing). `attribute` and `farm-timeline` operate on a *farm* flight —
//! either a fresh quick/full farm run, or a flight directory previously
//! written by `farm_bench --flight-dir` — and respectively break each
//! request's latency into named categories (gated at ≥ 99% coverage, SLO
//! enforced) and render all machines' virtual clocks merged onto the
//! coordinator's wall-time axis through anchor events.

use flicker_bench::baseline::{run_baseline_traced, BaselineConfig};
use flicker_bench::farmattr::{self, FarmFlight};
use flicker_bench::profile as bench_profile;
use flicker_bench::{json, print_table};
use flicker_farm::{Farm, FarmConfig, RequestSpec};
use flicker_trace::profile as trace_profile;
use flicker_trace::{audit, export, DurationHistogram, Trace, DROPPED_EVENTS_COUNTER};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing subcommand");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "export" => cmd_export(&args),
        "summary" => cmd_summary(&args),
        "audit" => cmd_audit(&args),
        "critical-path" => cmd_critical_path(&args),
        "attribute" => cmd_attribute(&args),
        "farm-timeline" => cmd_farm_timeline(&args),
        "profile" => cmd_profile(&args),
        "flamegraph" => cmd_flamegraph(&args),
        other => usage(&format!("unknown subcommand {other:?}")),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: flicker_trace_tool <subcommand> [options]\n\
         \n\
         subcommands:\n\
         \x20 export        [--quick] [--format chrome|jsonl|prom] [--out PATH] [--verify]\n\
         \x20 summary       [--quick]\n\
         \x20 audit         [--quick | --jsonl PATH]\n\
         \x20 critical-path [--quick]\n\
         \x20 attribute     [--quick | --from DIR]\n\
         \x20 farm-timeline [--quick | --from DIR] [--limit N]\n\
         \x20 profile       [--quick] [--json] [--out PATH] [--check PATH]\n\
         \x20 flamegraph    [--quick] [--format folded|chrome] [--out PATH]\n\
         \x20               [--diff PATH | --diff-warm]"
    );
    ExitCode::FAILURE
}

fn config(quick: bool) -> BaselineConfig {
    if quick {
        BaselineConfig::quick()
    } else {
        BaselineConfig::full()
    }
}

fn record_flight(quick: bool) -> Trace {
    eprintln!(
        "recording flight: all five applications{}",
        if quick { " (quick)" } else { "" }
    );
    run_baseline_traced(&config(quick)).1
}

// ----- export ---------------------------------------------------------------

fn cmd_export(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut format = String::from("chrome");
    let mut out: Option<String> = None;
    let mut verify = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--verify" => verify = true,
            "--format" => match it.next() {
                Some(f) => format = f.clone(),
                None => return usage("--format needs chrome|jsonl|prom"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown export argument {other:?}")),
        }
    }
    let trace = record_flight(quick);
    let text = match format.as_str() {
        "chrome" => export::chrome_trace_json(&trace),
        "jsonl" => export::events_jsonl(&trace),
        "prom" => export::prometheus_text(&trace),
        other => return usage(&format!("unknown format {other:?}")),
    };
    if verify {
        if let Err(e) = verify_export(&format, &text, &trace) {
            eprintln!("export self-check failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("export self-check passed ({format})");
    }
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Smoke-checks an exported document: it must parse in its own format and
/// agree with the trace it came from.
fn verify_export(format: &str, text: &str, trace: &Trace) -> Result<(), String> {
    match format {
        "chrome" => {
            let doc = json::parse(text).map_err(|e| format!("chrome JSON invalid: {e}"))?;
            let events = doc
                .get("traceEvents")
                .and_then(json::Value::as_array)
                .ok_or("traceEvents missing")?;
            if events.is_empty() {
                return Err("no trace events".into());
            }
            Ok(())
        }
        "jsonl" => {
            let events = export::parse_events_jsonl(text)?;
            if events.len() != trace.event_count() {
                return Err(format!(
                    "round-trip lost events: {} != {}",
                    events.len(),
                    trace.event_count()
                ));
            }
            Ok(())
        }
        "prom" => {
            if !text.lines().any(|l| l.starts_with("# TYPE flicker_")) {
                return Err("no flicker_* metric families".into());
            }
            Ok(())
        }
        other => Err(format!("unknown format {other:?}")),
    }
}

// ----- summary --------------------------------------------------------------

fn cmd_summary(args: &[String]) -> ExitCode {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return usage(&format!("unknown summary argument {other:?}")),
        }
    }
    let trace = record_flight(quick);
    let events = trace.events();
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in &events {
        *by_kind.entry(e.kind.name()).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = by_kind
        .iter()
        .map(|(kind, n)| vec![kind.to_string(), n.to_string()])
        .collect();
    print_table("Flight-recorder events by kind", &["kind", "count"], &rows);
    let sessions = trace.spans_named("phase.suspend").len();
    println!("\nsessions:       {sessions}");
    println!("events kept:    {}", events.len());
    println!(
        "events dropped: {} (ring-buffer evictions, `{DROPPED_EVENTS_COUNTER}`)",
        trace.counter(DROPPED_EVENTS_COUNTER)
    );
    ExitCode::SUCCESS
}

// ----- audit ----------------------------------------------------------------

fn cmd_audit(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut jsonl: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jsonl" => match it.next() {
                Some(p) => jsonl = Some(p.clone()),
                None => return usage("--jsonl needs a path"),
            },
            other => return usage(&format!("unknown audit argument {other:?}")),
        }
    }
    // A live trace knows how many events its ring buffer evicted; a JSONL
    // file is taken at face value (its writer is responsible for refusing
    // to export a truncated stream).
    let (events, dropped) = match jsonl {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("reading {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match export::parse_events_jsonl(&text) {
                Ok(events) => (events, 0),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let trace = record_flight(quick);
            (trace.events(), trace.dropped_events())
        }
    };
    let verdict = audit::audit_events_with_drops(&events, dropped);
    if verdict.is_clean() {
        println!(
            "audit clean: {} events satisfy every Figure-2/§4 invariant",
            events.len()
        );
        return ExitCode::SUCCESS;
    }
    for v in verdict.violations() {
        eprintln!("VIOLATION {v}");
    }
    if verdict.dropped_events() > 0 {
        eprintln!(
            "stream truncated: {} event(s) evicted before the audit — the \
             verdict is inconclusive at best",
            verdict.dropped_events()
        );
    }
    eprintln!("audit verdict: {verdict}");
    ExitCode::FAILURE
}

// ----- attribute / farm-timeline --------------------------------------------

/// Obtains a farm flight: from a directory written by
/// `farm_bench --flight-dir`, or by driving a fresh farm run (2 machines
/// × 15 seeded schedules quick, 8 × 200 full — farm_bench's sizes).
fn farm_flight(quick: bool, from: Option<&str>) -> Result<FarmFlight, String> {
    if let Some(dir) = from {
        return FarmFlight::read(Path::new(dir));
    }
    let (machines, requests) = if quick { (2, 15u64) } else { (8, 200) };
    eprintln!("driving farm: {machines} machines, {requests} seeded fault schedules");
    let farm = Farm::start(FarmConfig {
        machines,
        queue_bound: requests as usize,
        ..FarmConfig::default()
    });
    for seed in 0..requests {
        farm.submit(RequestSpec::seeded(seed));
    }
    let report = farm.shutdown();
    report.verify_conservation()?;
    let findings = report.audit_shards();
    if !findings.is_empty() {
        return Err(format!("shard audit failed: {findings:?}"));
    }
    Ok(FarmFlight::from_report(&report))
}

/// Handler for subcommand-specific flags in [`flight_args`]: receives the
/// unrecognised argument plus the iterator (to consume a value).
type ExtraArg<'a, 'b> =
    &'b mut dyn FnMut(&str, &mut std::slice::Iter<'a, String>) -> Result<(), String>;

/// Parses the shared `[--quick | --from DIR]` argument pair.
fn flight_args<'a>(
    args: &'a [String],
    extra: ExtraArg<'a, '_>,
) -> Result<(bool, Option<&'a str>), String> {
    let mut quick = false;
    let mut from = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--from" => match it.next() {
                Some(dir) => from = Some(dir.as_str()),
                None => return Err("--from needs a directory".into()),
            },
            other => extra(other, &mut it)?,
        }
    }
    Ok((quick, from))
}

fn cmd_attribute(args: &[String]) -> ExitCode {
    let parsed = flight_args(args, &mut |arg, _| {
        Err(format!("unknown attribute argument {arg:?}"))
    });
    let (quick, from) = match parsed {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let flight = match farm_flight(quick, from) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let policy = farmattr::default_slo_policy();
    let (attr, slo) = farmattr::evaluate(&flight, &policy);
    farmattr::print_summary(&attr, &slo);
    let failures = farmattr::gate(&flight, &attr, &slo);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ATTRIBUTION GATE: {f}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "attribution gate passed: every request ≥ {:.0}% covered, SLOs held, \
         streams complete",
        farmattr::MIN_COVERAGE * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_farm_timeline(args: &[String]) -> ExitCode {
    let mut limit = 200usize;
    let parsed = flight_args(args, &mut |arg, it| match arg {
        "--limit" => match it.next().and_then(|v| v.parse().ok()) {
            Some(n) => {
                limit = n;
                Ok(())
            }
            None => Err("--limit needs a count".into()),
        },
        other => Err(format!("unknown farm-timeline argument {other:?}")),
    });
    let (quick, from) = match parsed {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let flight = match farm_flight(quick, from) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", farmattr::render_timeline(&flight, limit));
    ExitCode::SUCCESS
}

// ----- critical-path --------------------------------------------------------

fn cmd_critical_path(args: &[String]) -> ExitCode {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return usage(&format!("unknown critical-path argument {other:?}")),
        }
    }
    let trace = record_flight(quick);

    // Where session wall-time goes, by Figure-2 phase.
    let mut phase_totals: Vec<(String, Duration, u64)> = Vec::new();
    let mut grand_total = Duration::ZERO;
    for name in flicker_core::PHASE_SPAN_NAMES {
        let spans = trace.spans_named(name);
        let total: Duration = spans.iter().filter_map(|s| s.duration).sum();
        grand_total += total;
        phase_totals.push((name.to_string(), total, spans.len() as u64));
    }
    phase_totals.sort_by_key(|t| std::cmp::Reverse(t.1));
    let rows: Vec<Vec<String>> = phase_totals
        .iter()
        .map(|(name, total, n)| {
            let share = if grand_total.is_zero() {
                0.0
            } else {
                total.as_secs_f64() / grand_total.as_secs_f64() * 100.0
            };
            vec![
                name.clone(),
                n.to_string(),
                format!("{:.1}", total.as_secs_f64() * 1e3),
                format!("{share:.1}%"),
            ]
        })
        .collect();
    print_table(
        "Critical path: session time by phase",
        &["phase", "spans", "total_ms", "share"],
        &rows,
    );

    // The TPM ordinals behind those phases, by total simulated time.
    let mut ordinals: Vec<(&'static str, DurationHistogram)> = trace
        .histograms()
        .into_iter()
        .filter(|(name, _)| name.starts_with("tpm.TPM_"))
        .collect();
    ordinals.sort_by_key(|o| std::cmp::Reverse(o.1.sum()));
    let rows: Vec<Vec<String>> = ordinals
        .iter()
        .take(8)
        .map(|(name, h)| {
            vec![
                name.to_string(),
                h.count().to_string(),
                format!("{:.1}", h.sum().as_secs_f64() * 1e3),
                format!("{:.1}", h.mean().as_secs_f64() * 1e3),
            ]
        })
        .collect();
    print_table(
        "Dominant TPM ordinals",
        &["ordinal", "count", "total_ms", "mean_ms"],
        &rows,
    );
    ExitCode::SUCCESS
}

// ----- profile / flamegraph -------------------------------------------------

/// Records a flight and builds its profile-baseline document + tree.
fn profiled_flight(quick: bool) -> (json::Value, trace_profile::Profile) {
    let trace = record_flight(quick);
    bench_profile::report_with_profile(quick, &trace)
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut json_out = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_out = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage("--out needs a path"),
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown profile argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (current, _) = profiled_flight(quick);
        return match bench_profile::compare(&baseline, &current) {
            Ok(notes) => {
                for n in &notes {
                    eprintln!("drift (within gate): {n}");
                }
                println!(
                    "profile check passed: attribution ≥ {:.0}% on gated ordinals, \
                     stack shares within {:.0}pp of {path}",
                    bench_profile::MIN_ATTRIBUTED_FRACTION * 100.0,
                    bench_profile::MAX_SHARE_DRIFT * 100.0,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("PROFILE GATE: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let (doc, profile) = profiled_flight(quick);
    if let Err(e) = reconcile(&profile) {
        eprintln!("PROFILE GATE: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = bench_profile::validate(&doc) {
        eprintln!("PROFILE GATE: {e}");
        return ExitCode::FAILURE;
    }
    if json_out {
        println!("{}", doc.to_pretty());
    } else {
        print_profile_summary(&doc, &profile);
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, doc.to_pretty()) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// The 1 % gate: collapsed-stack weights must sum back to the profile's
/// inclusive total, and the merged session root must carry the sessions'
/// reported latency.
fn reconcile(profile: &trace_profile::Profile) -> Result<(), String> {
    let folded: u64 = profile.folded_weights().values().sum();
    let total = profile.total().as_nanos() as u64;
    if total == 0 {
        return Err("profile recorded no time".into());
    }
    let err = (total.abs_diff(folded)) as f64 / total as f64;
    if err > 0.01 {
        return Err(format!(
            "folded weights sum to {folded} ns vs profile total {total} ns \
             ({:.2}% off, gate is 1%)",
            err * 100.0
        ));
    }
    if profile.session_total().is_zero() {
        return Err("no session windows in the profile".into());
    }
    Ok(())
}

fn print_profile_summary(doc: &json::Value, profile: &trace_profile::Profile) {
    let total = profile.total();
    let session = profile.session_total();
    let rows: Vec<Vec<String>> = profile
        .top_self(12)
        .into_iter()
        .map(|(path, ns)| {
            let share = ns as f64 / (total.as_nanos() as f64).max(1.0) * 100.0;
            vec![
                path,
                format!("{:.1}", ns as f64 / 1e6),
                format!("{share:.1}%"),
            ]
        })
        .collect();
    print_table(
        "Hottest stacks (self time)",
        &["stack", "self_ms", "share"],
        &rows,
    );

    if let Some(attr) = doc.get("attribution").and_then(json::Value::as_object) {
        let rows: Vec<Vec<String>> = attr
            .iter()
            .map(|(ordinal, e)| {
                let cell = |k: &str| {
                    e.get(k)
                        .and_then(json::Value::as_number)
                        .map_or_else(|| "-".into(), |v| format!("{v:.2}"))
                };
                let frac = e
                    .get("fraction")
                    .and_then(json::Value::as_number)
                    .unwrap_or(0.0);
                vec![
                    ordinal.clone(),
                    cell("charged_ms"),
                    cell("attributed_ms"),
                    format!("{:.1}%", frac * 100.0),
                ]
            })
            .collect();
        print_table(
            "Crypto cost model: per-ordinal attribution",
            &["ordinal", "charged_ms", "attributed_ms", "fraction"],
            &rows,
        );
    }
    println!(
        "\nprofile total: {:.1} ms ({:.1} ms in sessions); reconciliation loss {:.4}%",
        total.as_secs_f64() * 1e3,
        session.as_secs_f64() * 1e3,
        profile.reconciliation_error() * 100.0,
    );
}

fn cmd_flamegraph(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut format = String::from("folded");
    let mut out: Option<String> = None;
    let mut diff: Option<String> = None;
    let mut diff_warm = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--diff-warm" => diff_warm = true,
            "--format" => match it.next() {
                Some(f) => format = f.clone(),
                None => return usage("--format needs folded|chrome"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage("--out needs a path"),
            },
            "--diff" => match it.next() {
                Some(p) => diff = Some(p.clone()),
                None => return usage("--diff needs a folded-stacks file"),
            },
            other => return usage(&format!("unknown flamegraph argument {other:?}")),
        }
    }

    if diff_warm {
        return flamegraph_diff_warm();
    }

    let trace = record_flight(quick);
    let profile = trace_profile::build(&trace);
    if let Err(e) = reconcile(&profile) {
        eprintln!("FLAMEGRAPH GATE: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = diff {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let before = match trace_profile::parse_folded(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let after = profile.folded_weights();
        let deltas = trace_profile::diff_folded(&before, &after);
        if deltas.is_empty() {
            println!("no drift: current folded stacks are identical to {path}");
            return ExitCode::SUCCESS;
        }
        let rows: Vec<Vec<String>> = deltas
            .iter()
            .take(20)
            .map(|d| {
                vec![
                    d.path.clone(),
                    format!("{:.1}", d.before as f64 / 1e6),
                    format!("{:.1}", d.after as f64 / 1e6),
                    format!("{:+.1}", d.delta() as f64 / 1e6),
                ]
            })
            .collect();
        print_table(
            &format!("Folded-stack drift vs {path} (ms)"),
            &["stack", "before_ms", "after_ms", "delta_ms"],
            &rows,
        );
        return ExitCode::SUCCESS;
    }

    let text = match format.as_str() {
        "folded" => profile.folded(),
        "chrome" => profile.to_chrome_json(),
        other => return usage(&format!("unknown flamegraph format {other:?}")),
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Cold-vs-warm diff: a 1-iteration flight (cold caches, per-boot key
/// loads unamortised) against the standard quick flight, compared by
/// *share* of total time so the different run lengths cancel out.
fn flamegraph_diff_warm() -> ExitCode {
    eprintln!("recording cold flight (1 iteration per app)");
    let cold_trace = run_baseline_traced(&BaselineConfig {
        iterations_per_app: 1,
        quick: true,
    })
    .1;
    let cold = trace_profile::build(&cold_trace);
    eprintln!("recording warm flight (quick)");
    let warm_trace = run_baseline_traced(&BaselineConfig::quick()).1;
    let warm = trace_profile::build(&warm_trace);

    let shares = |p: &trace_profile::Profile| -> BTreeMap<String, f64> {
        let total = (p.total().as_nanos() as f64).max(1.0);
        p.folded_weights()
            .into_iter()
            .map(|(path, w)| (path, w as f64 / total))
            .collect()
    };
    let (c, w) = (shares(&cold), shares(&warm));
    let mut rows: Vec<(String, f64, f64)> = c
        .keys()
        .chain(w.keys())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|path| {
            let b = c.get(path).copied().unwrap_or(0.0);
            let a = w.get(path).copied().unwrap_or(0.0);
            (path.clone(), b, a)
        })
        .filter(|&(_, b, a)| (a - b).abs() > 1e-4)
        .collect();
    rows.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .total_cmp(&(x.2 - x.1).abs())
            .then(x.0.cmp(&y.0))
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .take(20)
        .map(|(path, b, a)| {
            vec![
                path.clone(),
                format!("{:.2}%", b * 100.0),
                format!("{:.2}%", a * 100.0),
                format!("{:+.2}pp", (a - b) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Cold vs warm: stack share of total time",
        &["stack", "cold", "warm", "delta"],
        &table,
    );
    ExitCode::SUCCESS
}
