//! Quantifies the paper's **"Meaningful Attestation"** goal (§3.2) by
//! comparing verifier burden under trusted boot (IBM-IMA-style, §2.1)
//! against Flicker's fine-grained attestation.
//!
//! Trusted boot: the verifier receives a quote over the IMA PCR plus the
//! full event log; it must assess *every* entry, and any unrelated
//! software change invalidates its whitelist. Flicker: the verifier checks
//! one PAL measurement, independent of the platform's other software —
//! and leaks nothing about it (the paper's privacy point).

use flicker_bench::{eval_os, print_table};
use flicker_core::{
    expected_pcr17_final, run_session, ExpectedSession, NativePal, PalContext, PalPayload,
    SessionParams, SlbImage, SlbOptions,
};
use flicker_os::ima::{measured_boot, PCR_IMA};
use std::sync::Arc;

struct TinyPal;
impl NativePal for TinyPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> flicker_core::FlickerResult<()> {
        ctx.write_output(b"result")
    }
}

fn main() {
    let mut rows = Vec::new();
    for apps in [25usize, 100, 400] {
        // --- Trusted boot ------------------------------------------------
        let mut os = eval_os(12);
        let log = measured_boot(&mut os, apps, 1);
        let pcr10 = os.machine_mut().tpm_op(|t| t.pcr_read(PCR_IMA)).unwrap();
        assert!(log.matches_quoted(PCR_IMA, &pcr10));
        let log_bytes: usize = log
            .events()
            .iter()
            .map(|e| e.description.len() + 20 + 4)
            .sum();

        // An unrelated app updates; the old whitelist aggregate is dead.
        let mut os2 = eval_os(12);
        let log2 = measured_boot(&mut os2, apps, 2);
        let stable = log2.replay(PCR_IMA) == log.replay(PCR_IMA);

        // --- Flicker ------------------------------------------------------
        let slb = SlbImage::build(
            PalPayload::Native {
                identity: b"the one measured PAL".to_vec(),
                program: Arc::new(TinyPal),
            },
            SlbOptions::default(),
        )
        .unwrap();
        let params = SessionParams::default();
        let rec = run_session(&mut os, &slb, &params).unwrap();
        let expected = expected_pcr17_final(&ExpectedSession {
            slb: &slb,
            slb_base: params.slb_base,
            inputs: &[],
            outputs: &rec.outputs,
            nonce: params.nonce,
            used_hashing_stub: false,
        });
        assert_eq!(rec.pcr17_final, expected);

        rows.push(vec![
            format!("{apps}"),
            format!("{}", log.len()),
            format!("{log_bytes}"),
            if stable { "stable" } else { "broken" }.to_string(),
            "1".to_string(),
            "20".to_string(),
            "stable".to_string(),
        ]);
    }
    print_table(
        "§3.2 'Meaningful Attestation': verifier burden, trusted boot vs Flicker",
        &[
            "apps installed",
            "TB: entries to assess",
            "TB: log bytes",
            "TB: after 1 app update",
            "Flicker: entries",
            "Flicker: bytes",
            "Flicker: after update",
        ],
        &rows,
    );
    println!(
        "\nTrusted boot (§2.1) forces the verifier to judge every binary the \
         platform ever loaded and re-whitelist on every unrelated update, \
         while revealing the host's full software inventory. Flicker's \
         verifier judges exactly one 20-byte PAL measurement (paper §3.2: \
         'instead of trusting Application X running alongside Application Y \
         on top of OS Z'), and the attestation leaks nothing else."
    );
}
