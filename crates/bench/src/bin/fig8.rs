//! Regenerates **Figure 8**: Flicker efficiency vs k-way replication as a
//! function of user latency.
//!
//! The per-session overhead is *measured* (one real session of the BOINC
//! PAL), then the efficiency curve `(L - overhead) / L` is swept over the
//! figure's 1-10 s x-axis and compared with the flat `1/k` replication
//! lines.

use flicker_apps::{flicker_efficiency, replication_efficiency, BoincClient, WorkUnit};
use flicker_bench::{eval_os, print_table};
use std::time::Duration;

fn main() {
    // Measure the real per-session overhead of a continuation session.
    let mut os = eval_os(8);
    let unit = WorkUnit {
        n: 0xFFFF_FFFF_FFFF_FFC5,
        lo: 2,
        hi: u64::MAX,
    };
    let (mut client, _) = BoincClient::start(&mut os, unit).expect("init");
    let report = client
        .run_slice(&mut os, Duration::from_secs(1))
        .expect("slice");
    let overhead = report.overhead;
    println!(
        "Measured per-session Flicker overhead: {:.1} ms (paper: ~912.6 ms \
         = 14.3 SKINIT + 898.3 Unseal)",
        overhead.as_secs_f64() * 1e3
    );

    let mut rows = Vec::new();
    for latency_s in 1..=10u64 {
        let latency = Duration::from_secs(latency_s);
        let f = flicker_efficiency(latency, overhead);
        rows.push(vec![
            format!("{latency_s}"),
            format!("{:.2}", f),
            format!("{:.2}", replication_efficiency(3)),
            format!("{:.2}", replication_efficiency(5)),
            format!("{:.2}", replication_efficiency(7)),
            if f > replication_efficiency(3) {
                "Flicker"
            } else {
                "3-way"
            }
            .to_string(),
        ]);
    }
    print_table(
        "Figure 8: Efficiency vs user latency",
        &[
            "Latency [s]",
            "Flicker",
            "3-way",
            "5-way",
            "7-way",
            "winner",
        ],
        &rows,
    );

    // Locate the crossover with 3-way replication.
    let mut lo = 0.0f64;
    let mut hi = 10.0f64;
    for _ in 0..50 {
        let mid = (lo + hi) / 2.0;
        if flicker_efficiency(Duration::from_secs_f64(mid), overhead) > replication_efficiency(3) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    println!(
        "\nFlicker overtakes 3-way replication at a user latency of {:.2} s \
         (paper: 'a two second user latency allows a more efficient \
         distributed application than replicating to three or more \
         machines').",
        hi
    );
}
