//! Regenerates **Table 2**: `SKINIT` duration vs SLB size, and the §7.2
//! hashing-stub optimisation measurement.

use flicker_bench::{paper, print_table};
use flicker_core::HASHING_STUB_SIZE;
use flicker_machine::{Machine, MachineConfig, Stopwatch};

/// Runs a raw SKINIT with an SLB of exactly `size` bytes and returns the
/// measured virtual duration.
fn measure_skinit(size: usize) -> f64 {
    let mut config = MachineConfig::default();
    config.tpm.key_bits = flicker_bench::EVAL_TPM_KEY_BITS;
    let mut m = Machine::new(config);
    // Quiesce the AP.
    for id in 1..m.cpus().len() {
        m.cpus_mut().deschedule(id).unwrap();
        m.cpus_mut().send_init_ipi(id).unwrap();
    }
    let base = 0x10_0000u64;
    // Header: length = size, entry = 4. The header length field is a u16,
    // so the 64 KB row uses the largest expressible SLB (4 bytes short —
    // a 0.01 ms difference, far below the table's precision).
    let len = size.clamp(8, 0xFFFC) as u16;
    m.memory_mut().write(base, &len.to_le_bytes()).unwrap();
    m.memory_mut().write(base + 2, &4u16.to_le_bytes()).unwrap();
    let sw = Stopwatch::start(&m.clock());
    m.skinit(0, base).unwrap();
    let t = sw.elapsed();
    m.resume_os().unwrap();
    t.as_secs_f64() * 1e3
}

fn main() {
    let mut rows = Vec::new();
    for &(kb, paper_ms) in paper::TABLE2 {
        let model = if kb == 0 {
            // The architectural fixed cost; the paper reports "<1 ms".
            MachineConfig::default().skinit_cost.cost(0).as_secs_f64() * 1e3
        } else {
            measure_skinit(kb * 1024)
        };
        rows.push(vec![
            format!("{kb}"),
            format!("{paper_ms:.1}"),
            format!("{model:.1}"),
        ]);
    }
    print_table(
        "Table 2: SKINIT duration vs SLB size (ms)",
        &["SLB KB", "paper", "repro"],
        &rows,
    );

    // §7.2 optimisation: the 4 736-byte hashing stub.
    let stub = measure_skinit(HASHING_STUB_SIZE);
    let full = measure_skinit(64 * 1024);
    println!(
        "\n§7.2 optimisation: {HASHING_STUB_SIZE}-byte hashing-stub SKINIT = {stub:.1} ms \
         (paper: 14 ms); saving vs 64 KB SLB = {:.0} ms (paper: 164 ms).",
        full - stub
    );
}
