//! The perf-baseline harness: traced end-to-end runs of the paper's §6
//! applications, aggregated into a machine-readable latency baseline.
//!
//! One [`Trace`] is threaded through every platform (machine, TPM, network
//! link), so a single run yields:
//!
//! * **per-phase** latency percentiles over every Flicker session (the six
//!   Figure-2 phase spans `run_session` opens),
//! * **per-TPM-ordinal** command latency percentiles (`tpm.TPM_*`
//!   histograms recorded by the TPM driver),
//! * **per-application** end-to-end iteration latency, and
//! * every counter the tracer collected (retries, DEV ops, zeroized bytes).
//!
//! The report is emitted as `BENCH_perf_baseline.json` with schema
//! [`SCHEMA`]; [`validate`] checks a parsed document against that schema so
//! CI can reject a malformed or under-sampled baseline.

use crate::json::Value;
use crate::{eval_os, faultsweep::APPS, provisioned_eval_os};
use flicker_apps::{
    known_good_hash, Administrator, BoincClient, Csr, FlickerCa, IssuancePolicy, PasswdEntry,
    SshClient, SshServer, WorkUnit,
};
use flicker_core::{
    run_session, FlickerResult, NativePal, PalContext, PalPayload, ReplayProtectedStorage,
    SessionParams, SlbImage, SlbOptions, PHASE_SPAN_NAMES,
};
use flicker_crypto::rng::XorShiftRng;
use flicker_crypto::RsaPrivateKey;
use flicker_os::{NetLink, Os};
use flicker_tpm::SealedBlob;
use flicker_trace::{DurationHistogram, Trace};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Schema identifier stamped into (and required of) every baseline file.
pub const SCHEMA: &str = "flicker-perf-baseline/v1";

/// A full (non-quick) baseline must cover at least this many sessions.
pub const MIN_FULL_SESSIONS: u64 = 200;

/// Sessions one iteration of each application contributes: rootkit 1,
/// ssh 2 (setup + login), distcomp 2 (start + slice), ca 2 (init + sign),
/// storage 3 (init + update + read).
pub const SESSIONS_PER_ITERATION: u64 = 1 + 2 + 2 + 2 + 3;

/// NV index for the baseline's storage workload (distinct from any test's
/// or the fault sweep's).
const BASELINE_NV_INDEX: u32 = 0x0001_5000;

const SSH_PASSWORD: &[u8] = b"baseline-hunter2";

/// How much work to run.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// End-to-end iterations per application.
    pub iterations_per_app: usize,
    /// Marks the emitted report as a quick run (exempt from
    /// [`MIN_FULL_SESSIONS`]).
    pub quick: bool,
}

impl BaselineConfig {
    /// The committed-artifact configuration: 25 iterations × 10 sessions
    /// per iteration = 250 sessions, comfortably over [`MIN_FULL_SESSIONS`].
    pub fn full() -> BaselineConfig {
        BaselineConfig {
            iterations_per_app: 25,
            quick: false,
        }
    }

    /// The CI smoke configuration (~20 sessions).
    pub fn quick() -> BaselineConfig {
        BaselineConfig {
            iterations_per_app: 2,
            quick: true,
        }
    }
}

/// Runs every application workload under one shared trace and returns the
/// aggregated report document.
pub fn run_baseline(cfg: &BaselineConfig) -> Value {
    run_baseline_traced(cfg).0
}

/// Like [`run_baseline`], but also returns the shared [`Trace`] — the
/// flight record the trace tool exports and the invariant auditor replays.
pub fn run_baseline_traced(cfg: &BaselineConfig) -> (Value, Trace) {
    let trace = Trace::new();
    // Raw per-app iteration latencies, kept alongside the trace's
    // log-bucketed histograms: percentiles over a few dozen samples need
    // exact nearest-rank math, not ~6 % bucket midpoints (which collapse
    // p50/p95/p99 into one value for the low-variance apps).
    let mut samples: BTreeMap<&'static str, Vec<Duration>> = BTreeMap::new();
    samples.insert("app.rootkit", run_rootkit(&trace, cfg.iterations_per_app));
    samples.insert("app.ssh", run_ssh(&trace, cfg.iterations_per_app));
    samples.insert("app.distcomp", run_distcomp(&trace, cfg.iterations_per_app));
    samples.insert("app.ca", run_ca(&trace, cfg.iterations_per_app));
    samples.insert("app.storage", run_storage(&trace, cfg.iterations_per_app));
    let doc = report(cfg, &trace, &samples);
    (doc, trace)
}

// ---------------------------------------------------------------------------
// Workloads. Each mirrors the corresponding fault-sweep trial, minus the
// injector: the platform is healthy, so every protocol step must succeed.
// ---------------------------------------------------------------------------

/// Virtual-clock stopwatch around one application iteration. The latency
/// goes into the trace's histogram (for exporters) *and* comes back raw,
/// so the report can compute exact percentiles.
fn timed_iteration(
    trace: &Trace,
    app: &'static str,
    os: &mut Os,
    f: impl FnOnce(&mut Os),
) -> Duration {
    let t0 = os.machine().clock().now();
    f(os);
    let dt = os.machine().clock().now() - t0;
    trace.observe(app, dt);
    dt
}

fn run_rootkit(trace: &Trace, iterations: usize) -> Vec<Duration> {
    let (mut os, cert, ca_public) = provisioned_eval_os(11);
    os.set_tracer(trace.clone());
    let mut link = NetLink::paper_verifier_link(11);
    link.set_tracer(trace.clone());
    link.set_clock(os.clock());
    let known_good = known_good_hash(&os);
    let mut admin = Administrator::new(ca_public, known_good, link);
    let mut samples = Vec::with_capacity(iterations);
    for i in 0..iterations {
        samples.push(timed_iteration(trace, "app.rootkit", &mut os, |os| {
            // Alternate native / verified-bytecode detectors so the
            // baseline also covers PalVM sessions end to end.
            let report = if i.is_multiple_of(2) {
                admin.query(os, &cert)
            } else {
                admin.query_bytecode(os, &cert)
            }
            .unwrap_or_else(|e| {
                let msg = e.to_string();
                assert!(
                    !crate::vm_safety_fault(&msg),
                    "verified session hit a VM safety fault: {msg}"
                );
                panic!("rootkit query failed: {msg}");
            });
            assert!(report.clean, "pristine kernel reported compromised");
        }));
    }
    samples
}

fn run_ssh(trace: &Trace, iterations: usize) -> Vec<Duration> {
    let (mut os, cert, ca_public) = provisioned_eval_os(12);
    os.set_tracer(trace.clone());
    let mut link = NetLink::paper_verifier_link(12);
    link.set_tracer(trace.clone());
    link.set_clock(os.clock());
    let mut client = SshClient::new(ca_public);
    let mut rng = XorShiftRng::new(0xBA5E_55E8);
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        // A fresh server per iteration, as each connection regenerates its
        // session keypair (the Figure-9a workload).
        let mut server = SshServer::new(vec![PasswdEntry::new("alice", SSH_PASSWORD, b"fl1ck3r")]);
        samples.push(timed_iteration(trace, "app.ssh", &mut os, |os| {
            let transcript = server
                .connection_setup(os, &mut link, [0x55; 20])
                .expect("ssh connection setup");
            client.verify_setup(&cert, &transcript).expect("ssh verify");
            let nonce = server.issue_nonce();
            let ciphertext = client
                .encrypt_password(SSH_PASSWORD, &nonce, &mut rng)
                .expect("ssh encrypt");
            let outcome = server
                .login(os, &mut link, "alice", &ciphertext, nonce)
                .expect("ssh login");
            assert!(outcome.accepted, "correct password rejected");
        }));
    }
    samples
}

fn run_distcomp(trace: &Trace, iterations: usize) -> Vec<Duration> {
    let mut os = eval_os(13);
    os.set_tracer(trace.clone());
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        samples.push(timed_iteration(trace, "app.distcomp", &mut os, |os| {
            let unit = WorkUnit {
                n: 91,
                lo: 2,
                hi: 64,
            };
            let (mut client, _) = BoincClient::start(os, unit).expect("boinc start");
            client
                .run_slice(os, Duration::from_millis(50))
                .expect("boinc slice");
        }));
    }
    samples
}

fn run_ca(trace: &Trace, iterations: usize) -> Vec<Duration> {
    let mut os = eval_os(14);
    os.set_tracer(trace.clone());
    let mut rng = XorShiftRng::new(0xBA5E_00CA);
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        samples.push(timed_iteration(trace, "app.ca", &mut os, |os| {
            let policy = IssuancePolicy {
                allowed_suffixes: vec![".corp.example".into()],
                max_certificates: 8,
            };
            let (mut ca, _) = FlickerCa::init(os, policy).expect("ca init");
            let (subject_key, _) = RsaPrivateKey::generate(512, &mut rng);
            let csr = Csr {
                subject: "baseline.corp.example".into(),
                public_key: subject_key.public_key().clone(),
            };
            let report = ca.sign(os, &csr).expect("ca sign");
            report
                .certificate
                .verify(&ca.public_key)
                .expect("issued certificate verifies");
        }));
    }
    samples
}

enum StoreAction {
    Init { data: Vec<u8> },
    Update { data: Vec<u8> },
    Read,
}

struct StoragePal {
    action: StoreAction,
}

impl NativePal for StoragePal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let store = ReplayProtectedStorage::new(BASELINE_NV_INDEX);
        match &self.action {
            StoreAction::Init { data } => {
                store.setup(ctx, &[0u8; 20])?;
                let blob = store.seal(ctx, data)?;
                ctx.write_output(blob.as_bytes())
            }
            StoreAction::Update { data } => {
                let old = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let _ = store.unseal(ctx, &old)?;
                let blob = store.seal(ctx, data)?;
                ctx.write_output(blob.as_bytes())
            }
            StoreAction::Read => {
                let blob = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let data = store.unseal(ctx, &blob)?;
                ctx.write_output(&data)
            }
        }
    }
}

fn storage_session(os: &mut Os, action: StoreAction, inputs: Vec<u8>) -> Vec<u8> {
    let slb = SlbImage::build(
        PalPayload::Native {
            identity: b"baseline-storage-pal".to_vec(),
            program: Arc::new(StoragePal { action }),
        },
        SlbOptions::default(),
    )
    .expect("storage slb builds");
    let rec =
        run_session(os, &slb, &SessionParams::with_inputs(inputs)).expect("storage session runs");
    rec.pal_result.clone().expect("storage pal succeeds");
    rec.outputs
}

fn run_storage(trace: &Trace, iterations: usize) -> Vec<Duration> {
    let mut os = eval_os(15);
    os.set_tracer(trace.clone());
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        samples.push(timed_iteration(trace, "app.storage", &mut os, |os| {
            let blob1 = storage_session(
                os,
                StoreAction::Init {
                    data: b"state-v1".to_vec(),
                },
                Vec::new(),
            );
            let blob2 = storage_session(
                os,
                StoreAction::Update {
                    data: b"state-v2".to_vec(),
                },
                blob1,
            );
            let out = storage_session(os, StoreAction::Read, blob2);
            assert_eq!(out, b"state-v2", "storage read-back");
        }));
    }
    samples
}

// ---------------------------------------------------------------------------
// Aggregation and schema.
// ---------------------------------------------------------------------------

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn hist_value(h: &DurationHistogram) -> Value {
    let (p50, p95, p99) = h.percentiles();
    Value::Object(BTreeMap::from([
        ("count".into(), Value::Number(h.count() as f64)),
        ("p50_ms".into(), Value::Number(ms(p50))),
        ("p95_ms".into(), Value::Number(ms(p95))),
        ("p99_ms".into(), Value::Number(ms(p99))),
        ("mean_ms".into(), Value::Number(ms(h.mean()))),
        ("min_ms".into(), Value::Number(ms(h.min()))),
        ("max_ms".into(), Value::Number(ms(h.max()))),
    ]))
}

/// Exact stats over raw samples — same keys as [`hist_value`], but with
/// nearest-rank percentiles instead of log-bucket midpoints (which made
/// p50 == p95 == p99 for every low-variance app).
fn sample_value(samples: &[Duration]) -> Value {
    let (p50, p95, p99) = crate::percentiles(samples);
    let n = samples.len().max(1) as u32;
    let mean = samples.iter().sum::<Duration>() / n;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    Value::Object(BTreeMap::from([
        ("count".into(), Value::Number(samples.len() as f64)),
        ("p50_ms".into(), Value::Number(ms(p50))),
        ("p95_ms".into(), Value::Number(ms(p95))),
        ("p99_ms".into(), Value::Number(ms(p99))),
        ("mean_ms".into(), Value::Number(ms(mean))),
        ("min_ms".into(), Value::Number(ms(min))),
        ("max_ms".into(), Value::Number(ms(max))),
    ]))
}

/// Folds the aggregated trace into the report document.
fn report(
    cfg: &BaselineConfig,
    trace: &Trace,
    samples: &BTreeMap<&'static str, Vec<Duration>>,
) -> Value {
    let sessions = trace.spans_named("phase.suspend").len() as u64;

    let mut phases = BTreeMap::new();
    for name in PHASE_SPAN_NAMES {
        let mut h = DurationHistogram::default();
        for span in trace.spans_named(name) {
            h.observe(span.duration.unwrap_or(Duration::ZERO));
        }
        phases.insert(name.to_string(), hist_value(&h));
    }

    let mut apps = BTreeMap::new();
    for (name, s) in samples {
        let app = name.strip_prefix("app.").unwrap_or(name);
        apps.insert(app.to_string(), sample_value(s));
    }
    let mut tpm = BTreeMap::new();
    let mut ops = BTreeMap::new();
    for (name, h) in trace.histograms() {
        if name.starts_with("app.") {
            // Covered exactly by the raw samples above.
        } else if name.starts_with("tpm.TPM_") {
            tpm.insert(name.to_string(), hist_value(&h));
        } else {
            ops.insert(name.to_string(), hist_value(&h));
        }
    }

    let counters: BTreeMap<String, Value> = trace
        .counters()
        .into_iter()
        .map(|(k, v)| (k.to_string(), Value::Number(v as f64)))
        .collect();

    Value::Object(BTreeMap::from([
        ("schema".into(), Value::String(SCHEMA.into())),
        ("quick".into(), Value::Bool(cfg.quick)),
        (
            "iterations_per_app".into(),
            Value::Number(cfg.iterations_per_app as f64),
        ),
        ("sessions".into(), Value::Number(sessions as f64)),
        ("apps".into(), Value::Object(apps)),
        ("phases".into(), Value::Object(phases)),
        ("tpm".into(), Value::Object(tpm)),
        ("ops".into(), Value::Object(ops)),
        ("counters".into(), Value::Object(counters)),
    ]))
}

fn check_stats(doc: &Value, section: &str, key: &str) -> Result<u64, String> {
    let entry = doc
        .get(section)
        .and_then(|s| s.get(key))
        .ok_or_else(|| format!("{section}.{key} missing"))?;
    let count = entry
        .get("count")
        .and_then(Value::as_number)
        .ok_or_else(|| format!("{section}.{key}.count missing"))?;
    if count < 1.0 {
        return Err(format!("{section}.{key} has no samples"));
    }
    let mut last = 0.0f64;
    for stat in ["p50_ms", "p95_ms", "p99_ms"] {
        let v = entry
            .get(stat)
            .and_then(Value::as_number)
            .ok_or_else(|| format!("{section}.{key}.{stat} missing"))?;
        if !v.is_finite() || v < last {
            return Err(format!("{section}.{key}.{stat} = {v} not monotone"));
        }
        last = v;
    }
    Ok(count as u64)
}

/// Validates a parsed baseline document against [`SCHEMA`]. Returns the
/// session count on success.
pub fn validate(doc: &Value) -> Result<u64, String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("schema field missing")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let quick = doc
        .get("quick")
        .and_then(Value::as_bool)
        .ok_or("quick field missing")?;
    let sessions = doc
        .get("sessions")
        .and_then(Value::as_number)
        .ok_or("sessions field missing")? as u64;
    if !quick && sessions < MIN_FULL_SESSIONS {
        return Err(format!(
            "full baseline covers only {sessions} sessions (need {MIN_FULL_SESSIONS})"
        ));
    }
    for app in APPS {
        check_stats(doc, "apps", app)?;
    }
    for phase in PHASE_SPAN_NAMES {
        let count = check_stats(doc, "phases", phase)?;
        if count != sessions {
            return Err(format!(
                "phases.{phase} has {count} samples for {sessions} sessions"
            ));
        }
    }
    let tpm = doc
        .get("tpm")
        .and_then(Value::as_object)
        .ok_or("tpm section missing")?;
    if tpm.is_empty() {
        return Err("tpm section has no ordinals".into());
    }
    let ordinals: Vec<String> = tpm.keys().cloned().collect();
    for ordinal in &ordinals {
        if !ordinal.starts_with("tpm.TPM_") {
            return Err(format!("tpm section key {ordinal:?} is not an ordinal"));
        }
        check_stats(doc, "tpm", ordinal)?;
    }
    doc.get("counters")
        .and_then(Value::as_object)
        .ok_or("counters section missing")?;
    Ok(sessions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn quick_baseline_is_schema_valid_and_round_trips() {
        let cfg = BaselineConfig::quick();
        let doc = run_baseline(&cfg);
        let sessions = validate(&doc).expect("quick baseline validates");
        assert_eq!(
            sessions,
            cfg.iterations_per_app as u64 * SESSIONS_PER_ITERATION
        );

        // The emitted text parses back to the same document and still
        // validates — what `perf_baseline --check` relies on.
        let back = json::parse(&doc.to_pretty()).expect("emitted JSON parses");
        assert_eq!(back, doc);
        validate(&back).expect("round-tripped baseline validates");

        // The paper's dominant cost must be visible: a quote-bearing
        // ordinal with ~900 ms latency.
        let quote = doc
            .get("tpm")
            .and_then(|t| t.get("tpm.TPM_Quote"))
            .expect("quote ordinal present");
        let p50 = quote.get("p50_ms").and_then(Value::as_number).unwrap();
        assert!(p50 > 500.0, "TPM_Quote p50 {p50} ms implausibly fast");
    }

    #[test]
    fn validate_rejects_corruptions() {
        let cfg = BaselineConfig::quick();
        let doc = run_baseline(&cfg);

        let corrupt = |f: &dyn Fn(&mut BTreeMap<String, Value>)| {
            let Value::Object(mut map) = doc.clone() else {
                unreachable!()
            };
            f(&mut map);
            Value::Object(map)
        };

        // Wrong schema string.
        let bad = corrupt(&|m| {
            m.insert("schema".into(), Value::String("nope/v0".into()));
        });
        assert!(validate(&bad).is_err());

        // A full run with too few sessions.
        let bad = corrupt(&|m| {
            m.insert("quick".into(), Value::Bool(false));
        });
        assert!(validate(&bad).unwrap_err().contains("200"));

        // A missing application.
        let bad = corrupt(&|m| {
            let Some(Value::Object(apps)) = m.get_mut("apps") else {
                unreachable!()
            };
            apps.remove("ssh");
        });
        assert!(validate(&bad).unwrap_err().contains("apps.ssh"));

        // Phase sample count disagreeing with the session count.
        let bad = corrupt(&|m| {
            m.insert("sessions".into(), Value::Number(9999.0));
        });
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn quick_baseline_trace_exports_and_audits_clean() {
        use flicker_trace::{audit, export, DROPPED_EVENTS_COUNTER};

        let cfg = BaselineConfig::quick();
        let (doc, trace) = run_baseline_traced(&cfg);
        validate(&doc).expect("traced quick baseline validates");

        // Chrome trace_event export of the full five-app run is schema-
        // checked: a JSON object with displayTimeUnit and non-empty
        // traceEvents, each a complete ("X") or instant ("i") event
        // carrying a name and timestamp.
        let chrome = json::parse(&export::chrome_trace_json(&trace))
            .expect("chrome trace export is valid JSON");
        assert_eq!(
            chrome.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
        let trace_events = chrome
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!trace_events.is_empty());
        for te in trace_events {
            let ph = te.get("ph").and_then(Value::as_str).expect("ph field");
            assert!(ph == "X" || ph == "i", "unexpected phase type {ph:?}");
            assert!(te.get("name").and_then(Value::as_str).is_some());
            assert!(te.get("ts").and_then(Value::as_number).is_some());
        }

        // The JSONL dump round-trips losslessly.
        let events = export::parse_events_jsonl(&export::events_jsonl(&trace))
            .expect("jsonl export parses back");
        assert_eq!(events.len(), trace.event_count());

        // The acceptance bar: every application's normal sessions replay
        // through the auditor with zero invariant violations, and the
        // quick run fits the ring buffer (nothing dropped).
        assert_eq!(audit::audit_events(&events), vec![]);
        assert_eq!(trace.counter(DROPPED_EVENTS_COUNTER), 0);
    }
}
