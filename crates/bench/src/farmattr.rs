//! Farm attribution glue: flight-record persistence, the farm's SLO
//! policy, summary rendering, the `farm_attr` trajectory extension, and
//! the CI gates over attribution quality.
//!
//! The farm layer produces the raw streams (one coordinator trace on wall
//! time, one trace per shard on its own virtual clock); the attribution
//! math lives in [`flicker_trace::attribution`]. This module owns
//! everything harness-shaped around it:
//!
//! * **Flight directories** ([`FarmFlight`]): a farm run serialized as
//!   `coordinator.jsonl`, one `machine-N.jsonl` per shard, a
//!   `requests.jsonl` with per-request outcomes, and a `meta.json`
//!   envelope — enough to re-run attribution offline
//!   (`flicker_trace_tool attribute --from DIR`) without re-driving the
//!   farm.
//! * **SLO policy** ([`default_slo_policy`]): per-workload latency
//!   budgets calibrated against the seeded fault sweep (each budget sits
//!   above the workload's observed faulted tail), with an error budget
//!   sized for the sweep's expected failure mix.
//! * **Gates** ([`gate`]): attribution must cover ≥ 99% of every
//!   request's wall time, per-request attempt walls must sum exactly to
//!   the farm's recorded latency (so the attribution and the latency
//!   percentiles describe the same quantity), streams must be complete
//!   (ring-buffer truncation fails the run), and the SLO report must hold.

use crate::json::Value;
use crate::print_table;
use flicker_farm::FarmReport;
use flicker_trace::attribution::{
    self, categories, FarmAttribution, RequestMeta, ShardStream, SloPolicy, SloReport,
};
use flicker_trace::{export, Event};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

/// Schema tag for a flight directory's `meta.json`.
pub const FLIGHT_SCHEMA: &str = "flicker-farm-flight/v1";

/// Attribution must account for at least this fraction of every request's
/// end-to-end wall time (the issue's acceptance bound).
pub const MIN_COVERAGE: f64 = 0.99;

/// One farm run's complete flight record, decoupled from live traces so
/// it can round-trip through a flight directory.
#[derive(Debug, Clone, Default)]
pub struct FarmFlight {
    /// Coordinator events (wall-clock stamps, farm actions + anchors).
    pub coordinator: Vec<Event>,
    /// Per-shard event streams (virtual-clock stamps).
    pub shards: Vec<ShardStream>,
    /// Request → workload metadata.
    pub meta: Vec<RequestMeta>,
    /// Per-request recorded outcome: (terminal action, latency, attempts).
    pub outcomes: BTreeMap<u64, (String, Duration, u32)>,
    /// Ring-buffer evictions summed across all traces. Nonzero means the
    /// streams are incomplete and every verdict over them is inconclusive.
    pub dropped_events: u64,
}

impl FarmFlight {
    /// Captures a completed farm run.
    pub fn from_report(report: &FarmReport) -> FarmFlight {
        let dropped_events = report.coordinator.dropped_events()
            + report
                .shards
                .iter()
                .map(|s| s.trace.dropped_events())
                .sum::<u64>();
        FarmFlight {
            coordinator: report.coordinator.events(),
            shards: report.shard_streams(),
            meta: report.request_meta(),
            outcomes: report
                .outcomes
                .iter()
                .map(|o| {
                    (
                        o.id,
                        (o.terminal.action().to_string(), o.latency, o.attempts),
                    )
                })
                .collect(),
            dropped_events,
        }
    }

    /// Runs attribution over the captured streams.
    pub fn attribution(&self) -> FarmAttribution {
        attribution::attribute(&self.coordinator, &self.shards)
    }

    /// Request ids that ran (reached a non-shed terminal).
    fn ran(&self) -> impl Iterator<Item = (&u64, &(String, Duration, u32))> {
        self.outcomes.iter().filter(|(_, (t, _, _))| t != "shed")
    }

    /// Serializes the flight into `dir` (created if missing).
    pub fn write(&self, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let write = |name: &str, text: String| -> Result<(), String> {
            std::fs::write(dir.join(name), text)
                .map_err(|e| format!("writing {}: {e}", dir.join(name).display()))
        };
        write("coordinator.jsonl", events_to_jsonl(&self.coordinator))?;
        for s in &self.shards {
            write(
                &format!("machine-{}.jsonl", s.machine),
                events_to_jsonl(&s.events),
            )?;
        }
        let mut requests = String::new();
        for m in &self.meta {
            let (terminal, latency, attempts) = self
                .outcomes
                .get(&m.request)
                .cloned()
                .unwrap_or_else(|| ("unknown".into(), Duration::ZERO, 0));
            let line = Value::Object(BTreeMap::from([
                ("id".into(), Value::Number(m.request as f64)),
                ("app".into(), Value::String(m.workload.clone())),
                ("terminal".into(), Value::String(terminal)),
                (
                    "latency_ns".into(),
                    Value::Number(latency.as_nanos() as f64),
                ),
                ("attempts".into(), Value::Number(attempts as f64)),
            ]));
            requests.push_str(&line.to_compact());
            requests.push('\n');
        }
        write("requests.jsonl", requests)?;
        let meta = Value::Object(BTreeMap::from([
            ("schema".into(), Value::String(FLIGHT_SCHEMA.into())),
            ("machines".into(), Value::Number(self.shards.len() as f64)),
            (
                "dropped_events".into(),
                Value::Number(self.dropped_events as f64),
            ),
        ]));
        write("meta.json", meta.to_pretty())
    }

    /// Reads a flight directory written by [`FarmFlight::write`].
    pub fn read(dir: &Path) -> Result<FarmFlight, String> {
        let read = |name: &str| -> Result<String, String> {
            std::fs::read_to_string(dir.join(name))
                .map_err(|e| format!("reading {}: {e}", dir.join(name).display()))
        };
        let meta_doc = crate::json::parse(&read("meta.json")?)?;
        if meta_doc.get("schema").and_then(Value::as_str) != Some(FLIGHT_SCHEMA) {
            return Err(format!("{}: unknown flight schema", dir.display()));
        }
        let machines = meta_doc
            .get("machines")
            .and_then(Value::as_number)
            .ok_or("meta.json: machines missing")? as u64;
        let dropped_events = meta_doc
            .get("dropped_events")
            .and_then(Value::as_number)
            .unwrap_or(0.0) as u64;
        let coordinator = export::parse_events_jsonl(&read("coordinator.jsonl")?)?;
        let mut shards = Vec::new();
        for machine in 0..machines {
            let name = format!("machine-{machine}.jsonl");
            shards.push(ShardStream {
                machine,
                events: export::parse_events_jsonl(&read(&name)?)
                    .map_err(|e| format!("{name}: {e}"))?,
            });
        }
        let mut meta = Vec::new();
        let mut outcomes = BTreeMap::new();
        for (lineno, line) in read("requests.jsonl")?.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v =
                crate::json::parse(line).map_err(|e| format!("requests.jsonl:{lineno}: {e}"))?;
            let field = |k: &str| {
                v.get(k)
                    .and_then(Value::as_number)
                    .ok_or(format!("requests.jsonl:{lineno}: {k} missing"))
            };
            let id = field("id")? as u64;
            meta.push(RequestMeta {
                request: id,
                workload: v
                    .get("app")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            });
            outcomes.insert(
                id,
                (
                    v.get("terminal")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    Duration::from_nanos(field("latency_ns")? as u64),
                    field("attempts")? as u32,
                ),
            );
        }
        Ok(FarmFlight {
            coordinator,
            shards,
            meta,
            outcomes,
            dropped_events,
        })
    }

    /// Dumps the flight records of deviating requests (one
    /// `outlier-<id>.jsonl` per request, carrying every event — on any
    /// shard — stamped with that request's trace id, plus its coordinator
    /// lifecycle events).
    pub fn dump_outliers(&self, dir: &Path, outliers: &[u64]) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        for &id in outliers {
            let mut events: Vec<&Event> = self
                .coordinator
                .iter()
                .filter(|e| match &e.kind {
                    flicker_trace::EventKind::Farm { request, .. } => *request == id,
                    _ => false,
                })
                .collect();
            for s in &self.shards {
                events.extend(
                    s.events
                        .iter()
                        .filter(|e| e.ctx.is_some_and(|c| c.request == id)),
                );
            }
            let text: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
            let path = dir.join(format!("outlier-{id}.jsonl"));
            std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        Ok(())
    }
}

fn events_to_jsonl(events: &[Event]) -> String {
    events.iter().map(|e| e.to_jsonl() + "\n").collect()
}

/// The farm's SLO policy, calibrated against the seeded fault sweep on
/// the default (Broadcom-profile) farm: each per-workload budget sits
/// roughly 2× above the workload's observed faulted p95 (retries and
/// backoff included), so a healthy farm passes with headroom and a
/// latency regression of that order trips the gate. The error budget
/// absorbs the sweep's expected hard-failure mix (schedules whose fault
/// plans are unrecoverable by design); the outlier factor flags requests
/// whose wall time blows past their workload's typical cost.
pub fn default_slo_policy() -> SloPolicy {
    let s = Duration::from_secs;
    SloPolicy {
        budgets: BTreeMap::from([
            ("rootkit".into(), s(8)),
            ("ssh".into(), s(12)),
            ("distcomp".into(), s(8)),
            ("ca".into(), s(8)),
            ("storage".into(), s(16)),
        ]),
        default_budget: s(16),
        error_budget: 0.25,
        outlier_factor: 8.0,
    }
}

/// Runs the attribution + SLO pipeline over a flight.
pub fn evaluate(flight: &FarmFlight, policy: &SloPolicy) -> (FarmAttribution, SloReport) {
    let attr = flight.attribution();
    let slo = attribution::evaluate_slo(policy, &attr, &flight.meta);
    (attr, slo)
}

/// The attribution-quality gates (issue acceptance criteria). Returns
/// every failure, so a broken run reports all of them at once.
pub fn gate(flight: &FarmFlight, attr: &FarmAttribution, slo: &SloReport) -> Vec<String> {
    let mut failures = Vec::new();
    if flight.dropped_events > 0 {
        failures.push(format!(
            "truncated streams: {} event(s) dropped — attribution and audit \
             over an incomplete flight are inconclusive",
            flight.dropped_events
        ));
    }
    for r in &attr.requests {
        if r.coverage() < MIN_COVERAGE {
            failures.push(format!(
                "request {}: only {:.4} of wall time attributed \
                 ({:?} unattributed)",
                r.request,
                r.coverage(),
                r.unattributed()
            ));
        }
    }
    for (id, (terminal, latency, _)) in flight.ran() {
        match attr.request(*id) {
            None => failures.push(format!("request {id} ({terminal}) has no attribution")),
            Some(r) if r.active() != *latency => failures.push(format!(
                "request {id}: attempt walls sum to {:?} but the farm \
                 recorded {latency:?}",
                r.active()
            )),
            Some(_) => {}
        }
    }
    for w in &slo.workloads {
        if !w.ok() {
            failures.push(format!(
                "SLO breach: {} burned {:.2}× its error budget \
                 ({}/{} requests over {:?})",
                w.workload, w.burn, w.breaches, w.requests, w.budget
            ));
        }
    }
    failures
}

/// Prints the attribution summary tables.
pub fn print_summary(attr: &FarmAttribution, slo: &SloReport) {
    let totals = attr.category_totals();
    let grand: Duration = totals.values().copied().sum();
    let mut rows: Vec<(String, Duration)> = totals.into_iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, total)| {
            let share = if grand.is_zero() {
                0.0
            } else {
                total.as_secs_f64() / grand.as_secs_f64() * 100.0
            };
            vec![
                name.clone(),
                format!("{:.1}", total.as_secs_f64() * 1e3),
                format!("{share:.1}%"),
            ]
        })
        .collect();
    print_table(
        "Latency attribution (virtual ms across all requests)",
        &["category", "total_ms", "share"],
        &rows,
    );

    let warm = attr.warm_saved_totals();
    if !warm.is_empty() {
        let rows: Vec<Vec<String>> = warm
            .iter()
            .map(|(kind, d)| vec![kind.clone(), format!("{:.1}", d.as_secs_f64() * 1e3)])
            .collect();
        print_table(
            "Warm-path savings (avoided work, not wall time)",
            &["kind", "saved_ms"],
            &rows,
        );
    }

    let rows: Vec<Vec<String>> = slo
        .workloads
        .iter()
        .map(|w| {
            vec![
                w.workload.clone(),
                w.requests.to_string(),
                format!("{:.0}", w.budget.as_secs_f64() * 1e3),
                w.breaches.to_string(),
                format!("{:.1}", w.worst.as_secs_f64() * 1e3),
                format!("{:.2}", w.burn),
                if w.ok() { "ok" } else { "BREACH" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "SLO verdicts (per workload)",
        &[
            "workload",
            "requests",
            "budget_ms",
            "breaches",
            "worst_ms",
            "burn",
            "verdict",
        ],
        &rows,
    );
    println!(
        "\nattribution coverage: min {:.4} over {} requests \
         ({:.1} ms unattributed farm-wide)",
        attr.min_coverage(),
        attr.requests.len(),
        attr.unattributed().as_secs_f64() * 1e3
    );
    if !slo.outliers.is_empty() {
        println!("latency outliers: {:?}", slo.outliers);
    }
}

/// The `farm_attr` trajectory extension: category shares, coverage, and
/// per-workload SLO burn, flat enough for the dashboard's numeric-leaf
/// flattener.
pub fn farm_attr_value(attr: &FarmAttribution, slo: &SloReport) -> Value {
    let num = Value::Number;
    let mut cats = BTreeMap::new();
    for (name, total) in attr.category_totals() {
        cats.insert(format!("{name}_ms"), num(total.as_secs_f64() * 1e3));
    }
    for (kind, total) in attr.warm_saved_totals() {
        cats.insert(
            format!("warm_saved_{kind}_ms"),
            num(total.as_secs_f64() * 1e3),
        );
    }
    let mut workloads = BTreeMap::new();
    for w in &slo.workloads {
        workloads.insert(
            w.workload.clone(),
            Value::Object(BTreeMap::from([
                ("breaches".into(), num(w.breaches as f64)),
                ("burn".into(), num(w.burn)),
                ("worst_ms".into(), num(w.worst.as_secs_f64() * 1e3)),
            ])),
        );
    }
    Value::Object(BTreeMap::from([
        ("categories".into(), Value::Object(cats)),
        ("min_coverage".into(), num(attr.min_coverage())),
        (
            "unattributed_ms".into(),
            num(attr.unattributed().as_secs_f64() * 1e3),
        ),
        ("outliers".into(), num(slo.outliers.len() as f64)),
        ("slo_ok".into(), Value::Bool(slo.ok())),
        ("workloads".into(), Value::Object(workloads)),
    ]))
}

/// Renders the farm-wide merged timeline (coordinator + anchored shard
/// streams) as readable text, one event per line.
pub fn render_timeline(flight: &FarmFlight, limit: usize) -> String {
    let merged = attribution::merge_timeline(&flight.coordinator, &flight.shards);
    let mut out = String::new();
    let total = merged.len();
    for t in merged.into_iter().take(limit) {
        let machine = if t.machine == attribution::COORDINATOR {
            "coord".to_string()
        } else {
            format!("m{}", t.machine)
        };
        let ctx = match t.event.ctx {
            Some(c) => format!(" req={} attempt={}", c.request, c.attempt),
            None => String::new(),
        };
        let kind = match &t.event.kind {
            flicker_trace::EventKind::Farm {
                action, request, ..
            } if *request != u64::MAX => format!("farm:{action} req={request}"),
            flicker_trace::EventKind::Farm { action, .. } => format!("farm:{action}"),
            other => other.name().to_string(),
        };
        out.push_str(&format!(
            "{:>12.3}ms {:>6} {kind}{ctx}\n",
            t.global.as_secs_f64() * 1e3,
            machine,
        ));
    }
    if total > limit {
        out.push_str(&format!("... {} more events\n", total - limit));
    }
    out
}

/// Names every category the substrate can charge — exported so the docs
/// and the dashboard agree on the taxonomy.
pub fn category_names() -> Vec<&'static str> {
    let mut names = vec![categories::QUEUE_WAIT];
    names.extend(categories::ON_SHARD);
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use flicker_farm::{Farm, FarmConfig, RequestSpec};

    fn small_run() -> FarmReport {
        let mut config = FarmConfig::fast_for_tests(2);
        config.queue_bound = 16;
        let farm = Farm::start(config);
        for seed in 0..6 {
            farm.submit(RequestSpec::seeded(seed));
        }
        farm.shutdown()
    }

    #[test]
    fn flight_round_trips_through_a_directory() {
        let report = small_run();
        let flight = FarmFlight::from_report(&report);
        let dir = std::env::temp_dir().join(format!("farm-flight-{}", std::process::id()));
        flight.write(&dir).expect("write flight");
        let back = FarmFlight::read(&dir).expect("read flight");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back.coordinator.len(), flight.coordinator.len());
        assert_eq!(back.shards.len(), flight.shards.len());
        assert_eq!(back.outcomes, flight.outcomes);
        assert_eq!(back.dropped_events, 0);
        // Attribution over the round-tripped streams is identical.
        let a = flight.attribution();
        let b = back.attribution();
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.request, y.request);
            assert_eq!(x.active(), y.active());
            assert_eq!(x.attributed(), y.attributed());
        }
    }

    #[test]
    fn gates_pass_on_a_clean_run_and_fail_on_truncation() {
        let report = small_run();
        let mut flight = FarmFlight::from_report(&report);
        let (attr, slo) = evaluate(&flight, &default_slo_policy());
        let failures = gate(&flight, &attr, &slo);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(attr.min_coverage() >= MIN_COVERAGE);

        // A truncated stream must fail the gate even though the surviving
        // events still attribute cleanly.
        flight.dropped_events = 7;
        let failures = gate(&flight, &attr, &slo);
        assert!(
            failures.iter().any(|f| f.contains("truncated")),
            "{failures:?}"
        );
    }
}
