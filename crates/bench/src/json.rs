//! Minimal JSON value, emitter, and parser for the perf-baseline artifact.
//!
//! The evaluation harness is dependency-free by policy (see ROADMAP.md), so
//! the `BENCH_perf_baseline.json` schema is handled by this small hand-
//! rolled module instead of serde: objects are ordered maps (deterministic
//! output for diffable baselines), numbers are `f64`, and the parser is a
//! straightforward recursive descent over the subset JSON itself defines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-emitted JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numbers are f64 here).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serializes on a single line with no insignificant whitespace
    /// (JSONL-friendly).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes with 2-space indentation and `\n` line ends.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) if items.is_empty() => out.push_str("[]"),
            Value::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) if map.is_empty() => out.push_str("{}"),
            Value::Object(map) => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the artifact subset: no surrogate-pair escapes).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("bad object at {other:?}, offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("bad array at {other:?}, offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // passed through unchanged).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty remainder")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shape() {
        let mut apps = BTreeMap::new();
        apps.insert(
            "rootkit".into(),
            Value::Object(BTreeMap::from([
                ("count".into(), Value::Number(25.0)),
                ("p50_ms".into(), Value::Number(1022.75)),
            ])),
        );
        let doc = Value::Object(BTreeMap::from([
            (
                "schema".into(),
                Value::String("flicker-perf-baseline/v1".into()),
            ),
            ("quick".into(), Value::Bool(false)),
            ("apps".into(), Value::Object(apps)),
            (
                "list".into(),
                Value::Array(vec![Value::Number(1.0), Value::Null]),
            ),
        ]));
        let text = doc.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("schema").and_then(Value::as_str),
            Some("flicker-perf-baseline/v1")
        );
        assert_eq!(
            back.get("apps")
                .and_then(|a| a.get("rootkit"))
                .and_then(|r| r.get("p50_ms"))
                .and_then(Value::as_number),
            Some(1022.75)
        );
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v = parse(" { \"a\\n\\\"b\" : [ true , false , null , -1.5e2 ] } ").unwrap();
        let arr = v.get("a\n\"b").unwrap();
        assert_eq!(
            arr,
            &Value::Array(vec![
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
                Value::Number(-150.0),
            ])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn compact_form_is_one_line_and_round_trips() {
        let doc = Value::Object(BTreeMap::from([
            ("a b".into(), Value::String("with space".into())),
            (
                "list".into(),
                Value::Array(vec![Value::Number(1.0), Value::Null, Value::Bool(true)]),
            ),
        ]));
        let text = doc.to_compact();
        assert!(!text.contains('\n'));
        assert_eq!(text, r#"{"a b":"with space","list":[1,null,true]}"#);
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_emit_without_fraction() {
        let mut s = String::new();
        write_number(&mut s, 250.0);
        assert_eq!(s, "250");
        let mut s = String::new();
        write_number(&mut s, 0.5);
        assert_eq!(s, "0.5");
    }
}
