//! The profile baseline: machine-readable cost-attribution report over a
//! traced §6 application run, with schema validation and drift gates.
//!
//! Where `BENCH_perf_baseline.json` answers "how long did it take",
//! `BENCH_profile_baseline.json` answers "where did the time go": the
//! merged profile tree's heaviest stacks, and — per expensive TPM
//! ordinal — how much of the charged virtual time the crypto cost model
//! attributes to named primitives (modmul, SHA compression, AES blocks).
//!
//! Two CI gates live here:
//!
//! * **Attribution**: every ordinal in
//!   `flicker_tpm::costmodel::GATED_ORDINALS` must attribute at least
//!   [`MIN_ATTRIBUTED_FRACTION`] of its charged time to primitives.
//! * **Reconciliation**: the folded stacks' total weight must match the
//!   profile's inclusive total within [`MAX_RECONCILIATION_ERROR`]
//!   (child-exceeds-parent clamping is the only loss channel, so a
//!   violation means the trace's nesting model is broken).
//!
//! [`compare`] adds the regression gate: a fresh run's stack *shares*
//! (self-weight over total — scale-free, so a quick run compares against
//! the committed full baseline) must stay within [`MAX_SHARE_DRIFT`] of
//! the baseline's, and no load-bearing stack may vanish.

use crate::json::Value;
use flicker_trace::profile::{build, Profile};
use flicker_trace::{EventKind, Trace};
use std::collections::BTreeMap;

/// Schema identifier stamped into (and required of) every profile
/// baseline file.
pub const SCHEMA: &str = "flicker-profile-baseline/v1";

/// Minimum fraction of a gated ordinal's charged time the cost model must
/// attribute to named primitives.
pub const MIN_ATTRIBUTED_FRACTION: f64 = 0.90;

/// Maximum tolerated folded-weight reconciliation loss.
pub const MAX_RECONCILIATION_ERROR: f64 = 0.01;

/// Maximum tolerated absolute drift in any load-bearing stack's share of
/// total time, fresh run vs committed baseline.
pub const MAX_SHARE_DRIFT: f64 = 0.05;

/// A stack is load-bearing (compared across runs) when its share of total
/// time is at least this much in the baseline.
pub const SHARE_FLOOR: f64 = 0.01;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Builds the profile-baseline document for a traced run.
pub fn report(quick: bool, trace: &Trace) -> Value {
    let profile = build(trace);
    let total_ns: u64 = profile.roots.values().map(|r| r.total_ns).sum();

    // Measured per-ordinal attribution: charged time from TpmCommand
    // events, attributed time from the CryptoCost decomposition the TPM
    // pends alongside them.
    let mut charged: BTreeMap<String, u64> = BTreeMap::new();
    let mut attributed: BTreeMap<String, u64> = BTreeMap::new();
    for e in trace.events() {
        match &e.kind {
            EventKind::TpmCommand {
                ordinal, dur_ns, ..
            } => *charged.entry(ordinal.clone()).or_insert(0) += dur_ns,
            EventKind::CryptoCost {
                ordinal, dur_ns, ..
            } => *attributed.entry(ordinal.clone()).or_insert(0) += dur_ns,
            _ => {}
        }
    }
    let mut attribution = BTreeMap::new();
    for (ordinal, &c) in &charged {
        let a = attributed.get(ordinal).copied().unwrap_or(0);
        let fraction = if c == 0 { 0.0 } else { a as f64 / c as f64 };
        attribution.insert(
            ordinal.clone(),
            Value::Object(BTreeMap::from([
                ("charged_ms".into(), Value::Number(ms(c))),
                ("attributed_ms".into(), Value::Number(ms(a))),
                ("fraction".into(), Value::Number(fraction)),
            ])),
        );
    }

    let mut stacks = BTreeMap::new();
    for (path, w) in profile.folded_weights() {
        let share = if total_ns == 0 {
            0.0
        } else {
            w as f64 / total_ns as f64
        };
        stacks.insert(
            path,
            Value::Object(BTreeMap::from([
                ("self_ms".into(), Value::Number(ms(w))),
                ("share".into(), Value::Number(share)),
            ])),
        );
    }

    Value::Object(BTreeMap::from([
        ("schema".into(), Value::String(SCHEMA.into())),
        ("quick".into(), Value::Bool(quick)),
        ("total_ms".into(), Value::Number(ms(total_ns))),
        (
            "session_total_ms".into(),
            Value::Number(profile.session_total().as_secs_f64() * 1e3),
        ),
        (
            "reconciliation_error".into(),
            Value::Number(profile.reconciliation_error()),
        ),
        ("attribution".into(), Value::Object(attribution)),
        ("stacks".into(), Value::Object(stacks)),
    ]))
}

fn num(doc: &Value, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Value::as_number)
        .ok_or_else(|| format!("{key} missing or not a number"))
}

/// Validates a parsed profile-baseline document: schema, both CI gates,
/// and internal consistency of the stack shares.
pub fn validate(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("schema field missing")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    doc.get("quick")
        .and_then(Value::as_bool)
        .ok_or("quick field missing")?;

    let total = num(doc, "total_ms")?;
    if !total.is_finite() || total <= 0.0 {
        return Err(format!("total_ms = {total} (no recorded time)"));
    }
    let session = num(doc, "session_total_ms")?;
    if !session.is_finite() || session <= 0.0 {
        return Err(format!("session_total_ms = {session} (no sessions)"));
    }

    let recon = num(doc, "reconciliation_error")?;
    if !(0.0..=MAX_RECONCILIATION_ERROR).contains(&recon) {
        return Err(format!(
            "reconciliation error {recon} exceeds {MAX_RECONCILIATION_ERROR}"
        ));
    }

    let attribution = doc
        .get("attribution")
        .and_then(Value::as_object)
        .ok_or("attribution section missing")?;
    for ordinal in flicker_tpm::costmodel::GATED_ORDINALS {
        let entry = attribution
            .get(ordinal)
            .ok_or_else(|| format!("attribution.{ordinal} missing"))?;
        let fraction = entry
            .get("fraction")
            .and_then(Value::as_number)
            .ok_or_else(|| format!("attribution.{ordinal}.fraction missing"))?;
        if fraction < MIN_ATTRIBUTED_FRACTION {
            return Err(format!(
                "attribution.{ordinal} = {fraction:.3}, below the \
                 {MIN_ATTRIBUTED_FRACTION} gate"
            ));
        }
    }

    let stacks = doc
        .get("stacks")
        .and_then(Value::as_object)
        .ok_or("stacks section missing")?;
    if stacks.is_empty() {
        return Err("stacks section is empty".into());
    }
    let mut share_sum = 0.0;
    for (path, entry) in stacks {
        let share = entry
            .get("share")
            .and_then(Value::as_number)
            .ok_or_else(|| format!("stacks[{path:?}].share missing"))?;
        if !(0.0..=1.0).contains(&share) {
            return Err(format!("stacks[{path:?}].share = {share} out of range"));
        }
        share_sum += share;
    }
    // Shares sum to 1 minus the clamping loss — already bounded above.
    if !((1.0 - MAX_RECONCILIATION_ERROR)..=1.0 + 1e-9).contains(&share_sum) {
        return Err(format!(
            "stack shares sum to {share_sum:.4}, not ~1 (weights don't \
             reconcile with the profile total)"
        ));
    }
    // The decomposition must actually reach the flame: the dominant
    // ordinal's primitive frame has to be present.
    if !stacks
        .keys()
        .any(|p| p.contains("tpm.TPM_Quote;modmul") || p.contains("tpm.TPM_Unseal;modmul"))
    {
        return Err("no modmul frame under a gated ordinal — cost model \
                    decomposition missing from the stacks"
            .into());
    }
    Ok(())
}

fn shares(doc: &Value) -> Result<BTreeMap<String, f64>, String> {
    let stacks = doc
        .get("stacks")
        .and_then(Value::as_object)
        .ok_or("stacks section missing")?;
    let mut out = BTreeMap::new();
    for (path, entry) in stacks {
        let share = entry
            .get("share")
            .and_then(Value::as_number)
            .ok_or_else(|| format!("stacks[{path:?}].share missing"))?;
        out.insert(path.clone(), share);
    }
    Ok(out)
}

/// The regression gate: checks a fresh run (`current`) against the
/// committed `baseline`. Both must validate; every load-bearing baseline
/// stack (share ≥ [`SHARE_FLOOR`]) must still exist within
/// [`MAX_SHARE_DRIFT`] of its share, and gated attribution fractions must
/// not drift. Returns human-readable drift notes for stacks that moved
/// but stayed inside the gate.
pub fn compare(baseline: &Value, current: &Value) -> Result<Vec<String>, String> {
    validate(baseline).map_err(|e| format!("baseline invalid: {e}"))?;
    validate(current).map_err(|e| format!("current run invalid: {e}"))?;

    let base_attr = baseline
        .get("attribution")
        .and_then(Value::as_object)
        .ok_or("baseline attribution missing")?;
    let cur_attr = current
        .get("attribution")
        .and_then(Value::as_object)
        .ok_or("current attribution missing")?;
    for ordinal in flicker_tpm::costmodel::GATED_ORDINALS {
        let b = base_attr
            .get(ordinal)
            .and_then(|e| e.get("fraction"))
            .and_then(Value::as_number)
            .unwrap_or(0.0);
        let c = cur_attr
            .get(ordinal)
            .and_then(|e| e.get("fraction"))
            .and_then(Value::as_number)
            .unwrap_or(0.0);
        if (b - c).abs() > 0.02 {
            return Err(format!(
                "attribution.{ordinal} drifted {b:.3} -> {c:.3} (the cost \
                 model's shares are constants; this is a model change)"
            ));
        }
    }

    let base_shares = shares(baseline)?;
    let cur_shares = shares(current)?;
    let mut notes = Vec::new();
    for (path, &b) in &base_shares {
        if b < SHARE_FLOOR {
            continue;
        }
        let c = cur_shares.get(path).copied().unwrap_or(0.0);
        let drift = (b - c).abs();
        if drift > MAX_SHARE_DRIFT {
            return Err(format!(
                "stack {path:?} share drifted {b:.3} -> {c:.3} \
                 (> {MAX_SHARE_DRIFT} gate)"
            ));
        }
        if drift > MAX_SHARE_DRIFT / 2.0 {
            notes.push(format!("{path}: share {b:.3} -> {c:.3}"));
        }
    }
    // New heavyweight stacks are drift too: time moved somewhere the
    // baseline never saw.
    for (path, &c) in &cur_shares {
        if c >= SHARE_FLOOR + MAX_SHARE_DRIFT && !base_shares.contains_key(path) {
            return Err(format!(
                "new stack {path:?} carries {c:.3} of total time, absent \
                 from the baseline"
            ));
        }
    }
    Ok(notes)
}

/// The `profile` object for a trajectory JSONL line: totals, the gated
/// attribution fractions, and the five heaviest stack shares — compact
/// numeric leaves the dashboard flattens into drift series.
pub fn trajectory_extension(doc: &Value) -> Value {
    let mut out = BTreeMap::new();
    for key in ["total_ms", "session_total_ms", "reconciliation_error"] {
        if let Some(v) = doc.get(key) {
            out.insert(key.to_string(), v.clone());
        }
    }
    let mut fractions = BTreeMap::new();
    if let Some(attr) = doc.get("attribution").and_then(Value::as_object) {
        for ordinal in flicker_tpm::costmodel::GATED_ORDINALS {
            if let Some(f) = attr.get(ordinal).and_then(|e| e.get("fraction")) {
                fractions.insert(ordinal.to_string(), f.clone());
            }
        }
    }
    out.insert("attribution".into(), Value::Object(fractions));
    let mut top: Vec<(String, f64)> = shares(doc).unwrap_or_default().into_iter().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.insert(
        "top_stacks".into(),
        Value::Object(
            top.into_iter()
                .take(5)
                .map(|(p, s)| (p, Value::Number(s)))
                .collect(),
        ),
    );
    Value::Object(out)
}

/// Convenience: report + profile for the same trace (the tool prints from
/// the [`Profile`], commits the [`Value`]).
pub fn report_with_profile(quick: bool, trace: &Trace) -> (Value, Profile) {
    (report(quick, trace), build(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{run_baseline_traced, BaselineConfig};

    fn quick_doc() -> Value {
        let (_, trace) = run_baseline_traced(&BaselineConfig::quick());
        report(true, &trace)
    }

    #[test]
    fn quick_profile_validates_and_round_trips() {
        let doc = quick_doc();
        validate(&doc).expect("quick profile validates");
        let back = crate::json::parse(&doc.to_pretty()).expect("emitted JSON parses");
        assert_eq!(back, doc);
        validate(&back).expect("round-tripped profile validates");
    }

    #[test]
    fn gated_ordinals_attribute_at_least_90_percent_measured() {
        // The acceptance bar, measured from the flight record rather than
        // read off the model's constants.
        let doc = quick_doc();
        let attr = doc.get("attribution").and_then(Value::as_object).unwrap();
        for ordinal in flicker_tpm::costmodel::GATED_ORDINALS {
            let f = attr
                .get(ordinal)
                .and_then(|e| e.get("fraction"))
                .and_then(Value::as_number)
                .unwrap_or_else(|| panic!("{ordinal} missing from attribution"));
            assert!(f >= MIN_ATTRIBUTED_FRACTION, "{ordinal} attributes {f}");
        }
    }

    #[test]
    fn identical_runs_compare_clean() {
        let doc = quick_doc();
        let notes = compare(&doc, &doc).expect("self-compare passes");
        assert!(notes.is_empty(), "self-compare drifted: {notes:?}");
    }

    #[test]
    fn compare_rejects_a_vanished_stack() {
        let doc = quick_doc();
        let Value::Object(mut map) = doc.clone() else {
            unreachable!()
        };
        // Drop the heaviest stack from the "current" run.
        let Some(Value::Object(stacks)) = map.get_mut("stacks") else {
            unreachable!()
        };
        let heaviest = stacks
            .iter()
            .max_by(|a, b| {
                let s = |e: &Value| e.get("share").and_then(Value::as_number).unwrap_or(0.0);
                s(a.1).total_cmp(&s(b.1))
            })
            .map(|(k, _)| k.clone())
            .unwrap();
        stacks.remove(&heaviest);
        let mutilated = Value::Object(map);
        // The mutilated doc no longer validates (share sum broke) or the
        // compare flags the vanished stack — either way the gate trips.
        assert!(
            compare(&doc, &mutilated).is_err(),
            "vanished stack {heaviest:?} passed the gate"
        );
    }

    #[test]
    fn trajectory_extension_is_compact_and_numeric() {
        let doc = quick_doc();
        let ext = trajectory_extension(&doc);
        assert!(ext.get("total_ms").and_then(Value::as_number).is_some());
        let top = ext.get("top_stacks").and_then(Value::as_object).unwrap();
        assert!(!top.is_empty() && top.len() <= 5);
        let attr = ext.get("attribution").and_then(Value::as_object).unwrap();
        assert_eq!(attr.len(), flicker_tpm::costmodel::GATED_ORDINALS.len());
    }
}
