//! Regression guards for the headline reproduction numbers.
//!
//! The experiment binaries print paper-vs-repro tables for humans; these
//! tests pin the same quantities to bands in CI so a calibration or logic
//! change that drifts the reproduction is caught immediately.

use flicker_apps::rootkit::{known_good_hash, Administrator};
use flicker_apps::{flicker_efficiency, replication_efficiency, BoincClient, WorkUnit};
use flicker_bench::{op_total, provisioned_eval_os};
use flicker_os::NetLink;
use std::time::Duration;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Table 1: the attested rootkit query lands within 1 % of the paper's
/// 1 022.7 ms total.
#[test]
fn table1_total_query_latency() {
    let (mut os, cert, ca_pub) = provisioned_eval_os(151);
    let mut admin = Administrator::new(
        ca_pub,
        known_good_hash(&os),
        NetLink::paper_verifier_link(151),
    );
    let report = admin.query(&mut os, &cert).unwrap();
    assert!(report.clean);
    let total = ms(report.query_latency);
    assert!(
        (1_012.0..=1_040.0).contains(&total),
        "total query latency {total:.1} ms vs paper 1022.7"
    );
    let hash = ms(op_total(&report.session.op_log(), "sha1"));
    assert!(
        (21.0..=24.0).contains(&hash),
        "kernel hash {hash:.1} ms vs 22.0"
    );
    let skinit = ms(report.session.timings.skinit);
    assert!(
        (13.0..=16.0).contains(&skinit),
        "SKINIT {skinit:.1} ms vs 15.4"
    );
}

/// Table 4 row 1: a 1 s work slice carries 45–50 % Flicker overhead
/// (paper: 47 %).
#[test]
fn table4_one_second_slice_overhead() {
    let (mut os, _, _) = provisioned_eval_os(152);
    let unit = WorkUnit {
        n: 0xFFFF_FFFF_FFFF_FFC5,
        lo: 2,
        hi: u64::MAX,
    };
    let (mut client, _) = BoincClient::start(&mut os, unit).unwrap();
    let rep = client.run_slice(&mut os, Duration::from_secs(1)).unwrap();
    let pct = 100.0 * rep.overhead.as_secs_f64() / rep.session.timings.total.as_secs_f64();
    assert!(
        (45.0..=50.0).contains(&pct),
        "overhead {pct:.1}% vs paper 47%"
    );
    let unseal = ms(op_total(&rep.session.op_log(), "unseal"));
    assert!(
        (895.0..=910.0).contains(&unseal),
        "unseal {unseal:.1} ms vs 898.3"
    );
}

/// Figure 8: the crossover with 3-way replication falls between 1 s and
/// 2 s of user latency (the paper's "two second user latency" claim).
#[test]
fn fig8_crossover_between_one_and_two_seconds() {
    let (mut os, _, _) = provisioned_eval_os(153);
    let unit = WorkUnit {
        n: 0xFFFF_FFFF_FFFF_FFC5,
        lo: 2,
        hi: u64::MAX,
    };
    let (mut client, _) = BoincClient::start(&mut os, unit).unwrap();
    let rep = client.run_slice(&mut os, Duration::from_secs(1)).unwrap();
    let crossover_s = 1.5 * rep.overhead.as_secs_f64();
    assert!(
        (1.0..2.0).contains(&crossover_s),
        "crossover at {crossover_s:.2} s"
    );
    assert!(flicker_efficiency(Duration::from_secs(2), rep.overhead) > replication_efficiency(3));
    assert!(flicker_efficiency(Duration::from_secs(1), rep.overhead) < replication_efficiency(3));
}

/// Figure 9b: the SSH login PAL lands within ~2 % of the paper's 937.6 ms.
#[test]
fn fig9b_login_total() {
    let (mut os, cert, ca_pub) = provisioned_eval_os(154);
    let mut link = NetLink::paper_verifier_link(154);
    let mut server = flicker_apps::SshServer::new(vec![flicker_apps::PasswdEntry::new(
        "alice",
        b"pw",
        b"salt0001",
    )]);
    let mut client = flicker_apps::SshClient::new(ca_pub);
    let transcript = server
        .connection_setup(&mut os, &mut link, [1; 20])
        .unwrap();
    client.verify_setup(&cert, &transcript).unwrap();
    let nonce = server.issue_nonce();
    let mut rng = flicker_crypto::rng::XorShiftRng::new(154);
    let ct = client.encrypt_password(b"pw", &nonce, &mut rng).unwrap();
    let outcome = server
        .login(&mut os, &mut link, "alice", &ct, nonce)
        .unwrap();
    assert!(outcome.accepted);
    let total = ms(outcome.session.timings.total);
    assert!(
        (915.0..=955.0).contains(&total),
        "login PAL total {total:.1} ms vs paper 937.6"
    );
}

/// Figure 9a: mean keygen over 30 runs within 10 % of the paper's
/// 185.7 ms, with a nonzero spread (the paper's ±14 %).
#[test]
fn fig9a_keygen_mean_and_spread() {
    let (mut os, cert, ca_pub) = provisioned_eval_os(155);
    let mut link = NetLink::paper_verifier_link(155);
    let mut client = flicker_apps::SshClient::new(ca_pub);
    let mut samples = Vec::new();
    for i in 0..30u8 {
        let mut server = flicker_apps::SshServer::new(vec![flicker_apps::PasswdEntry::new(
            "alice",
            b"pw",
            b"salt0001",
        )]);
        let transcript = server
            .connection_setup(&mut os, &mut link, [i; 20])
            .unwrap();
        client.verify_setup(&cert, &transcript).unwrap();
        samples.push(op_total(&transcript.session.op_log(), "rsa1024_keygen"));
    }
    let stats = flicker_bench::Stats::of(&samples);
    assert!(
        (165.0..=210.0).contains(&stats.mean_ms()),
        "keygen mean {:.1} ms vs paper 185.7",
        stats.mean_ms()
    );
    assert!(stats.std_ms() > 5.0, "keygen variance must be visible");
}

/// The committed perf-baseline artifact at the repo root stays parseable,
/// schema-valid, and adequately sampled: a full (non-quick) run over at
/// least 200 sessions covering every §6 application.
#[test]
fn committed_perf_baseline_is_valid() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_perf_baseline.json"
    );
    let text = std::fs::read_to_string(path).expect("BENCH_perf_baseline.json committed");
    let doc = flicker_bench::json::parse(&text).expect("artifact parses as JSON");
    let sessions = flicker_bench::baseline::validate(&doc).expect("artifact is schema-valid");
    assert!(
        sessions >= flicker_bench::baseline::MIN_FULL_SESSIONS,
        "committed baseline covers {sessions} sessions"
    );
    assert_eq!(
        doc.get("quick")
            .and_then(flicker_bench::json::Value::as_bool),
        Some(false),
        "the committed artifact must be a full run"
    );
}
