//! The fault-sweep robustness contract as a regression test: 200 seeded
//! schedules across the §6 applications, zero violations.

use flicker_bench::faultsweep::{run_sweep, Outcome};

#[test]
fn two_hundred_seeded_schedules_produce_no_violations() {
    let report = run_sweep(0, 200);
    let violations: Vec<String> = report
        .violating()
        .map(|r| {
            let Outcome::Violation(why) = &r.outcome else {
                unreachable!()
            };
            format!("seed={} app={}: {why}", r.seed, r.app)
        })
        .collect();
    assert!(violations.is_empty(), "{violations:#?}");
    assert_eq!(report.results.len(), 200);
    // The sweep is only meaningful if faults actually fired, and both
    // terminal outcomes should be represented.
    assert!(report.faults_fired > 50, "{} faults", report.faults_fired);
    assert!(report.survived > 0);
    assert!(report.recovered > 0);
}
