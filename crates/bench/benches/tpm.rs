//! Criterion benchmarks for the software TPM's host-side performance
//! (command processing cost of the simulator itself; the *simulated*
//! latencies live in `TpmTimingProfile`).

use criterion::{criterion_group, criterion_main, Criterion};
use flicker_crypto::rng::XorShiftRng;
use flicker_tpm::{PcrSelection, PrivacyCa, Tpm, TpmConfig, WELL_KNOWN_AUTH};

fn seal_blob(tpm: &mut Tpm, data: &[u8]) -> flicker_tpm::SealedBlob {
    let sel = PcrSelection::pcr17();
    let digest = tpm.pcrs().composite_hash(&sel).unwrap();
    let pd = Tpm::param_digest(&[b"TPM_Seal", data, &sel.encode(), &digest]);
    let mut session = tpm.oiap(WELL_KNOWN_AUTH);
    let mut rng = XorShiftRng::new(7);
    let auth = session.authorize(&pd, &mut rng, false);
    tpm.seal(data, &sel, &WELL_KNOWN_AUTH, &auth).unwrap()
}

fn bench_tpm(c: &mut Criterion) {
    let mut tpm = Tpm::manufacture(TpmConfig::fast_for_tests(1));
    tpm.take_ownership();

    c.bench_function("tpm/pcr_extend", |b| {
        b.iter(|| tpm.pcr_extend(17, &[1u8; 20]).unwrap());
    });

    c.bench_function("tpm/get_random_128", |b| {
        b.iter(|| tpm.get_random(128));
    });

    c.bench_function("tpm/seal_160bit_key", |b| {
        b.iter(|| seal_blob(&mut tpm, &[9u8; 20]));
    });

    let blob = seal_blob(&mut tpm, &[9u8; 20]);
    c.bench_function("tpm/unseal", |b| {
        b.iter(|| {
            let pd = Tpm::param_digest(&[b"TPM_Unseal", blob.as_bytes()]);
            let mut session = tpm.oiap(WELL_KNOWN_AUTH);
            let mut rng = XorShiftRng::new(8);
            let auth = session.authorize(&pd, &mut rng, false);
            tpm.unseal(&blob, &auth).unwrap()
        });
    });

    // Quote includes a real RSA signature.
    let mut rng = XorShiftRng::new(9);
    let mut ca = PrivacyCa::new(512, &mut rng);
    let mut tpm2 = Tpm::provisioned(TpmConfig::fast_for_tests(2), &mut ca);
    let (aik, _) = tpm2.make_identity(&ca, "bench").unwrap();
    c.bench_function("tpm/quote", |b| {
        b.iter(|| tpm2.quote(aik, [3u8; 20], &PcrSelection::pcr17()).unwrap());
    });
}

criterion_group!(benches, bench_tpm);
criterion_main!(benches);
