//! Criterion benchmarks for the §7.6 warm-path cache's *host-side* cost:
//! what a measurement-memo hit saves the simulator versus recomputing the
//! SLB hash, and what a seal-memo lookup costs. (The *simulated* savings —
//! skipped `TPM_Seal`s and session opens on the virtual clock — are
//! measured by the `warm_bench` binary, not here.)

use criterion::{criterion_group, criterion_main, Criterion};
use flicker_crypto::sha1::sha1;
use flicker_machine::{SealKey, WarmCache};
use flicker_tpm::SealedBlob;

fn bench_warm(c: &mut Criterion) {
    // A realistic SLB: tens of kilobytes of PAL image.
    let image = vec![0xA5u8; 64 * 1024];
    let digest = sha1(&image);

    let mut cache = WarmCache::new();
    cache.store_measurement(&image, digest);
    c.bench_function("warm/measurement_memo_hit", |b| {
        b.iter(|| cache.lookup_measurement(&image).unwrap());
    });

    // The work a miss has to redo.
    c.bench_function("warm/measurement_miss_sha1_64k", |b| {
        b.iter(|| sha1(&image));
    });

    let key = SealKey {
        data: b"warm-bench-refresh-state".to_vec(),
        selection: vec![0, 2, 0, 0, 2],
        digest_at_release: [7u8; 20],
        blob_auth: [0u8; 20],
    };
    let mut seal_cache = WarmCache::new();
    seal_cache.store_seal(key.clone(), SealedBlob::from_bytes(vec![0x5Au8; 96]));
    c.bench_function("warm/seal_memo_hit", |b| {
        b.iter(|| seal_cache.lookup_seal(&key).unwrap());
    });
}

criterion_group!(benches, bench_warm);
criterion_main!(benches);
