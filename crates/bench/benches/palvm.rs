//! Criterion benchmarks for the PalVM interpreter and assembler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flicker_palvm::{assemble, run, TestBus};

/// A tight arithmetic loop: 6 instructions per iteration, 100k iterations.
const LOOP_SRC: &str = "
    movi r1, 100000
    movi r2, 0
loop:
    add r2, r2, r1
    xor r2, r2, r1
    movi r3, 1
    sub r1, r1, r3
    jnz r1, loop
    halt";

fn bench_vm(c: &mut Criterion) {
    let prog = assemble(LOOP_SRC).unwrap();
    let mut g = c.benchmark_group("palvm");
    // ~600k instructions per run.
    g.throughput(Throughput::Elements(600_002));
    g.bench_function("interpreter_loop", |b| {
        b.iter(|| {
            let mut bus = TestBus::new(0);
            run(&prog.code, &mut bus, u64::MAX >> 1).unwrap()
        });
    });
    g.finish();

    c.bench_function("palvm/assemble_trial_division", |b| {
        b.iter(flicker_palvm::progs::trial_division);
    });

    let mem_src = "
        movi r1, 0
        movi r2, 4096
    loop:
        stw [r1+0], r2
        ldw r3, [r1+0]
        movi r4, 4
        add r1, r1, r4
        jlt r1, r2, loop
        halt";
    let mem_prog = assemble(mem_src).unwrap();
    c.bench_function("palvm/memory_loop_4k", |b| {
        b.iter(|| {
            let mut bus = TestBus::new(4096);
            run(&mem_prog.code, &mut bus, u64::MAX >> 1).unwrap()
        });
    });
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
