//! Criterion benchmarks for full Flicker sessions (host-side cost of the
//! simulation pipeline: SLB build, SKINIT semantics, PAL dispatch,
//! measurement chain, cleanup).

use criterion::{criterion_group, criterion_main, Criterion};
use flicker_core::{
    run_session, FlickerResult, NativePal, PalContext, PalPayload, SessionParams, SlbImage,
    SlbOptions,
};
use flicker_os::{Os, OsConfig};
use std::sync::Arc;

struct EchoPal;
impl NativePal for EchoPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let data = ctx.inputs().to_vec();
        ctx.write_output(&data)
    }
}

fn native_slb() -> SlbImage {
    SlbImage::build(
        PalPayload::Native {
            identity: b"bench-echo-pal".to_vec(),
            program: Arc::new(EchoPal),
        },
        SlbOptions::default(),
    )
    .unwrap()
}

fn bench_session(c: &mut Criterion) {
    let mut os = Os::boot(OsConfig::fast_for_tests(1));
    let slb = native_slb();

    c.bench_function("session/native_echo", |b| {
        let params = SessionParams::with_inputs(b"ping".to_vec());
        b.iter(|| run_session(&mut os, &slb, &params).unwrap());
    });

    c.bench_function("session/native_echo_with_stub", |b| {
        let params = SessionParams {
            inputs: b"ping".to_vec(),
            use_hashing_stub: true,
            ..Default::default()
        };
        b.iter(|| run_session(&mut os, &slb, &params).unwrap());
    });

    let hello = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::progs::hello_world()),
        SlbOptions::default(),
    )
    .unwrap();
    c.bench_function("session/bytecode_hello_world", |b| {
        let params = SessionParams::default();
        b.iter(|| run_session(&mut os, &hello, &params).unwrap());
    });

    c.bench_function("session/slb_build_and_measure", |b| {
        b.iter(|| {
            let slb = native_slb();
            slb.measurement(0x10_0000)
        });
    });
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
