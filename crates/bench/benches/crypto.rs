//! Criterion benchmarks for the from-scratch crypto substrate.
//!
//! These measure *host* wall-clock performance of this reproduction's
//! implementations (the paper's Crypto module equivalent), independent of
//! the simulation's virtual clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flicker_crypto::aes::Aes128;
use flicker_crypto::hmac::Hmac;
use flicker_crypto::md5crypt::md5crypt;
use flicker_crypto::mpint::Mpint;
use flicker_crypto::pkcs1;
use flicker_crypto::rng::XorShiftRng;
use flicker_crypto::rsa::RsaPrivateKey;
use flicker_crypto::sha1::{sha1, Sha1};

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha1(d));
        });
    }
    g.finish();

    // The SKINIT-relevant case: hashing a full 64 KB SLB window.
    c.bench_function("sha1/slb_window_64k", |b| {
        let window = vec![0x5Au8; 64 * 1024];
        b.iter(|| sha1(&window));
    });
}

fn bench_symmetric(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    let mut g = c.benchmark_group("aes128_cbc");
    for size in [256usize, 4096] {
        let data = vec![1u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| aes.cbc_encrypt(&[0u8; 16], d));
        });
    }
    g.finish();

    c.bench_function("hmac_sha1/1k", |b| {
        let data = vec![2u8; 1024];
        b.iter(|| Hmac::<Sha1>::mac(b"state-mac-key", &data));
    });

    c.bench_function("md5crypt", |b| {
        b.iter(|| md5crypt(b"hunter2", b"fl1ck3r"));
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(1);
    let (key, _) = RsaPrivateKey::generate(1024, &mut rng);
    let sig = pkcs1::sign(&key, b"certificate").unwrap();
    let ct = pkcs1::encrypt(key.public_key(), b"password+nonce", &mut rng).unwrap();

    c.bench_function("rsa1024/sign", |b| {
        b.iter(|| pkcs1::sign(&key, b"certificate").unwrap());
    });
    c.bench_function("rsa1024/verify", |b| {
        b.iter(|| pkcs1::verify(key.public_key(), b"certificate", &sig).unwrap());
    });
    c.bench_function("rsa1024/decrypt", |b| {
        b.iter(|| pkcs1::decrypt(&key, &ct).unwrap());
    });
    c.bench_function("rsa512/keygen", |b| {
        let mut rng = XorShiftRng::new(99);
        b.iter(|| RsaPrivateKey::generate(512, &mut rng));
    });
}

fn bench_mpint(c: &mut Criterion) {
    let m = Mpint::from_hex(&"f".repeat(256)).unwrap(); // 1024-bit odd modulus
    let base = Mpint::from(65537u64);
    let exp = Mpint::from_hex(&"a".repeat(64)).unwrap(); // 256-bit exponent
                                                         // Ablation: Montgomery (the default for odd moduli) vs the
                                                         // division-based reference.
    c.bench_function("mpint/modexp_1024_montgomery", |b| {
        b.iter(|| base.mod_exp(&exp, &m));
    });
    c.bench_function("mpint/modexp_1024_division", |b| {
        b.iter(|| base.mod_exp_plain(&exp, &m));
    });

    let a = Mpint::from_hex(&"c".repeat(256)).unwrap();
    let d = Mpint::from_hex(&"7".repeat(128)).unwrap();
    c.bench_function("mpint/div_rem_1024_by_512", |b| {
        b.iter(|| a.div_rem(&d));
    });
}

criterion_group!(
    benches,
    bench_hashes,
    bench_symmetric,
    bench_rsa,
    bench_mpint
);
criterion_main!(benches);
