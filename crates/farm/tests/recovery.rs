//! Farm recovery invariants (issue satellite): power loss mid-session
//! must neither lose nor duplicate the request, a quarantined machine's
//! in-flight work is re-queued exactly once, and — property-tested over
//! seeded fault schedules — every submitted request reaches exactly one
//! terminal state with audit-clean per-machine traces.

use flicker_farm::{request::actions, AppKind, Farm, FarmConfig, RequestSpec, Submitted, Terminal};
use flicker_faults::{Fault, FaultPlan};
use flicker_trace::EventKind;
use proptest::prelude::*;
use std::time::Duration;

/// Counts coordinator farm events with `action` for request `id`.
fn action_count(events: &[flicker_trace::Event], action: &str, id: u64) -> usize {
    events
        .iter()
        .filter(|e| {
            matches!(&e.kind, EventKind::Farm { action: a, request, .. }
                if a == action && *request == id)
        })
        .count()
}

/// Power loss mid-session: the request is retried after the reboot and
/// reaches exactly one terminal state — never lost, never duplicated.
#[test]
fn power_loss_mid_session_conserves_the_request() {
    let mut config = FarmConfig::fast_for_tests(1);
    config.quarantine_after = 10;
    let farm = Farm::start(config);
    let id = farm
        .submit(RequestSpec {
            app: AppKind::Ssh,
            seed: 3,
            faults: FaultPlan::one(Fault::PowerLossAfter {
                after: Duration::from_micros(200),
            }),
        })
        .id();
    let report = farm.shutdown();
    report.verify_conservation().expect("conservation");
    assert_eq!(report.done(), 1, "outcomes: {:?}", report.outcomes);
    let o = &report.outcomes[0];
    assert_eq!(o.id, id);
    assert!(o.attempts >= 2, "the cut attempt plus the clean retry");
    // Exactly one terminal event in the coordinator record.
    let events = report.coordinator.events();
    assert_eq!(action_count(&events, actions::DONE, id), 1);
    assert_eq!(action_count(&events, actions::FAILED, id), 0);
    assert_eq!(action_count(&events, actions::TIMED_OUT, id), 0);
    // The platform's own flight record stays paper-invariant clean across
    // the reboot.
    assert!(
        report.audit_shards().is_empty(),
        "{:?}",
        report.audit_shards()
    );
}

/// A quarantined machine's in-flight work goes back to the queue exactly
/// once per quarantine and still completes after re-admission.
#[test]
fn quarantine_requeues_in_flight_work_exactly_once() {
    let mut config = FarmConfig::fast_for_tests(1);
    config.quarantine_after = 1; // first failure trips the breaker
    let farm = Farm::start(config);
    let id = farm
        .submit(RequestSpec {
            app: AppKind::Distcomp,
            seed: 11,
            faults: FaultPlan::one(Fault::PowerLossAfter {
                after: Duration::from_micros(50),
            }),
        })
        .id();
    let report = farm.shutdown();
    report.verify_conservation().expect("conservation");
    assert_eq!(report.done(), 1, "outcomes: {:?}", report.outcomes);
    let o = &report.outcomes[0];
    assert_eq!(o.requeues, 1, "exactly one requeue for one quarantine");
    let events = report.coordinator.events();
    assert_eq!(action_count(&events, actions::QUARANTINE, id), 1);
    assert_eq!(action_count(&events, actions::REQUEUED, id), 1);
    assert_eq!(action_count(&events, actions::DONE, id), 1);
    // The machine probed its way back and kept serving.
    let shard = &report.shards[0];
    assert_eq!(shard.quarantines, 1);
    assert!(shard.probes >= 1);
    assert!(!shard.retired);
    assert!(
        report.audit_shards().is_empty(),
        "{:?}",
        report.audit_shards()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under arbitrary seeded fault schedules on a multi-machine farm,
    /// the conservation law holds: every submitted request reaches
    /// exactly one terminal state within the attempt bound, and every
    /// machine's flight record audits clean.
    #[test]
    fn fault_schedules_never_lose_or_duplicate_requests(base in 0u64..10_000) {
        let mut config = FarmConfig::fast_for_tests(3);
        config.quarantine_after = 2;
        let farm = Farm::start(config);
        let mut admitted = 0u64;
        for i in 0..12u64 {
            match farm.submit(RequestSpec::seeded(base * 131 + i)) {
                Submitted::Admitted(_) => admitted += 1,
                Submitted::Shed(_) => {}
            }
        }
        let report = farm.shutdown();
        prop_assert_eq!(report.submitted, 12);
        if let Err(e) = report.verify_conservation() {
            prop_assert!(false, "conservation violated: {}", e);
        }
        // Shed + terminal-after-running partition the submissions.
        let ran = report.done() + report.failed() + report.timed_out();
        prop_assert_eq!(ran as u64, admitted);
        prop_assert_eq!(report.shed() as u64, 12 - admitted);
        // Shed requests never ran; everything else ran at least once.
        for o in &report.outcomes {
            match o.terminal {
                Terminal::Shed => prop_assert_eq!(o.attempts, 0),
                _ => prop_assert!(o.attempts >= 1),
            }
        }
        let violations = report.audit_shards();
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}
