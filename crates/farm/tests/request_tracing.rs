//! Request-scoped tracing invariants (issue satellite): under seeded
//! fault schedules every shard event either carries exactly one valid
//! request context or is explicitly machine-scoped (provisioning, probes,
//! idle); attempt windows are well-formed and unique farm-wide; and work
//! requeued after a quarantine keeps its original trace id with a fresh
//! attempt span. On top of the scoping rules, the attribution layer must
//! reconstruct each request's latency exactly from its trace: attempt
//! walls sum to `RequestOutcome::latency` and named categories cover the
//! wall within the ≥ 99% acceptance bound.

use flicker_farm::{request::actions, AppKind, Farm, FarmConfig, RequestSpec, Submitted, Terminal};
use flicker_faults::{Fault, FaultPlan};
use flicker_trace::{Event, EventKind, RequestCtx};
use std::collections::BTreeSet;
use std::time::Duration;

/// Is this shard event an attempt-window marker, and which one?
fn window_marker(e: &Event) -> Option<(&str, u64)> {
    match &e.kind {
        EventKind::Farm {
            action, request, ..
        } if action == actions::ATTEMPT_START || action == actions::ATTEMPT_END => {
            Some((action.as_str(), *request))
        }
        _ => None,
    }
}

/// Walks one shard's stream and checks the scoping rules:
///
/// * attempt windows alternate `attempt_start` / `attempt_end`, each pair
///   carrying the same context, with the marker's `request` field agreeing
///   with its context stamp;
/// * every event inside a window carries exactly that window's context;
/// * every event outside all windows is machine-scoped (no context);
/// * every `Charge` is request-scoped (charges only exist for requests).
///
/// Returns every `(request, attempt)` window the shard ran.
fn check_shard_scoping(machine: u64, events: &[Event]) -> Vec<RequestCtx> {
    let mut open: Option<RequestCtx> = None;
    let mut windows = Vec::new();
    for e in events {
        if let Some((marker, request)) = window_marker(e) {
            let ctx = e.ctx.unwrap_or_else(|| {
                panic!("machine {machine}: {marker} marker without a request context")
            });
            assert_eq!(
                ctx.request, request,
                "machine {machine}: {marker} request field disagrees with its context"
            );
            if marker == actions::ATTEMPT_START {
                assert!(
                    open.is_none(),
                    "machine {machine}: nested attempt window for request {request}"
                );
                open = Some(ctx);
                windows.push(ctx);
            } else {
                assert_eq!(
                    open.take(),
                    Some(ctx),
                    "machine {machine}: attempt_end does not match the open window"
                );
            }
            continue;
        }
        match (open, e.ctx) {
            (Some(window), Some(ctx)) => assert_eq!(
                ctx,
                window,
                "machine {machine}: event {:?} inside request {} attempt {} \
                 carries a foreign context",
                e.kind.name(),
                window.request,
                window.attempt
            ),
            (Some(window), None) => panic!(
                "machine {machine}: unscoped {:?} event inside request {} attempt {}",
                e.kind.name(),
                window.request,
                window.attempt
            ),
            (None, Some(ctx)) => panic!(
                "machine {machine}: {:?} event carries request {} context \
                 outside any attempt window",
                e.kind.name(),
                ctx.request
            ),
            (None, None) => {}
        }
        if matches!(e.kind, EventKind::Charge { .. }) {
            assert!(
                e.ctx.is_some(),
                "machine {machine}: charge event without a request context"
            );
        }
    }
    assert!(
        open.is_none(),
        "machine {machine}: attempt window left open at shutdown"
    );
    windows
}

/// Seeded fault schedules across a multi-machine farm: every shard event
/// is either request-scoped to exactly one valid id or machine-scoped,
/// window ids are unique farm-wide, and attribution reconstructs each
/// request's recorded latency exactly.
#[test]
fn every_event_is_scoped_to_exactly_one_valid_request() {
    let mut config = FarmConfig::fast_for_tests(3);
    config.quarantine_after = 2;
    let farm = Farm::start(config);
    let mut admitted = BTreeSet::new();
    for i in 0..24u64 {
        if let Submitted::Admitted(id) = farm.submit(RequestSpec::seeded(977 * 131 + i)) {
            admitted.insert(id);
        }
    }
    let report = farm.shutdown();
    report.verify_conservation().expect("conservation");
    assert!(
        report.audit_shards().is_empty(),
        "{:?}",
        report.audit_shards()
    );

    // Scoping rules per shard, and window uniqueness across the farm: one
    // (request, attempt) pair can only ever run once, wherever a requeue
    // landed it.
    let mut seen: BTreeSet<RequestCtx> = BTreeSet::new();
    for s in &report.shards {
        for ctx in check_shard_scoping(s.id, &s.trace.events()) {
            assert!(
                admitted.contains(&ctx.request),
                "machine {}: window for unknown request {}",
                s.id,
                ctx.request
            );
            assert!(ctx.attempt >= 1 && ctx.attempt <= report.max_attempts);
            assert!(
                seen.insert(ctx),
                "request {} attempt {} ran twice",
                ctx.request,
                ctx.attempt
            );
        }
    }

    // Attribution must account for each ran request exactly: the attempt
    // windows sum to the outcome's recorded latency, attempt numbers are
    // contiguous from 1, and named categories cover ≥ 99% of the wall.
    let attr = report.attribution();
    for o in &report.outcomes {
        if matches!(o.terminal, Terminal::Shed) {
            continue;
        }
        let r = attr
            .request(o.id)
            .unwrap_or_else(|| panic!("request {} ran but has no attribution", o.id));
        assert_eq!(
            r.active(),
            o.latency,
            "request {}: attempt walls must sum to the recorded latency",
            o.id
        );
        assert_eq!(r.attempts.len() as u32, o.attempts);
        for (i, a) in r.attempts.iter().enumerate() {
            assert_eq!(a.attempt, i as u32 + 1, "request {}: attempt gap", o.id);
        }
        assert!(
            r.coverage() >= 0.99,
            "request {}: only {:.4} of wall time attributed ({:?} unattributed)",
            o.id,
            r.coverage(),
            r.unattributed()
        );
    }
    assert!(attr.min_coverage() >= 0.99, "{}", attr.min_coverage());
}

/// Requeued-after-quarantine work keeps its original trace id: the
/// post-requeue attempt appears as a new attempt span under the same
/// request, never as a fresh id.
#[test]
fn requeued_request_keeps_its_trace_id_with_a_new_attempt_span() {
    let mut config = FarmConfig::fast_for_tests(1);
    config.quarantine_after = 1; // first failure trips the breaker
    let farm = Farm::start(config);
    let id = farm
        .submit(RequestSpec {
            app: AppKind::Distcomp,
            seed: 11,
            faults: FaultPlan::one(Fault::PowerLossAfter {
                after: Duration::from_micros(50),
            }),
        })
        .id();
    let report = farm.shutdown();
    assert_eq!(report.done(), 1, "outcomes: {:?}", report.outcomes);
    let o = &report.outcomes[0];
    assert_eq!(o.requeues, 1, "exactly one requeue for one quarantine");
    assert!(o.attempts >= 2);

    let attr = report.attribution();
    let r = attr.request(id).expect("requeued request attributed");
    assert!(r.done);
    assert_eq!(
        r.attempts.len() as u32,
        o.attempts,
        "every attempt (pre- and post-requeue) must span under the one trace id"
    );
    assert_eq!(r.attempts[0].attempt, 1);
    assert_eq!(r.attempts[1].attempt, 2);
    assert_eq!(r.active(), o.latency);

    // The probe sessions that re-admitted the machine are machine-scoped:
    // between the quarantined attempt and the readmission, no event may
    // borrow the request's id.
    let events = report.shards[0].trace.events();
    let windows = check_shard_scoping(0, &events);
    assert_eq!(windows.len() as u32, o.attempts);
    assert!(
        windows.iter().all(|w| w.request == id),
        "a single-request farm must only ever scope to that request"
    );
}
