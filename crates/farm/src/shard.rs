//! A farm shard: one self-contained simulated platform plus the workload
//! drivers that run the §6 application protocols on it.
//!
//! Each shard owns everything it needs — machine, TPM, OS, its own virtual
//! clock, its own flight recorder, its own provisioned AIK — and shares no
//! mutable state with any other shard, so a worker thread can move one in
//! and drive sessions independently (the `Send` bound is asserted by a
//! test). Per-shard traces matter for more than isolation: the paper-
//! invariant auditor models *one* platform's Figure-2 state machine, so
//! interleaving two machines' events in one recording would read as
//! violations. Farm-level scheduling events go to the coordinator's
//! separate trace instead.

use crate::health::CircuitBreaker;
use crate::request::{actions, AppKind};
use flicker_apps::{
    known_good_hash, Administrator, BoincClient, Csr, FlickerCa, IssuancePolicy, PasswdEntry,
    SshClient, SshServer, WorkUnit,
};
use flicker_core::{
    run_session, FlickerResult, NativePal, PalContext, PalPayload, ReplayProtectedStorage,
    SessionParams, SlbImage, SlbOptions,
};
use flicker_crypto::rng::XorShiftRng;
use flicker_crypto::{RsaPrivateKey, RsaPublicKey};
use flicker_faults::FaultInjector;
use flicker_machine::SimClock;
use flicker_os::{NetLink, Os, OsConfig};
use flicker_tpm::{AikCertificate, PrivacyCa, SealedBlob};
use flicker_trace::attribution::categories;
use flicker_trace::{EventKind, RequestCtx, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// NV index the farm's storage workload roots its counter at (distinct
/// from the fault sweep's `0x0001_4000` and the perf baseline's
/// `0x0001_5000`, so harnesses sharing a TPM image can never collide).
pub const FARM_NV_INDEX: u32 = 0x0001_6000;

/// The SSH workload's password (a recognisable string, as in the sweep,
/// so leak checks grep for it).
pub const FARM_SSH_PASSWORD: &[u8] = b"FARM-SECRET-hunter2";

/// One self-contained farm machine.
pub struct Shard {
    id: u64,
    os: Os,
    cert: AikCertificate,
    ca_public: RsaPublicKey,
    trace: Trace,
    /// Per-machine health state (owned here so a shard and its history
    /// travel together between threads).
    pub breaker: CircuitBreaker,
    /// Sessions completed successfully on this machine.
    pub completed: u64,
    /// Attempts that failed on this machine.
    pub failures: u64,
}

impl Shard {
    /// Boots and provisions shard `id`. Provisioning (Privacy-CA
    /// interaction, AIK certification) is manufacture-time setup: it runs
    /// before any fault plan is armed, exactly as in the fault sweep.
    pub fn new(id: u64, base_seed: u64) -> Self {
        let seed = base_seed.wrapping_add(id);
        let mut os = Os::boot(OsConfig::fast_for_tests((seed % 211) as u8 + 1));
        let trace = Trace::new();
        os.set_tracer(trace.clone());
        let mut rng = XorShiftRng::new(seed.wrapping_add(9_000));
        let mut pca = PrivacyCa::new(512, &mut rng);
        os.provision_attestation(&mut pca, "farm-host")
            .expect("fault-free provisioning");
        let cert = os.aik_certificate().expect("just provisioned").clone();
        Shard {
            id,
            os,
            cert,
            ca_public: pca.public_key().clone(),
            trace,
            breaker: CircuitBreaker::new(u32::MAX),
            completed: 0,
            failures: 0,
        }
    }

    /// This shard's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shard's virtual clock (retry backoff is charged here).
    pub fn clock(&self) -> SimClock {
        self.os.clock()
    }

    /// The shard's flight recorder.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Opens an attempt window: installs `ctx` as the trace's request
    /// context (every event and span recorded until [`Shard::end_attempt`]
    /// carries it) and emits the `attempt_start` marker. Returns the
    /// shard-clock reading the marker was stamped with, so the worker can
    /// charge the same interval to the request's budget.
    pub fn begin_attempt(&self, ctx: RequestCtx) -> Duration {
        let now = self.clock().now();
        self.trace.set_request_ctx(Some(ctx));
        self.trace.event(
            now,
            EventKind::Farm {
                action: actions::ATTEMPT_START.into(),
                request: ctx.request,
                machine: self.id,
            },
        );
        now
    }

    /// Closes the current attempt window: emits the `attempt_end` marker
    /// (still stamped with the request context) and clears the context, so
    /// later machine-scoped activity (probes, idling) is not mis-charged.
    /// Returns the closing clock reading.
    pub fn end_attempt(&self, request: u64) -> Duration {
        let now = self.clock().now();
        self.trace.event(
            now,
            EventKind::Farm {
                action: actions::ATTEMPT_END.into(),
                request,
                machine: self.id,
            },
        );
        self.trace.set_request_ctx(None);
        now
    }

    /// Charges a between-attempt retry backoff to this shard's clock and
    /// to the open request context under
    /// [`categories::RETRY_BACKOFF`]. Must be called inside the attempt
    /// window (before [`Shard::end_attempt`]) so the wait stays inside the
    /// request's attributed wall time.
    pub fn charge_retry_backoff(&self, wait: Duration) {
        let clock = self.clock();
        clock.advance(wait);
        self.trace
            .charge(clock.now(), categories::RETRY_BACKOFF, wait);
    }

    /// Arms a fault injector on the platform.
    pub fn arm(&mut self, injector: FaultInjector) {
        self.os.machine_mut().set_fault_injector(injector);
    }

    /// Disarms fault injection.
    pub fn disarm(&mut self) {
        self.os.machine_mut().clear_fault_injector();
    }

    /// Whether the platform is currently dead from an injected power cut.
    pub fn power_lost(&self) -> bool {
        self.os.machine().power_lost()
    }

    /// Brings a power-lost platform back up (RAM gone, NV/keys persist).
    pub fn reboot(&mut self) {
        self.os.reboot_after_power_loss();
    }

    /// Drops the machine's §7.6 warm-path state (parked auth session,
    /// measurement and seal memos). The farm calls this when the breaker
    /// quarantines a shard: a machine sick enough to quarantine cannot be
    /// trusted to still hold live TPM session state, and probes must earn
    /// re-admission from a cold start.
    pub fn invalidate_warm(&mut self) {
        self.os.machine_mut().invalidate_warm();
    }

    /// Auth sessions currently live in this shard's TPM session table.
    /// With the warm path on, a healthy machine parks at most one reusable
    /// session between commands, so the farm-wide total stays bounded by
    /// the machine count.
    pub fn open_session_count(&self) -> usize {
        self.os.machine().tpm().open_session_count()
    }

    /// Runs one attempt of `app` on this shard. `Ok(())` only for a fully
    /// correct protocol run; the error string otherwise. A panic anywhere
    /// in the protocol stack is converted into an error — a farm worker
    /// must survive anything a workload does.
    pub fn run_attempt(&mut self, app: AppKind, seed: u64) -> Result<(), String> {
        let trial = catch_unwind(AssertUnwindSafe(|| match app {
            AppKind::Rootkit => self.rootkit(seed),
            AppKind::Ssh => self.ssh(seed),
            AppKind::Distcomp => self.distcomp(),
            AppKind::Ca => self.ca(seed),
            AppKind::Storage => self.storage(),
        }));
        let result = match trial {
            Ok(r) => r,
            Err(_) => Err("panic during attempt".into()),
        };
        match &result {
            Ok(()) if self.power_lost() => {
                // Never report success on a machine that died under the
                // protocol (same contract as the sweep's classifier).
                self.failures += 1;
                Err("protocol claimed success on a dead machine".into())
            }
            Ok(()) => {
                self.completed += 1;
                result
            }
            Err(_) => {
                self.failures += 1;
                result
            }
        }
    }

    /// Disarmed probe session for re-admission: the trivial bytecode PAL
    /// must run end-to-end and produce its known output.
    pub fn probe(&mut self) -> Result<(), String> {
        if self.power_lost() {
            self.reboot();
        }
        let slb = SlbImage::build(
            PalPayload::Bytecode(flicker_palvm::progs::hello_world()),
            SlbOptions::default(),
        )
        .map_err(|e| e.to_string())?;
        let rec = run_session(&mut self.os, &slb, &SessionParams::default())
            .map_err(|e| e.to_string())?;
        rec.pal_result.clone().map_err(|e| format!("pal: {e}"))?;
        if rec.outputs != b"Hello, world" {
            return Err("probe outputs wrong".into());
        }
        Ok(())
    }

    /// A verifier link seeded per request, wired to this shard's clock,
    /// trace, and (if armed) injector. Fresh per attempt, as in the sweep:
    /// the protocol objects consume the link.
    fn link(&self, seed: u64) -> NetLink {
        let mut link = NetLink::paper_verifier_link(seed);
        link.set_clock(self.os.clock());
        link.set_tracer(self.trace.clone());
        if let Some(inj) = self.os.machine().fault_injector() {
            link.set_fault_injector(inj.clone());
        }
        link
    }

    // ----- the five §6 workloads (sweep-equivalent, self-contained) -------

    fn rootkit(&mut self, seed: u64) -> Result<(), String> {
        let known_good = known_good_hash(&self.os);
        let link = self.link(seed);
        let mut admin = Administrator::new(self.ca_public.clone(), known_good, link);
        let report = if seed.is_multiple_of(2) {
            admin.query(&mut self.os, &self.cert)
        } else {
            admin.query_bytecode(&mut self.os, &self.cert)
        }
        .map_err(|e| e.to_string())?;
        if !report.clean {
            return Err("pristine kernel reported compromised".into());
        }
        Ok(())
    }

    fn ssh(&mut self, seed: u64) -> Result<(), String> {
        let mut link = self.link(seed);
        let mut server = SshServer::new(vec![PasswdEntry::new(
            "alice",
            FARM_SSH_PASSWORD,
            b"fl1ck3r",
        )]);
        let mut client = SshClient::new(self.ca_public.clone());
        let attestation_nonce = [0x55; 20];
        let transcript = server
            .connection_setup(&mut self.os, &mut link, attestation_nonce)
            .map_err(|e| e.to_string())?;
        client
            .verify_setup(&self.cert, &transcript)
            .map_err(|e| e.to_string())?;
        let nonce = server.issue_nonce();
        let mut rng = XorShiftRng::new(seed.wrapping_add(4_000));
        let ciphertext = client
            .encrypt_password(FARM_SSH_PASSWORD, &nonce, &mut rng)
            .map_err(|e| e.to_string())?;
        let outcome = server
            .login(&mut self.os, &mut link, "alice", &ciphertext, nonce)
            .map_err(|e| e.to_string())?;
        if !outcome.accepted {
            return Err("correct password rejected".into());
        }
        Ok(())
    }

    fn distcomp(&mut self) -> Result<(), String> {
        let unit = WorkUnit {
            n: 91,
            lo: 2,
            hi: 64,
        };
        let (mut client, _) = BoincClient::start(&mut self.os, unit).map_err(|e| e.to_string())?;
        client
            .run_slice(&mut self.os, Duration::from_millis(50))
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    fn ca(&mut self, seed: u64) -> Result<(), String> {
        let policy = IssuancePolicy {
            allowed_suffixes: vec![".corp.example".into()],
            max_certificates: 8,
        };
        let (mut ca, _) = FlickerCa::init(&mut self.os, policy).map_err(|e| e.to_string())?;
        let mut rng = XorShiftRng::new(seed.wrapping_add(5_000));
        let (subject_key, _) = RsaPrivateKey::generate(512, &mut rng);
        let csr = Csr {
            subject: "farm.corp.example".into(),
            public_key: subject_key.public_key().clone(),
        };
        let report = ca.sign(&mut self.os, &csr).map_err(|e| e.to_string())?;
        report
            .certificate
            .verify(&ca.public_key)
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    fn storage(&mut self) -> Result<(), String> {
        // Init redefines the NV space, so the chain is idempotent: a retry
        // after a mid-chain fault restarts cleanly, and many storage
        // requests can share one machine.
        let blob1 = self.storage_session(
            StoreAction::Init {
                data: b"state-v1".to_vec(),
            },
            Vec::new(),
        )?;
        let blob2 = self.storage_session(
            StoreAction::Update {
                data: b"state-v2".to_vec(),
            },
            blob1,
        )?;
        let out = self.storage_session(StoreAction::Read, blob2)?;
        if out != b"state-v2" {
            return Err("read returned wrong data".into());
        }
        Ok(())
    }

    fn storage_session(&mut self, action: StoreAction, inputs: Vec<u8>) -> Result<Vec<u8>, String> {
        let slb = SlbImage::build(
            PalPayload::Native {
                identity: b"farm-storage-pal".to_vec(),
                program: Arc::new(StoragePal { action }),
            },
            SlbOptions::default(),
        )
        .map_err(|e| e.to_string())?;
        let rec = run_session(&mut self.os, &slb, &SessionParams::with_inputs(inputs))
            .map_err(|e| e.to_string())?;
        rec.pal_result.clone().map_err(|e| format!("pal: {e}"))?;
        Ok(rec.outputs)
    }
}

enum StoreAction {
    Init { data: Vec<u8> },
    Update { data: Vec<u8> },
    Read,
}

struct StoragePal {
    action: StoreAction,
}

impl NativePal for StoragePal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let store = ReplayProtectedStorage::new(FARM_NV_INDEX);
        match &self.action {
            StoreAction::Init { data } => {
                store.setup(ctx, &[0u8; 20])?;
                let blob = store.seal(ctx, data)?;
                ctx.write_output(blob.as_bytes())
            }
            StoreAction::Update { data } => {
                let old = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let _ = store.unseal(ctx, &old)?;
                let blob = store.seal(ctx, data)?;
                ctx.write_output(blob.as_bytes())
            }
            StoreAction::Read => {
                let blob = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let data = store.unseal(ctx, &blob)?;
                ctx.write_output(&data)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Shard>();
    }

    #[test]
    fn every_workload_succeeds_unfaulted() {
        let mut shard = Shard::new(0, 1000);
        for (i, app) in AppKind::ALL.into_iter().enumerate() {
            shard
                .run_attempt(app, 1000 + i as u64)
                .unwrap_or_else(|e| panic!("{} failed clean: {e}", app.name()));
        }
        assert_eq!(shard.completed, 5);
        assert_eq!(shard.failures, 0);
    }

    #[test]
    fn probe_succeeds_on_healthy_shard() {
        let mut shard = Shard::new(1, 2000);
        shard.probe().expect("probe on healthy shard");
    }

    #[test]
    fn shards_have_independent_clocks() {
        let a = Shard::new(0, 1);
        let b = Shard::new(1, 1);
        let b_before = b.clock().now();
        a.clock().advance(Duration::from_secs(5));
        assert_eq!(b.clock().now(), b_before, "b's clock must not move");
    }
}
