//! The farm: a supervised, sharded pool of Flicker machines behind a
//! deadline-aware work queue.
//!
//! The paper's §7.4–7.5 observe that Flicker monopolizes the platform — a
//! session freezes the whole machine, so attestation throughput comes from
//! *many* machines, not faster ones. This module builds that service layer
//! over the simulated substrate:
//!
//! * **Admission control** — a bounded queue; submissions past the bound
//!   are shed immediately (graceful degradation beats unbounded latency).
//! * **Per-machine workers** — each worker thread owns one [`Shard`]
//!   outright (machine, TPM, OS, clock, flight recorder) and drives
//!   sessions to completion.
//! * **Retries** — a retryable failure schedules another attempt after a
//!   [`RetryPolicy`] backoff with deterministic jitter, charged to the
//!   shard's virtual clock.
//! * **Deadlines** — each request carries a total virtual-time budget
//!   across all attempts; exhausting it cancels further retries
//!   (terminal [`Terminal::TimedOut`]).
//! * **Quarantine** — repeated consecutive failures trip the shard's
//!   circuit breaker: its in-flight request is re-queued (exactly once per
//!   quarantine, attempts preserved) and the machine earns re-admission
//!   through probe sessions.
//!
//! Every decision — enqueue, shed, admit, run, retry, requeue, quarantine,
//! probe, readmit, and each terminal — is emitted as an
//! [`EventKind::Farm`] flight-recorder event on the coordinator trace.
//! Coordinator events are stamped with *wall time since farm start* (there
//! is no farm-wide virtual clock; each shard keeps its own virtual time),
//! which makes queue wait directly measurable from `enqueued → admitted`
//! deltas. At every scheduling decision that touches a shard the
//! coordinator also emits an [`EventKind::Anchor`] pairing its wall stamp
//! with the shard's virtual-clock reading; the attribution layer
//! ([`flicker_trace::attribution::merge_timeline`]) uses those pairs to
//! align all per-shard streams onto one farm-wide axis.
//!
//! Request-scoped tracing: the worker installs a
//! [`flicker_trace::RequestCtx`] (trace id = request id, plus the attempt
//! number) on the shard's trace for the whole attempt window — including
//! the crash-reboot recovery and the between-attempt retry backoff — so
//! every substrate event, span, and `Charge` the attempt produces carries
//! the owning request's id. Requeued-after-quarantine work keeps its
//! original trace id; only the attempt number advances.

use crate::health::CircuitBreaker;
use crate::request::{actions, RequestOutcome, RequestSpec, Terminal, NO_MACHINE, NO_REQUEST};
use crate::shard::Shard;
use flicker_faults::FaultInjector;
use flicker_machine::RetryPolicy;
use flicker_trace::attribution::{self, FarmAttribution, RequestMeta, ShardStream};
use flicker_trace::{audit, EventKind, RequestCtx, Trace};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Farm sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Machines (= worker threads = shards).
    pub machines: usize,
    /// Admission bound: submissions finding this many requests already
    /// queued are shed.
    pub queue_bound: usize,
    /// Session-level retry policy (backoff waits are charged to the
    /// serving shard's virtual clock, with deterministic jitter).
    pub retry: RetryPolicy,
    /// Per-request virtual-time budget across all attempts and waits.
    pub deadline: Duration,
    /// Consecutive failures that quarantine a machine.
    pub quarantine_after: u32,
    /// Virtual wait a quarantined machine charges before each probe.
    pub probe_backoff: Duration,
    /// Probes before a machine gives up and retires (its queue work is
    /// already safe — requeued at quarantine time).
    pub max_probes: u32,
    /// Base seed for shard construction (kernel images, AIK provisioning).
    pub base_seed: u64,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            machines: 8,
            queue_bound: 256,
            retry: RetryPolicy::new(3, Duration::from_millis(5), 2, Duration::from_millis(40))
                .with_jitter_pct(20),
            deadline: Duration::from_secs(30),
            quarantine_after: 3,
            probe_backoff: Duration::from_millis(50),
            max_probes: 8,
            base_seed: 0xFA_12,
        }
    }
}

impl FarmConfig {
    /// A small farm for unit tests.
    pub fn fast_for_tests(machines: usize) -> Self {
        FarmConfig {
            machines,
            queue_bound: 32,
            ..FarmConfig::default()
        }
    }
}

/// A request travelling through the farm.
struct Pending {
    id: u64,
    spec: RequestSpec,
    /// Attempts already executed.
    attempts: u32,
    /// Virtual time consumed so far (attempts + backoff waits, summed
    /// across every shard that has held this request).
    consumed: Duration,
    /// Times a quarantine pushed this request back to the queue.
    requeues: u32,
    /// The armed injector, created at the first attempt and carried across
    /// requeues so one-shot fault gates are never re-armed.
    injector: Option<FaultInjector>,
    /// Last error message (becomes the `Failed` terminal's payload).
    last_error: String,
}

struct QueueState {
    queue: VecDeque<Pending>,
    /// Requests popped but not yet terminal (a quarantine may still
    /// requeue them) — workers only exit when queue AND in-flight are
    /// empty under drain.
    in_flight: usize,
    draining: bool,
    outcomes: Vec<RequestOutcome>,
    submitted: u64,
}

struct Inner {
    state: Mutex<QueueState>,
    cv: Condvar,
    coordinator: Trace,
    /// Wall-clock epoch: coordinator events are stamped with the elapsed
    /// time since this instant.
    started: Instant,
    config: FarmConfig,
}

impl Inner {
    /// Emits a farm lifecycle event, stamped with wall time since farm
    /// start (the coordinator is the only farm-wide clock; shard events
    /// stay on their own virtual clocks and are aligned through anchors).
    fn emit(&self, action: &str, request: u64, machine: u64) {
        self.coordinator.event(
            self.started.elapsed(),
            EventKind::Farm {
                action: action.to_string(),
                request,
                machine,
            },
        );
    }

    /// Emits a clock-alignment anchor: the coordinator's wall stamp paired
    /// with `machine`'s virtual-clock reading at the same scheduling
    /// decision. Timeline merging maps a shard event at virtual time `at`
    /// to `anchor.wall + (at − anchor.shard_ns)` using the latest anchor
    /// with `shard_ns ≤ at`.
    fn anchor(&self, machine: u64, shard_now: Duration) {
        self.coordinator.event(
            self.started.elapsed(),
            EventKind::Anchor {
                machine,
                shard_ns: u64::try_from(shard_now.as_nanos()).unwrap_or(u64::MAX),
            },
        );
    }

    /// Records a terminal state for `p` and releases its in-flight slot.
    /// `shard_now` is the serving shard's clock at the decision (anchored
    /// so the terminal is placeable on the merged timeline).
    fn finish(&self, p: Pending, terminal: Terminal, machine: u64, shard_now: Duration) {
        self.emit(terminal.action(), p.id, machine);
        self.anchor(machine, shard_now);
        let outcome = RequestOutcome {
            id: p.id,
            app: p.spec.app.name(),
            seed: p.spec.seed,
            terminal,
            attempts: p.attempts,
            requeues: p.requeues,
            machine,
            latency: p.consumed,
        };
        let mut st = self.state.lock().expect("farm state poisoned");
        st.outcomes.push(outcome);
        st.in_flight -= 1;
        // Wake everyone: the drain-exit condition depends on in_flight.
        self.cv.notify_all();
    }
}

/// Whether a submission was accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// Queued; the id will reach a non-shed terminal state.
    Admitted(u64),
    /// Rejected at admission; the id's terminal state is already recorded
    /// as [`Terminal::Shed`].
    Shed(u64),
}

impl Submitted {
    /// The request id either way.
    pub fn id(&self) -> u64 {
        match *self {
            Submitted::Admitted(id) | Submitted::Shed(id) => id,
        }
    }
}

/// One machine's service record, returned by its worker at shutdown.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Shard id.
    pub id: u64,
    /// Sessions completed successfully.
    pub completed: u64,
    /// Attempts that failed.
    pub failures: u64,
    /// Times the breaker opened.
    pub quarantines: u64,
    /// Probe sessions run.
    pub probes: u64,
    /// True if the shard exhausted `max_probes` and stopped serving.
    pub retired: bool,
    /// Auth sessions still live in the shard's TPM session table at
    /// shutdown. A healthy warm-path machine parks at most one, so the
    /// farm-wide sum stays ≤ the machine count (§7.6 leak bound).
    pub open_sessions: usize,
    /// The shard's flight record (auditable independently).
    pub trace: Trace,
    /// The shard's final virtual time.
    pub virtual_time: Duration,
}

/// Aggregate results of a farm run.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Every request's outcome, sorted by id.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-machine service records.
    pub shards: Vec<ShardSummary>,
    /// Total requests submitted (admitted + shed).
    pub submitted: u64,
    /// The attempt bound the farm enforced (`1 + max_retries`).
    pub max_attempts: u32,
    /// The coordinator's farm-event trace.
    pub coordinator: Trace,
}

impl FarmReport {
    /// Outcomes matching a terminal predicate.
    fn count(&self, f: impl Fn(&Terminal) -> bool) -> usize {
        self.outcomes.iter().filter(|o| f(&o.terminal)).count()
    }

    /// Requests that completed correctly.
    pub fn done(&self) -> usize {
        self.count(|t| matches!(t, Terminal::Done))
    }

    /// Requests that exhausted retries.
    pub fn failed(&self) -> usize {
        self.count(|t| matches!(t, Terminal::Failed(_)))
    }

    /// Requests shed at admission.
    pub fn shed(&self) -> usize {
        self.count(|t| matches!(t, Terminal::Shed))
    }

    /// Requests whose budget expired.
    pub fn timed_out(&self) -> usize {
        self.count(|t| matches!(t, Terminal::TimedOut))
    }

    /// Total retry attempts (attempts beyond each request's first).
    pub fn retries(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| u64::from(o.attempts.saturating_sub(1)))
            .sum()
    }

    /// Total quarantine requeues.
    pub fn requeues(&self) -> u64 {
        self.outcomes.iter().map(|o| u64::from(o.requeues)).sum()
    }

    /// Total machine quarantines.
    pub fn quarantines(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantines).sum()
    }

    /// Auth sessions still live across all shards at shutdown. Anything
    /// beyond one parked session per machine is a leak (the bug this
    /// bound regression-tests: one-shot auths that never closed their
    /// OIAP session and grew the table without limit).
    pub fn open_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.open_sessions).sum()
    }

    /// The farm's conservation law: every submitted id reached **exactly
    /// one** terminal state (none lost, none duplicated), within the
    /// attempt bound, and shed requests never ran.
    pub fn verify_conservation(&self) -> Result<(), String> {
        if self.outcomes.len() as u64 != self.submitted {
            return Err(format!(
                "{} submitted but {} terminal outcomes",
                self.submitted,
                self.outcomes.len()
            ));
        }
        for (i, o) in self.outcomes.iter().enumerate() {
            if o.id != i as u64 {
                return Err(format!(
                    "request {} lost or duplicated (slot {i} holds id {})",
                    i, o.id
                ));
            }
            if o.attempts > self.max_attempts {
                return Err(format!(
                    "request {} ran {} attempts (bound {})",
                    o.id, o.attempts, self.max_attempts
                ));
            }
            if matches!(o.terminal, Terminal::Shed) && o.attempts != 0 {
                return Err(format!("shed request {} ran {} attempts", o.id, o.attempts));
            }
        }
        Ok(())
    }

    /// The per-shard flight records as attribution input streams.
    pub fn shard_streams(&self) -> Vec<ShardStream> {
        self.shards
            .iter()
            .map(|s| ShardStream {
                machine: s.id,
                events: s.trace.events(),
            })
            .collect()
    }

    /// Request → workload metadata for SLO evaluation.
    pub fn request_meta(&self) -> Vec<RequestMeta> {
        self.outcomes
            .iter()
            .map(|o| RequestMeta {
                request: o.id,
                workload: o.app.to_string(),
            })
            .collect()
    }

    /// Folds the coordinator and shard streams into per-request latency
    /// attributions (queue wait + per-attempt category breakdowns).
    pub fn attribution(&self) -> FarmAttribution {
        attribution::attribute(&self.coordinator.events(), &self.shard_streams())
    }

    /// Replays every shard's flight record through the paper-invariant
    /// auditor; returns all findings (empty = every shard audit-clean on a
    /// *complete* stream). Shards are audited independently — each trace
    /// is one platform's Figure-2 timeline. A truncated stream (ring-
    /// buffer evictions) is a finding even when the surviving suffix
    /// replays clean: an `Inconclusive` verdict proves nothing about the
    /// full execution and must never pass for clean.
    pub fn audit_shards(&self) -> Vec<String> {
        let mut findings = Vec::new();
        for shard in &self.shards {
            let verdict = audit::audit_trace(&shard.trace);
            for v in verdict.violations() {
                findings.push(format!("machine {}: {v}", shard.id));
            }
            if verdict.dropped_events() > 0 {
                findings.push(format!(
                    "machine {}: audit inconclusive — {} event(s) dropped from \
                     the ring buffer before the audit",
                    shard.id,
                    verdict.dropped_events()
                ));
            }
        }
        findings
    }
}

/// The running farm: submit requests, then [`Farm::shutdown`] to drain and
/// collect the report.
pub struct Farm {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<ShardSummary>>,
}

impl Farm {
    /// Boots `config.machines` shards (each on its own worker thread,
    /// provisioning in parallel) and starts serving.
    pub fn start(config: FarmConfig) -> Self {
        assert!(config.machines > 0, "a farm needs at least one machine");
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                in_flight: 0,
                draining: false,
                outcomes: Vec::new(),
                submitted: 0,
            }),
            cv: Condvar::new(),
            coordinator: Trace::new(),
            started: Instant::now(),
            config: config.clone(),
        });
        let workers = (0..config.machines as u64)
            .map(|id| {
                let inner = Arc::clone(&inner);
                let base_seed = config.base_seed;
                let quarantine_after = config.quarantine_after;
                std::thread::spawn(move || {
                    let mut shard = Shard::new(id, base_seed);
                    shard.breaker = CircuitBreaker::new(quarantine_after);
                    worker_loop(&inner, shard)
                })
            })
            .collect();
        Farm { inner, workers }
    }

    /// Admission control: queues the request, or sheds it (recording the
    /// terminal outcome immediately) when the queue is at its bound.
    pub fn submit(&self, spec: RequestSpec) -> Submitted {
        let mut st = self.inner.state.lock().expect("farm state poisoned");
        let id = st.submitted;
        st.submitted += 1;
        if st.queue.len() >= self.inner.config.queue_bound {
            let outcome = RequestOutcome {
                id,
                app: spec.app.name(),
                seed: spec.seed,
                terminal: Terminal::Shed,
                attempts: 0,
                requeues: 0,
                machine: NO_MACHINE,
                latency: Duration::ZERO,
            };
            st.outcomes.push(outcome);
            drop(st);
            self.inner.emit(actions::SHED, id, NO_MACHINE);
            return Submitted::Shed(id);
        }
        st.queue.push_back(Pending {
            id,
            spec,
            attempts: 0,
            consumed: Duration::ZERO,
            requeues: 0,
            injector: None,
            last_error: String::new(),
        });
        drop(st);
        self.inner.emit(actions::ENQUEUED, id, NO_MACHINE);
        self.inner.cv.notify_one();
        Submitted::Admitted(id)
    }

    /// Current queue depth (observability; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("farm state poisoned")
            .queue
            .len()
    }

    /// The coordinator's farm-event trace handle.
    pub fn coordinator_trace(&self) -> Trace {
        self.inner.coordinator.clone()
    }

    /// Drains the queue (every admitted request reaches a terminal state),
    /// stops the workers, and returns the full report.
    pub fn shutdown(self) -> FarmReport {
        {
            let mut st = self.inner.state.lock().expect("farm state poisoned");
            st.draining = true;
        }
        self.inner.cv.notify_all();
        let mut shards: Vec<ShardSummary> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("farm worker panicked"))
            .collect();
        shards.sort_by_key(|s| s.id);
        let mut st = self.inner.state.lock().expect("farm state poisoned");
        let mut outcomes = std::mem::take(&mut st.outcomes);
        outcomes.sort_by_key(|o| o.id);
        let submitted = st.submitted;
        drop(st);
        FarmReport {
            outcomes,
            shards,
            submitted,
            max_attempts: self.inner.config.retry.max_attempts(),
            coordinator: self.inner.coordinator.clone(),
        }
    }
}

/// One worker: claim → attempt loop → terminal / requeue, until drained.
fn worker_loop(inner: &Inner, mut shard: Shard) -> ShardSummary {
    let policy = inner.config.retry.clone();
    let mut retired = false;
    'serve: while !retired {
        // ----- claim -----------------------------------------------------
        let mut p = {
            let mut st = inner.state.lock().expect("farm state poisoned");
            loop {
                if let Some(p) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break p;
                }
                if st.draining && st.in_flight == 0 {
                    break 'serve;
                }
                st = inner.cv.wait(st).expect("farm state poisoned");
            }
        };
        inner.emit(actions::ADMITTED, p.id, shard.id());
        inner.anchor(shard.id(), shard.clock().now());

        // ----- attempt loop (same shard until terminal or quarantine) ----
        loop {
            if p.consumed >= inner.config.deadline {
                let (id, now) = (shard.id(), shard.clock().now());
                inner.finish(p, Terminal::TimedOut, id, now);
                continue 'serve;
            }
            // Arm the request's injector: created once, carried across
            // requeues so consumed one-shot gates stay consumed.
            let inj = p
                .injector
                .get_or_insert_with(|| FaultInjector::new(&p.spec.faults))
                .clone();
            shard.arm(inj);
            inner.emit(actions::RUNNING, p.id, shard.id());
            // Open the attempt window: from here until `end_attempt`,
            // every event the substrate records (including crash-reboot
            // recovery and the retry backoff) carries this request's
            // trace id and attempt number.
            let start = shard.begin_attempt(RequestCtx {
                request: p.id,
                attempt: p.attempts + 1,
            });
            let result = shard.run_attempt(p.spec.app, p.spec.seed);
            p.attempts += 1;
            p.consumed += shard.clock().now().saturating_sub(start);
            shard.disarm();
            match result {
                Ok(()) => {
                    shard.breaker.record_success();
                    let end = shard.end_attempt(p.id);
                    let id = shard.id();
                    inner.finish(p, Terminal::Done, id, end);
                    continue 'serve;
                }
                Err(msg) => {
                    if shard.power_lost() {
                        // The cut landed outside a session (in-session
                        // losses reboot via the resume guard).
                        shard.reboot();
                    }
                    p.last_error = msg;
                    let tripped = shard.breaker.record_failure();
                    if tripped {
                        let end = shard.end_attempt(p.id);
                        inner.emit(actions::QUARANTINE, p.id, shard.id());
                        // A quarantined machine forfeits its warm-path
                        // state: parked auth sessions and memoized seals
                        // on a sick machine must not survive into the
                        // probe/re-admission cycle (§7.6 invalidation on
                        // quarantine, alongside reboot and power loss).
                        shard.invalidate_warm();
                        if p.attempts >= policy.max_attempts() {
                            // Terminal anyway: record it rather than
                            // requeueing a request with no attempts left.
                            let (id, err) = (shard.id(), p.last_error.clone());
                            inner.finish(p, Terminal::Failed(err), id, end);
                        } else {
                            // The quarantined machine's in-flight work is
                            // re-queued exactly once, attempts preserved —
                            // and so is its trace id: the next attempt
                            // continues the same request's span tree.
                            p.requeues += 1;
                            inner.emit(actions::REQUEUED, p.id, shard.id());
                            inner.anchor(shard.id(), end);
                            let mut st = inner.state.lock().expect("farm state poisoned");
                            st.queue.push_back(p);
                            st.in_flight -= 1;
                            drop(st);
                            inner.cv.notify_all();
                        }
                        retired = !probe_until_readmitted(inner, &mut shard);
                        continue 'serve;
                    }
                    if p.attempts >= policy.max_attempts() {
                        let end = shard.end_attempt(p.id);
                        let (id, err) = (shard.id(), p.last_error.clone());
                        inner.finish(p, Terminal::Failed(err), id, end);
                        continue 'serve;
                    }
                    // Deterministic jittered backoff, charged to this
                    // shard's virtual clock; the deadline bounds the wait.
                    let wait = policy
                        .backoff_jittered(p.attempts - 1, p.spec.seed ^ p.id)
                        .expect("attempts < max_attempts implies a backoff");
                    if p.consumed + wait >= inner.config.deadline {
                        let end = shard.end_attempt(p.id);
                        let id = shard.id();
                        inner.finish(p, Terminal::TimedOut, id, end);
                        continue 'serve;
                    }
                    // Charged inside the attempt window so the request's
                    // attributed wall time covers the wait.
                    shard.charge_retry_backoff(wait);
                    p.consumed += wait;
                    shard.end_attempt(p.id);
                    inner.emit(actions::RETRY, p.id, shard.id());
                }
            }
        }
    }
    ShardSummary {
        id: shard.id(),
        completed: shard.completed,
        failures: shard.failures,
        quarantines: shard.breaker.quarantines(),
        probes: shard.breaker.probes(),
        retired,
        open_sessions: shard.open_session_count(),
        virtual_time: shard.clock().now(),
        trace: shard.trace().clone(),
    }
}

/// Half-open probing: charge a backoff, run the trivial probe session,
/// close the breaker on success. Returns `false` when `max_probes` is
/// exhausted (the shard retires).
fn probe_until_readmitted(inner: &Inner, shard: &mut Shard) -> bool {
    for _ in 0..inner.config.max_probes {
        shard.clock().advance(inner.config.probe_backoff);
        shard.breaker.begin_probe();
        inner.emit(actions::PROBE, NO_REQUEST, shard.id());
        let ok = shard.probe().is_ok();
        shard.breaker.probe_result(ok);
        if ok {
            inner.emit(actions::READMITTED, NO_REQUEST, shard.id());
            // Probes advanced the shard's clock off-timeline; re-anchor it
            // before the machine starts serving again.
            inner.anchor(shard.id(), shard.clock().now());
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AppKind;
    use flicker_faults::{Fault, FaultPlan};

    fn friendly(app: AppKind, seed: u64) -> RequestSpec {
        RequestSpec {
            app,
            seed,
            faults: FaultPlan::none(),
        }
    }

    #[test]
    fn friendly_farm_completes_every_request() {
        let farm = Farm::start(FarmConfig::fast_for_tests(2));
        for (i, app) in AppKind::ALL.iter().enumerate() {
            assert!(matches!(
                farm.submit(friendly(*app, i as u64)),
                Submitted::Admitted(_)
            ));
        }
        let report = farm.shutdown();
        assert_eq!(report.submitted, 5);
        assert_eq!(report.done(), 5, "outcomes: {:?}", report.outcomes);
        report.verify_conservation().expect("conservation");
        assert!(report.audit_shards().is_empty());
        // Every request leaves an enqueued and a done farm event.
        let events = report.coordinator.events();
        for id in 0..5u64 {
            let of = |action: &str| {
                events
                    .iter()
                    .filter(|e| {
                        matches!(&e.kind, EventKind::Farm { action: a, request, .. }
                            if a == action && *request == id)
                    })
                    .count()
            };
            assert_eq!(of(actions::ENQUEUED), 1);
            assert_eq!(of(actions::DONE), 1);
        }
    }

    #[test]
    fn zero_bound_sheds_everything() {
        let mut config = FarmConfig::fast_for_tests(1);
        config.queue_bound = 0;
        let farm = Farm::start(config);
        for seed in 0..4 {
            assert!(matches!(
                farm.submit(friendly(AppKind::Distcomp, seed)),
                Submitted::Shed(_)
            ));
        }
        let report = farm.shutdown();
        assert_eq!(report.shed(), 4);
        report
            .verify_conservation()
            .expect("shed requests still conserved");
        assert!(report.outcomes.iter().all(|o| o.attempts == 0));
        assert!(report.outcomes.iter().all(|o| o.machine == NO_MACHINE));
    }

    #[test]
    fn power_loss_is_retried_on_the_same_machine() {
        let mut config = FarmConfig::fast_for_tests(1);
        config.quarantine_after = 10; // keep the breaker out of the way
        let farm = Farm::start(config);
        let spec = RequestSpec {
            app: AppKind::Distcomp,
            seed: 7,
            faults: FaultPlan::one(Fault::PowerLossAfter {
                after: Duration::from_micros(50),
            }),
        };
        farm.submit(spec);
        let report = farm.shutdown();
        assert_eq!(report.done(), 1, "outcomes: {:?}", report.outcomes);
        let o = &report.outcomes[0];
        assert!(o.attempts >= 2, "power cut must cost at least one retry");
        assert_eq!(o.requeues, 0);
        assert_eq!(o.machine, 0);
        assert_eq!(report.retries(), u64::from(o.attempts) - 1);
        report.verify_conservation().expect("conservation");
        assert!(
            report.audit_shards().is_empty(),
            "{:?}",
            report.audit_shards()
        );
    }

    /// The §7.6 leak bound, end to end: 200 requests through a small farm
    /// must leave at most one parked auth session per machine. Before the
    /// session-table fix, every seal/unseal retry closure opened a fresh
    /// OIAP session and never closed it, so a run like this grew the
    /// table monotonically.
    #[test]
    fn two_hundred_requests_leave_sessions_bounded_by_machines() {
        let machines = 4;
        let mut config = FarmConfig::fast_for_tests(machines);
        config.queue_bound = 256;
        let farm = Farm::start(config);
        for i in 0..200u64 {
            let app = AppKind::ALL[(i % AppKind::ALL.len() as u64) as usize];
            assert!(matches!(
                farm.submit(friendly(app, 31_000 + i)),
                Submitted::Admitted(_)
            ));
        }
        let report = farm.shutdown();
        assert_eq!(report.done(), 200, "failed: {:?}", report.failed());
        report.verify_conservation().expect("conservation");
        assert!(
            report.audit_shards().is_empty(),
            "{:?}",
            report.audit_shards()
        );
        for s in &report.shards {
            assert!(
                s.open_sessions <= 1,
                "machine {} holds {} live sessions after the run (warm \
                 parking allows exactly one)",
                s.id,
                s.open_sessions
            );
        }
        assert!(
            report.open_sessions() <= machines,
            "{} live sessions across {machines} machines",
            report.open_sessions()
        );
    }

    /// Farm recovery with an auth session open across a power cut: the
    /// first SSH request parks a warm session, the cut kills the platform
    /// mid-protocol, and the rebooted machine must serve the retry with
    /// fresh handles (monotonic allocation means the stale parked handle
    /// can never be re-issued to collide with post-reboot state).
    #[test]
    fn session_open_across_power_loss_recovers() {
        let mut config = FarmConfig::fast_for_tests(1);
        config.quarantine_after = 10; // keep the breaker out of the way
        let farm = Farm::start(config);
        // Warm the shard: a clean SSH run leaves one parked session.
        farm.submit(friendly(AppKind::Ssh, 41));
        // Then a run whose power fails mid-protocol, with the parked
        // session still live from the previous request.
        farm.submit(RequestSpec {
            app: AppKind::Ssh,
            seed: 42,
            faults: FaultPlan::one(Fault::PowerLossAfter {
                after: Duration::from_micros(50),
            }),
        });
        let report = farm.shutdown();
        assert_eq!(report.done(), 2, "outcomes: {:?}", report.outcomes);
        report.verify_conservation().expect("conservation");
        assert!(
            report.audit_shards().is_empty(),
            "{:?}",
            report.audit_shards()
        );
        assert!(
            report.shards[0].open_sessions <= 1,
            "reboot must flush pre-cut sessions, found {}",
            report.shards[0].open_sessions
        );
    }

    /// TPM busy responses inside one request are retried with a fresh odd
    /// nonce per attempt. The old code re-seeded the nonce RNG identically
    /// inside the retry closure; the TPM now rejects a repeated odd nonce
    /// outright, so this run only completes if every retry rolls.
    #[test]
    fn tpm_busy_retries_roll_fresh_nonces() {
        let mut config = FarmConfig::fast_for_tests(1);
        config.quarantine_after = 10;
        let farm = Farm::start(config);
        farm.submit(RequestSpec {
            app: AppKind::Ssh,
            seed: 43,
            faults: FaultPlan::one(Fault::TpmTransient {
                skip: 2,
                failures: 2,
            }),
        });
        let report = farm.shutdown();
        assert_eq!(report.done(), 1, "outcomes: {:?}", report.outcomes);
        assert!(
            report.audit_shards().is_empty(),
            "{:?}",
            report.audit_shards()
        );
    }
}
