//! A fault-tolerant, sharded Flicker attestation farm.
//!
//! Flicker's §7.4–7.5 make a blunt point: a session *monopolizes the
//! platform*. The CPU is halted except one core, interrupts are off, and a
//! TPM quote alone costs ~900 ms — so an attestation **service** scales by
//! running many machines, not by making one machine faster. This crate
//! builds that service over the simulated substrate:
//!
//! * [`shard`] — a self-contained machine instance (`Send`): OS, TPM,
//!   provisioned AIK, its own virtual clock and flight recorder, plus the
//!   five §6 application workloads as one-call session drivers.
//! * [`health`] — per-machine circuit breaker (closed → open → half-open)
//!   with probing re-admission.
//! * [`request`] — request specs, lifecycle action vocabulary, terminal
//!   outcomes.
//! * [`farm`] — the supervisor: bounded admission queue, per-machine
//!   workers, retry with jittered exponential backoff on virtual time,
//!   per-request deadlines, quarantine with exactly-once requeue of
//!   in-flight work, and a [`FarmReport`] whose
//!   [`verify_conservation`](FarmReport::verify_conservation) proves no
//!   request was lost or duplicated.
//!
//! The `farm_bench` binary (in `flicker-bench`) drives the farm under the
//! seeded fault injector and reports throughput, latency percentiles, and
//! the conservation invariant.

pub mod farm;
pub mod health;
pub mod request;
pub mod shard;

pub use farm::{Farm, FarmConfig, FarmReport, ShardSummary, Submitted};
pub use health::{BreakerState, CircuitBreaker};
pub use request::{AppKind, RequestOutcome, RequestSpec, Terminal, NO_MACHINE, NO_REQUEST};
pub use shard::Shard;
