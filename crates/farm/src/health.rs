//! Per-machine health tracking: a circuit breaker with probing re-admission.
//!
//! Each farm machine carries one [`CircuitBreaker`]. Attempt failures
//! accumulate; after `threshold` *consecutive* failures the breaker opens
//! and the machine is quarantined — its in-flight request goes back to the
//! queue and the worker stops taking new work. A quarantined machine earns
//! its way back by running probe sessions (half-open state): one clean
//! probe closes the breaker, a failed probe re-opens it for another round
//! of backoff. This is the standard closed → open → half-open cycle,
//! driven entirely on virtual time.

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: serving requests.
    Closed,
    /// Quarantined: not serving; waiting to probe.
    Open,
    /// Probing: one trial session decides re-admission.
    HalfOpen,
}

/// Consecutive-failure circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: u32,
    state: BreakerState,
    quarantines: u64,
    probes: u64,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive failures.
    /// `threshold` 0 is clamped to 1 (an always-tripping breaker would
    /// quarantine on the farm's very first transient fault).
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            consecutive: 0,
            state: BreakerState::Closed,
            quarantines: 0,
            probes: 0,
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Probe sessions run while half-open.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Records a successful attempt (resets the failure run).
    pub fn record_success(&mut self) {
        self.consecutive = 0;
    }

    /// Records a failed attempt. Returns `true` exactly when this failure
    /// trips the breaker open (the caller then quarantines the machine).
    pub fn record_failure(&mut self) -> bool {
        self.consecutive += 1;
        if self.state == BreakerState::Closed && self.consecutive >= self.threshold {
            self.state = BreakerState::Open;
            self.quarantines += 1;
            return true;
        }
        false
    }

    /// Moves an open breaker to half-open for one probe.
    pub fn begin_probe(&mut self) {
        debug_assert_eq!(self.state, BreakerState::Open);
        self.state = BreakerState::HalfOpen;
        self.probes += 1;
    }

    /// Resolves the half-open probe: success closes the breaker (failure
    /// run cleared), failure re-opens it for another backoff round.
    pub fn probe_result(&mut self, ok: bool) {
        debug_assert_eq!(self.state, BreakerState::HalfOpen);
        if ok {
            self.state = BreakerState::Closed;
            self.consecutive = 0;
        } else {
            self.state = BreakerState::Open;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_on_consecutive_failures() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.quarantines(), 1);
    }

    #[test]
    fn trips_exactly_once_per_quarantine() {
        let mut b = CircuitBreaker::new(1);
        assert!(b.record_failure());
        assert!(!b.record_failure(), "already open: no second trip");
        assert_eq!(b.quarantines(), 1);
    }

    #[test]
    fn probe_cycle_closes_or_reopens() {
        let mut b = CircuitBreaker::new(1);
        assert!(b.record_failure());
        b.begin_probe();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.probe_result(false);
        assert_eq!(b.state(), BreakerState::Open);
        b.begin_probe();
        b.probe_result(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.probes(), 2);
        // Re-closed breaker counts a fresh run; with threshold 1 the very
        // next failure trips a second quarantine.
        assert!(b.record_failure());
        assert_eq!(b.quarantines(), 2);
    }

    #[test]
    fn zero_threshold_clamped() {
        let mut b = CircuitBreaker::new(0);
        assert!(b.record_failure(), "clamped to 1: first failure trips");
    }
}
