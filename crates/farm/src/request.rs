//! Requests, their lifecycle vocabulary, and terminal outcomes.
//!
//! A farm request names one §6 application protocol to drive end-to-end on
//! some machine, under a seeded fault plan. Every request submitted to the
//! farm reaches **exactly one** terminal state — that conservation law is
//! what [`FarmReport::verify_conservation`](crate::FarmReport::verify_conservation)
//! checks and what the recovery tests prove under fault sweeps.

use flicker_faults::FaultPlan;
use std::time::Duration;

/// Stable action names for `EventKind::Farm` flight-recorder events, in
/// lifecycle order. Kept here (next to the state machine that emits them)
/// so the emitting code, the exporters, and any audit tooling agree on
/// spelling.
pub mod actions {
    /// Request accepted into the queue.
    pub const ENQUEUED: &str = "enqueued";
    /// Request rejected at admission (queue at its bound).
    pub const SHED: &str = "shed";
    /// A worker claimed the request from the queue.
    pub const ADMITTED: &str = "admitted";
    /// An attempt is starting on a machine.
    pub const RUNNING: &str = "running";
    /// Shard-trace marker opening an attempt window (stamped with the
    /// shard's virtual clock and the request's [`RequestCtx`]; the
    /// attribution layer measures attempt wall time between this and
    /// [`ATTEMPT_END`]).
    ///
    /// [`RequestCtx`]: flicker_trace::RequestCtx
    pub const ATTEMPT_START: &str = "attempt_start";
    /// Shard-trace marker closing an attempt window. On the retry path it
    /// is emitted *after* the between-attempt backoff, so the window spans
    /// exactly the virtual time the attempt charged to the request's
    /// budget.
    pub const ATTEMPT_END: &str = "attempt_end";
    /// An attempt failed retryably; the next attempt is scheduled.
    pub const RETRY: &str = "retry";
    /// Terminal: the protocol completed correctly.
    pub const DONE: &str = "done";
    /// Terminal: retries exhausted without success.
    pub const FAILED: &str = "failed";
    /// Terminal: the virtual-time budget ran out (no further retries).
    pub const TIMED_OUT: &str = "timed_out";
    /// In-flight work pushed back to the queue by a quarantine.
    pub const REQUEUED: &str = "requeued";
    /// A machine's circuit breaker opened.
    pub const QUARANTINE: &str = "quarantine";
    /// A quarantined machine ran a probe session.
    pub const PROBE: &str = "probe";
    /// A probe succeeded; the machine is serving again.
    pub const READMITTED: &str = "readmitted";
}

/// `machine` field value for farm events that happen at the coordinator
/// (enqueue/shed), before any machine is involved.
pub const NO_MACHINE: u64 = u64::MAX;

/// `request` field value for farm events about a machine rather than any
/// request (probe/readmitted).
pub const NO_REQUEST: u64 = u64::MAX;

/// Which §6 application protocol a request drives (the same five the
/// fault sweep rotates through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// Remote rootkit detection (kernel hash + attestation).
    Rootkit,
    /// SSH password handling with attested setup.
    Ssh,
    /// Distributed-computing work slice (BOINC-style).
    Distcomp,
    /// Certificate authority signing inside a PAL.
    Ca,
    /// Replay-protected sealed storage (init → update → read).
    Storage,
}

impl AppKind {
    /// All kinds, in the sweep's rotation order.
    pub const ALL: [AppKind; 5] = [
        AppKind::Rootkit,
        AppKind::Ssh,
        AppKind::Distcomp,
        AppKind::Ca,
        AppKind::Storage,
    ];

    /// Deterministic rotation, mirroring the fault sweep's `seed % 5`.
    pub fn from_seed(seed: u64) -> Self {
        Self::ALL[(seed % Self::ALL.len() as u64) as usize]
    }

    /// Short stable name (matches the sweep's `APPS` spelling).
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Rootkit => "rootkit",
            AppKind::Ssh => "ssh",
            AppKind::Distcomp => "distcomp",
            AppKind::Ca => "ca",
            AppKind::Storage => "storage",
        }
    }
}

/// What a client submits: the protocol to run and the fault schedule the
/// platform will be armed with for its first attempt.
#[derive(Debug, Clone)]
pub struct RequestSpec {
    /// The application protocol to drive.
    pub app: AppKind,
    /// Per-request determinism seed (nonces, keys, link latency).
    pub seed: u64,
    /// Faults armed on the serving machine when the first attempt starts.
    /// `FaultPlan::none()` for a friendly run.
    pub faults: FaultPlan,
}

impl RequestSpec {
    /// The sweep-equivalent request for `seed`: app by rotation, faults by
    /// [`FaultPlan::seeded`].
    pub fn seeded(seed: u64) -> Self {
        RequestSpec {
            app: AppKind::from_seed(seed),
            seed,
            faults: FaultPlan::seeded(seed),
        }
    }
}

/// The one terminal state every submitted request must reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminal {
    /// Protocol completed correctly.
    Done,
    /// Retries exhausted; the carried message is the last attempt's error.
    Failed(String),
    /// Rejected at admission (queue bound reached). Zero attempts ran.
    Shed,
    /// Virtual-time budget exhausted before success.
    TimedOut,
}

impl Terminal {
    /// The [`actions`] name this terminal state emits.
    pub fn action(&self) -> &'static str {
        match self {
            Terminal::Done => actions::DONE,
            Terminal::Failed(_) => actions::FAILED,
            Terminal::Shed => actions::SHED,
            Terminal::TimedOut => actions::TIMED_OUT,
        }
    }
}

/// The farm's record of one request's complete history.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Farm-wide request id (dense, in submission order).
    pub id: u64,
    /// Application name.
    pub app: &'static str,
    /// The fault-plan seed the request carried.
    pub seed: u64,
    /// How the request ended.
    pub terminal: Terminal,
    /// Attempts actually run (0 for shed requests; at most
    /// `1 + retry.max_retries` otherwise).
    pub attempts: u32,
    /// Times the request was pushed back to the queue by a quarantine.
    pub requeues: u32,
    /// Machine that produced the terminal state ([`NO_MACHINE`] for shed).
    pub machine: u64,
    /// Virtual time consumed across all attempts and backoff waits.
    pub latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_rotation_matches_sweep_order() {
        assert_eq!(AppKind::from_seed(0), AppKind::Rootkit);
        assert_eq!(AppKind::from_seed(1), AppKind::Ssh);
        assert_eq!(AppKind::from_seed(2), AppKind::Distcomp);
        assert_eq!(AppKind::from_seed(3), AppKind::Ca);
        assert_eq!(AppKind::from_seed(4), AppKind::Storage);
        assert_eq!(AppKind::from_seed(5), AppKind::Rootkit);
    }

    #[test]
    fn seeded_spec_is_deterministic() {
        let a = RequestSpec::seeded(17);
        let b = RequestSpec::seeded(17);
        assert_eq!(a.app, b.app);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn terminal_actions_are_stable() {
        assert_eq!(Terminal::Done.action(), "done");
        assert_eq!(Terminal::Failed("x".into()).action(), "failed");
        assert_eq!(Terminal::Shed.action(), "shed");
        assert_eq!(Terminal::TimedOut.action(), "timed_out");
    }
}
