//! Farm-wide latency attribution over request-scoped trace streams.
//!
//! The farm records into one [`Trace`](crate::Trace) per shard (each on its
//! own virtual clock) plus a coordinator stream stamped with wall time
//! since farm start. This module folds those streams into:
//!
//! * **Per-request critical-path breakdowns** ([`attribute`]): for every
//!   request, queue wait (from coordinator `enqueued → admitted` and
//!   `requeued → readmitted` deltas) plus per-attempt category totals from
//!   [`EventKind::Charge`] events. The substrate charges every virtual
//!   nanosecond an attempt spends on a shard to exactly one category —
//!   [`categories::CPU`], [`categories::TPM`], [`categories::NET`],
//!   [`categories::SKINIT`], [`categories::TPM_BACKOFF`] (the TPM driver's
//!   busy-wait retries), or [`categories::RETRY_BACKOFF`] (the farm
//!   worker's between-attempt backoff) — so the categories sum to the
//!   attempt wall delimited by the shard's `attempt_start`/`attempt_end`
//!   markers, and request coverage is 1.0 up to charge rounding.
//!   `warm_saved.*` charges are *estimates of avoided work* (§7.6 cache
//!   hits); they are reported separately and never count toward wall time.
//!   Per-ordinal [`EventKind::TpmCommand`] durations are a drill-down
//!   *within* the `tpm` category, not an addition to it.
//! * **A farm-wide timeline** ([`merge_timeline`]): per-shard virtual
//!   clocks are aligned to the coordinator's wall clock through
//!   [`EventKind::Anchor`] events (emitted at admission and terminal
//!   decisions, pairing the coordinator's wall stamp with the shard's
//!   clock reading). The alignment rule is `global = anchor.wall + (at −
//!   anchor.shard_ns)` using the latest anchor with `shard_ns ≤ at`,
//!   clamped monotone per shard. Shards idle between anchors, so the
//!   merged axis is approximate *between* anchor points and exact at them;
//!   attribution therefore only ever sums durations, never subtracts
//!   cross-shard timestamps.
//! * **SLO verdicts** ([`evaluate_slo`]): per-workload latency budgets,
//!   breach counting (a request breaches by missing its terminal `done`
//!   or by exceeding its budget), error-budget burn, and an outlier
//!   detector that flags requests whose wall time deviates from their
//!   workload's median by more than a factor.

use crate::{Event, EventKind, RequestCtx};
use std::collections::BTreeMap;
use std::time::Duration;

/// The named attribution categories that partition an attempt's wall time.
pub mod categories {
    /// Wall time between a request's enqueue and its (re)admission.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Simulated instruction execution (PAL bytecode, hashing, protocol
    /// glue) charged through the machine's CPU cost model.
    pub const CPU: &str = "cpu";
    /// TPM command execution (per-ordinal drill-down comes from
    /// `TpmCommand` event durations).
    pub const TPM: &str = "tpm";
    /// Network round-trip time on simulated links.
    pub const NET: &str = "net";
    /// The SKINIT instruction: SLB transfer to the TPM plus measured-launch
    /// latency (the paper's dominant fixed cost).
    pub const SKINIT: &str = "skinit";
    /// TPM driver busy-wait while the device reports busy.
    pub const TPM_BACKOFF: &str = "tpm_backoff";
    /// Farm worker backoff between failed attempts.
    pub const RETRY_BACKOFF: &str = "retry_backoff";
    /// Prefix for avoided-work estimates from §7.6 warm-path cache hits
    /// (`warm_saved.seal`, `warm_saved.oiap`). Reported separately; never
    /// part of wall time.
    pub const WARM_SAVED_PREFIX: &str = "warm_saved.";

    /// Every on-shard category (excludes `QUEUE_WAIT`, which is measured
    /// at the coordinator).
    pub const ON_SHARD: [&str; 6] = [CPU, TPM, NET, SKINIT, TPM_BACKOFF, RETRY_BACKOFF];
}

/// Farm-action names this module interprets (mirrors
/// `flicker_farm::actions`; duplicated here because `flicker-trace` sits
/// below the farm crate).
mod actions {
    pub const ENQUEUED: &str = "enqueued";
    pub const ADMITTED: &str = "admitted";
    pub const READMITTED: &str = "readmitted";
    pub const REQUEUED: &str = "requeued";
    pub const DONE: &str = "done";
    pub const ATTEMPT_START: &str = "attempt_start";
    pub const ATTEMPT_END: &str = "attempt_end";
}

/// One shard's flight record, tagged with its machine index.
#[derive(Debug, Clone)]
pub struct ShardStream {
    /// Machine/shard index (matches `Farm` event `machine` fields).
    pub machine: u64,
    /// The shard's events, oldest first, on its own virtual clock.
    pub events: Vec<Event>,
}

/// Category breakdown of one attempt (one `attempt_start`/`attempt_end`
/// window on one shard).
#[derive(Debug, Clone, Default)]
pub struct AttemptBreakdown {
    /// 1-based attempt number within the request.
    pub attempt: u32,
    /// Shard that ran the attempt.
    pub machine: u64,
    /// Shard-clock wall time of the attempt window.
    pub wall: Duration,
    /// Charged time per category (keys from [`categories`]).
    pub by_category: BTreeMap<String, Duration>,
    /// Per-TPM-ordinal drill-down within [`categories::TPM`].
    pub tpm_ordinals: BTreeMap<String, Duration>,
}

impl AttemptBreakdown {
    /// Sum of all category charges.
    pub fn attributed(&self) -> Duration {
        self.by_category.values().copied().sum()
    }
}

/// Complete attribution for one request.
#[derive(Debug, Clone, Default)]
pub struct RequestAttribution {
    /// The request id (trace id).
    pub request: u64,
    /// Coordinator-measured wall time spent queued (initial admission plus
    /// any requeue→readmission gaps).
    pub queue_wait: Duration,
    /// Per-attempt breakdowns, in attempt order.
    pub attempts: Vec<AttemptBreakdown>,
    /// Avoided-work estimates from warm-path cache hits, by kind.
    pub warm_saved: BTreeMap<String, Duration>,
    /// Whether the coordinator recorded a `done` terminal for the request.
    pub done: bool,
}

impl RequestAttribution {
    /// Total on-shard time (sum of attempt walls).
    pub fn active(&self) -> Duration {
        self.attempts.iter().map(|a| a.wall).sum()
    }

    /// Total time charged to named categories across all attempts.
    pub fn attributed(&self) -> Duration {
        self.attempts.iter().map(|a| a.attributed()).sum()
    }

    /// End-to-end wall time: queue wait plus on-shard time.
    pub fn wall(&self) -> Duration {
        self.queue_wait + self.active()
    }

    /// On-shard time not charged to any category.
    pub fn unattributed(&self) -> Duration {
        self.active().saturating_sub(self.attributed())
    }

    /// Fraction of end-to-end wall time accounted for by named categories
    /// (queue wait counts as the `queue_wait` category). 1.0 for a request
    /// with zero wall time.
    pub fn coverage(&self) -> f64 {
        let wall = self.wall();
        if wall.is_zero() {
            return 1.0;
        }
        let named = self.queue_wait + self.attributed().min(self.active());
        named.as_secs_f64() / wall.as_secs_f64()
    }

    /// Farm-level category totals for this request, including queue wait.
    pub fn category_totals(&self) -> BTreeMap<String, Duration> {
        let mut totals: BTreeMap<String, Duration> = BTreeMap::new();
        if !self.queue_wait.is_zero() {
            totals.insert(categories::QUEUE_WAIT.to_string(), self.queue_wait);
        }
        for a in &self.attempts {
            for (k, v) in &a.by_category {
                *totals.entry(k.clone()).or_default() += *v;
            }
        }
        totals
    }
}

/// Attribution for a whole farm run.
#[derive(Debug, Clone, Default)]
pub struct FarmAttribution {
    /// Per-request attributions, sorted by request id.
    pub requests: Vec<RequestAttribution>,
}

impl FarmAttribution {
    /// Farm-wide totals per category (including queue wait).
    pub fn category_totals(&self) -> BTreeMap<String, Duration> {
        let mut totals: BTreeMap<String, Duration> = BTreeMap::new();
        for r in &self.requests {
            for (k, v) in r.category_totals() {
                *totals.entry(k).or_default() += v;
            }
        }
        totals
    }

    /// Farm-wide warm-savings totals by kind.
    pub fn warm_saved_totals(&self) -> BTreeMap<String, Duration> {
        let mut totals: BTreeMap<String, Duration> = BTreeMap::new();
        for r in &self.requests {
            for (k, v) in &r.warm_saved {
                *totals.entry(k.clone()).or_default() += *v;
            }
        }
        totals
    }

    /// The worst per-request coverage (1.0 for an empty farm).
    pub fn min_coverage(&self) -> f64 {
        self.requests
            .iter()
            .map(|r| r.coverage())
            .fold(1.0f64, f64::min)
    }

    /// Total unattributed on-shard time across all requests.
    pub fn unattributed(&self) -> Duration {
        self.requests.iter().map(|r| r.unattributed()).sum()
    }

    /// Looks up one request's attribution.
    pub fn request(&self, id: u64) -> Option<&RequestAttribution> {
        self.requests.iter().find(|r| r.request == id)
    }
}

/// Builds per-request attributions from the coordinator stream (wall-clock
/// stamps) and the per-shard streams (virtual-clock stamps).
///
/// Requests that never reached a shard (shed at admission) appear with no
/// attempts and only their queue-side timings.
pub fn attribute(coordinator: &[Event], shards: &[ShardStream]) -> FarmAttribution {
    let mut reqs: BTreeMap<u64, RequestAttribution> = BTreeMap::new();
    let mut waiting_since: BTreeMap<u64, Duration> = BTreeMap::new();

    for e in coordinator {
        let EventKind::Farm {
            action, request, ..
        } = &e.kind
        else {
            continue;
        };
        if *request == u64::MAX {
            continue; // machine-level decisions (quarantine probes etc.)
        }
        let r = reqs.entry(*request).or_insert_with(|| RequestAttribution {
            request: *request,
            ..RequestAttribution::default()
        });
        match action.as_str() {
            actions::ENQUEUED | actions::REQUEUED => {
                waiting_since.insert(*request, e.at);
            }
            actions::ADMITTED | actions::READMITTED => {
                if let Some(since) = waiting_since.remove(request) {
                    r.queue_wait += e.at.saturating_sub(since);
                }
            }
            actions::DONE => r.done = true,
            _ => {}
        }
    }

    // Per-shard pass: attempt windows, charges, and TPM drill-down, all
    // grouped by the (request, attempt) stamp on each event.
    for shard in shards {
        let mut open: BTreeMap<RequestCtx, Duration> = BTreeMap::new();
        for e in &shard.events {
            let Some(ctx) = e.ctx else { continue };
            match &e.kind {
                EventKind::Farm { action, .. } if action == actions::ATTEMPT_START => {
                    open.insert(ctx, e.at);
                }
                EventKind::Farm { action, .. } if action == actions::ATTEMPT_END => {
                    let Some(started) = open.remove(&ctx) else {
                        continue;
                    };
                    let a = attempt_entry(&mut reqs, ctx, shard.machine);
                    a.wall += e.at.saturating_sub(started);
                }
                EventKind::Charge { op, ns } => {
                    let d = Duration::from_nanos(*ns);
                    if let Some(kind) = op.strip_prefix(categories::WARM_SAVED_PREFIX) {
                        let r = reqs
                            .entry(ctx.request)
                            .or_insert_with(|| RequestAttribution {
                                request: ctx.request,
                                ..RequestAttribution::default()
                            });
                        *r.warm_saved.entry(kind.to_string()).or_default() += d;
                    } else {
                        let a = attempt_entry(&mut reqs, ctx, shard.machine);
                        *a.by_category.entry(op.clone()).or_default() += d;
                    }
                }
                EventKind::TpmCommand {
                    ordinal, dur_ns, ..
                } => {
                    let a = attempt_entry(&mut reqs, ctx, shard.machine);
                    *a.tpm_ordinals.entry(ordinal.clone()).or_default() +=
                        Duration::from_nanos(*dur_ns);
                }
                _ => {}
            }
        }
    }

    FarmAttribution {
        requests: reqs.into_values().collect(),
    }
}

/// Finds or creates the [`AttemptBreakdown`] for `ctx`.
fn attempt_entry(
    reqs: &mut BTreeMap<u64, RequestAttribution>,
    ctx: RequestCtx,
    machine: u64,
) -> &mut AttemptBreakdown {
    let r = reqs
        .entry(ctx.request)
        .or_insert_with(|| RequestAttribution {
            request: ctx.request,
            ..RequestAttribution::default()
        });
    if let Some(pos) = r.attempts.iter().position(|a| a.attempt == ctx.attempt) {
        return &mut r.attempts[pos];
    }
    r.attempts.push(AttemptBreakdown {
        attempt: ctx.attempt,
        machine,
        ..AttemptBreakdown::default()
    });
    r.attempts.sort_by_key(|a| a.attempt);
    let pos = r
        .attempts
        .iter()
        .position(|a| a.attempt == ctx.attempt)
        .expect("just inserted");
    &mut r.attempts[pos]
}

// ---------------------------------------------------------------------------
// Timeline merge
// ---------------------------------------------------------------------------

/// Machine index used for coordinator-scoped timeline entries.
pub const COORDINATOR: u64 = u64::MAX;

/// One event placed on the merged farm-wide time axis.
#[derive(Debug, Clone)]
pub struct TimelineEvent {
    /// Position on the farm-wide (coordinator wall) axis.
    pub global: Duration,
    /// Originating shard, or [`COORDINATOR`].
    pub machine: u64,
    /// The original event (its `at` is still the source clock's stamp).
    pub event: Event,
}

/// Merges the coordinator stream and per-shard streams onto one global
/// axis using the coordinator's [`EventKind::Anchor`] events.
///
/// For each shard event the latest anchor with `shard_ns ≤ at` maps it as
/// `global = anchor.wall + (at − anchor.shard_ns)`; events before the first
/// anchor are pinned to it. A per-shard monotone watermark guarantees the
/// merged stream never runs a shard backwards even where anchors disagree
/// (shards idle between attempts, so inter-anchor positions are
/// approximate by construction — attribution never subtracts cross-shard
/// stamps, only the visualization uses this axis).
pub fn merge_timeline(coordinator: &[Event], shards: &[ShardStream]) -> Vec<TimelineEvent> {
    // anchors[machine] = [(shard_ns, wall)], in coordinator order.
    let mut anchors: BTreeMap<u64, Vec<(Duration, Duration)>> = BTreeMap::new();
    for e in coordinator {
        if let EventKind::Anchor { machine, shard_ns } = &e.kind {
            anchors
                .entry(*machine)
                .or_default()
                .push((Duration::from_nanos(*shard_ns), e.at));
        }
    }
    for list in anchors.values_mut() {
        list.sort();
    }

    let mut out: Vec<TimelineEvent> = coordinator
        .iter()
        .map(|e| TimelineEvent {
            global: e.at,
            machine: COORDINATOR,
            event: e.clone(),
        })
        .collect();

    for shard in shards {
        let Some(list) = anchors.get(&shard.machine) else {
            continue; // never scheduled: no way to place its events
        };
        let mut watermark = Duration::ZERO;
        for e in &shard.events {
            let idx = list.partition_point(|&(shard_ns, _)| shard_ns <= e.at);
            let (anchor_shard, anchor_wall) = if idx == 0 { list[0] } else { list[idx - 1] };
            let global = if e.at >= anchor_shard {
                anchor_wall + (e.at - anchor_shard)
            } else {
                anchor_wall.saturating_sub(anchor_shard - e.at)
            };
            let global = global.max(watermark);
            watermark = global;
            out.push(TimelineEvent {
                global,
                machine: shard.machine,
                event: e.clone(),
            });
        }
    }

    out.sort_by_key(|t| (t.global, t.machine));
    out
}

// ---------------------------------------------------------------------------
// SLO monitoring
// ---------------------------------------------------------------------------

/// Workload identity and terminal state of one request, supplied by the
/// farm layer (this crate does not know workload kinds).
#[derive(Debug, Clone)]
pub struct RequestMeta {
    /// The request id.
    pub request: u64,
    /// Stable workload name (e.g. `rootkit`, `ssh`).
    pub workload: String,
}

/// Per-workload latency budgets plus the farm-wide error-budget allowance.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Wall-time budget per workload name. Workloads without an entry use
    /// `default_budget`.
    pub budgets: BTreeMap<String, Duration>,
    /// Budget applied to workloads with no explicit entry.
    pub default_budget: Duration,
    /// Allowed breach fraction per workload (e.g. 0.05 = 5% of requests
    /// may breach before the error budget is burned through).
    pub error_budget: f64,
    /// A request is an outlier when its wall time exceeds this multiple of
    /// its workload's median wall time.
    pub outlier_factor: f64,
}

impl SloPolicy {
    /// The budget for `workload`.
    pub fn budget(&self, workload: &str) -> Duration {
        self.budgets
            .get(workload)
            .copied()
            .unwrap_or(self.default_budget)
    }
}

/// SLO verdict for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadSlo {
    /// Workload name.
    pub workload: String,
    /// The latency budget applied.
    pub budget: Duration,
    /// Requests of this workload seen in the attribution.
    pub requests: u64,
    /// Requests that breached (missed `done` or exceeded the budget).
    pub breaches: u64,
    /// Worst observed wall time.
    pub worst: Duration,
    /// Error-budget burn: breach fraction divided by the allowed fraction
    /// (1.0 = exactly at the error budget; > 1.0 = burned through).
    pub burn: f64,
}

impl WorkloadSlo {
    /// Whether this workload is within its error budget.
    pub fn ok(&self) -> bool {
        self.burn <= 1.0
    }
}

/// Farm-wide SLO report.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    /// Per-workload verdicts, sorted by workload name.
    pub workloads: Vec<WorkloadSlo>,
    /// Request ids whose wall time deviated from their workload median by
    /// more than the policy's outlier factor (candidates for a flight-
    /// record dump).
    pub outliers: Vec<u64>,
}

impl SloReport {
    /// True when every workload is within its error budget.
    pub fn ok(&self) -> bool {
        self.workloads.iter().all(|w| w.ok())
    }
}

/// Evaluates `policy` over an attribution, using `meta` to group requests
/// by workload. Requests present in the attribution but missing from
/// `meta` are ignored (and vice versa).
pub fn evaluate_slo(policy: &SloPolicy, attr: &FarmAttribution, meta: &[RequestMeta]) -> SloReport {
    let mut by_workload: BTreeMap<&str, Vec<&RequestAttribution>> = BTreeMap::new();
    for m in meta {
        if let Some(r) = attr.request(m.request) {
            by_workload.entry(m.workload.as_str()).or_default().push(r);
        }
    }

    let mut workloads = Vec::new();
    let mut outliers = Vec::new();
    for (workload, rs) in by_workload {
        let budget = policy.budget(workload);
        let mut walls: Vec<Duration> = rs.iter().map(|r| r.wall()).collect();
        walls.sort();
        let median = walls[walls.len() / 2];
        let breaches = rs.iter().filter(|r| !r.done || r.wall() > budget).count() as u64;
        let requests = rs.len() as u64;
        let breach_frac = breaches as f64 / requests as f64;
        let burn = if policy.error_budget > 0.0 {
            breach_frac / policy.error_budget
        } else if breaches == 0 {
            0.0
        } else {
            f64::INFINITY
        };
        for r in &rs {
            if !median.is_zero()
                && r.wall().as_secs_f64() > policy.outlier_factor * median.as_secs_f64()
            {
                outliers.push(r.request);
            }
        }
        workloads.push(WorkloadSlo {
            workload: workload.to_string(),
            budget,
            requests,
            breaches,
            worst: walls.last().copied().unwrap_or_default(),
            burn,
        });
    }
    outliers.sort_unstable();
    SloReport {
        workloads,
        outliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn farm(at: Duration, action: &str, request: u64, machine: u64) -> Event {
        Event::new(
            at,
            EventKind::Farm {
                action: action.into(),
                request,
                machine,
            },
        )
    }

    fn ctxed(mut e: Event, request: u64, attempt: u32) -> Event {
        e.ctx = Some(RequestCtx { request, attempt });
        e
    }

    fn charge(at: Duration, op: &str, ns: u64, request: u64, attempt: u32) -> Event {
        ctxed(
            Event::new(at, EventKind::Charge { op: op.into(), ns }),
            request,
            attempt,
        )
    }

    /// One request: enqueued at 0, admitted at 2ms, one attempt of 10ms
    /// fully charged across categories.
    fn simple_streams() -> (Vec<Event>, Vec<ShardStream>) {
        let coordinator = vec![
            farm(ms(0), "enqueued", 1, u64::MAX),
            farm(ms(2), "admitted", 1, 0),
            Event::new(
                ms(2),
                EventKind::Anchor {
                    machine: 0,
                    shard_ns: ms(100).as_nanos() as u64,
                },
            ),
            farm(ms(12), "done", 1, 0),
        ];
        let shard = ShardStream {
            machine: 0,
            events: vec![
                ctxed(farm(ms(100), "attempt_start", 1, 0), 1, 1),
                charge(ms(101), "cpu", ms(3).as_nanos() as u64, 1, 1),
                charge(ms(105), "tpm", ms(6).as_nanos() as u64, 1, 1),
                ctxed(
                    Event::new(
                        ms(105),
                        EventKind::TpmCommand {
                            ordinal: "TPM_Seal".into(),
                            locality: 0,
                            dur_ns: ms(6).as_nanos() as u64,
                        },
                    ),
                    1,
                    1,
                ),
                charge(ms(109), "skinit", ms(1).as_nanos() as u64, 1, 1),
                charge(ms(110), "warm_saved.seal", ms(4).as_nanos() as u64, 1, 1),
                ctxed(farm(ms(110), "attempt_end", 1, 0), 1, 1),
            ],
        };
        (coordinator, vec![shard])
    }

    #[test]
    fn attribution_partitions_wall_time() {
        let (coordinator, shards) = simple_streams();
        let attr = attribute(&coordinator, &shards);
        assert_eq!(attr.requests.len(), 1);
        let r = &attr.requests[0];
        assert_eq!(r.queue_wait, ms(2));
        assert_eq!(r.active(), ms(10));
        assert_eq!(r.attributed(), ms(10));
        assert_eq!(r.wall(), ms(12));
        assert_eq!(r.unattributed(), Duration::ZERO);
        assert!((r.coverage() - 1.0).abs() < 1e-12, "{}", r.coverage());
        assert!(r.done);
        assert_eq!(r.warm_saved.get("seal"), Some(&ms(4)));
        let a = &r.attempts[0];
        assert_eq!(a.tpm_ordinals.get("TPM_Seal"), Some(&ms(6)));
        assert_eq!(
            a.by_category.get(categories::TPM),
            Some(&ms(6)),
            "ordinal drill-down must not double-count"
        );
        let totals = r.category_totals();
        assert_eq!(totals.get(categories::QUEUE_WAIT), Some(&ms(2)));
        assert_eq!(
            totals.values().copied().sum::<Duration>(),
            ms(12),
            "totals partition the wall"
        );
    }

    #[test]
    fn uncharged_time_is_reported_as_unattributed() {
        let (coordinator, mut shards) = simple_streams();
        // Drop the tpm charge: 6ms of the attempt goes dark.
        shards[0]
            .events
            .retain(|e| !matches!(&e.kind, EventKind::Charge { op, .. } if op == "tpm"));
        let attr = attribute(&coordinator, &shards);
        let r = &attr.requests[0];
        assert_eq!(r.unattributed(), ms(6));
        assert!(r.coverage() < 0.99, "{}", r.coverage());
        assert!(attr.min_coverage() < 0.99);
        assert_eq!(attr.unattributed(), ms(6));
    }

    #[test]
    fn requeue_gap_counts_as_queue_wait_and_attempts_stay_separate() {
        let coordinator = vec![
            farm(ms(0), "enqueued", 7, u64::MAX),
            farm(ms(1), "admitted", 7, 0),
            farm(ms(20), "requeued", 7, 0),
            farm(ms(25), "readmitted", 7, 1),
            farm(ms(40), "done", 7, 1),
        ];
        let shards = vec![
            ShardStream {
                machine: 0,
                events: vec![
                    ctxed(farm(ms(50), "attempt_start", 7, 0), 7, 1),
                    charge(ms(51), "cpu", ms(5).as_nanos() as u64, 7, 1),
                    ctxed(farm(ms(55), "attempt_end", 7, 0), 7, 1),
                ],
            },
            ShardStream {
                machine: 1,
                events: vec![
                    ctxed(farm(ms(10), "attempt_start", 7, 1), 7, 2),
                    charge(ms(11), "cpu", ms(8).as_nanos() as u64, 7, 2),
                    ctxed(farm(ms(18), "attempt_end", 7, 1), 7, 2),
                ],
            },
        ];
        let attr = attribute(&coordinator, &shards);
        let r = attr.request(7).unwrap();
        assert_eq!(r.queue_wait, ms(1) + ms(5));
        assert_eq!(r.attempts.len(), 2);
        assert_eq!(r.attempts[0].attempt, 1);
        assert_eq!(r.attempts[0].machine, 0);
        assert_eq!(r.attempts[1].attempt, 2);
        assert_eq!(r.attempts[1].machine, 1);
        assert_eq!(r.active(), ms(13));
    }

    #[test]
    fn shed_request_has_queue_side_only() {
        let coordinator = vec![
            farm(ms(0), "enqueued", 3, u64::MAX),
            farm(ms(1), "shed", 3, u64::MAX),
        ];
        let attr = attribute(&coordinator, &[]);
        let r = attr.request(3).unwrap();
        assert!(r.attempts.is_empty());
        assert!(!r.done);
        assert_eq!(r.active(), Duration::ZERO);
        assert_eq!(r.coverage(), 1.0, "no wall time, nothing uncovered");
    }

    #[test]
    fn timeline_aligns_shard_clocks_through_anchors() {
        let (coordinator, shards) = simple_streams();
        let merged = merge_timeline(&coordinator, &shards);
        // attempt_start is at shard 100ms == anchor shard_ns, so it lands
        // exactly on the anchor's wall stamp (2ms).
        let start = merged
            .iter()
            .find(|t| {
                matches!(&t.event.kind, EventKind::Farm { action, .. } if action == "attempt_start")
            })
            .unwrap();
        assert_eq!(start.global, ms(2));
        assert_eq!(start.machine, 0);
        // attempt_end at shard 110ms → wall 2 + 10 = 12ms.
        let end = merged
            .iter()
            .find(|t| {
                matches!(&t.event.kind, EventKind::Farm { action, .. } if action == "attempt_end")
            })
            .unwrap();
        assert_eq!(end.global, ms(12));
        // Global axis is sorted and per-shard monotone.
        for w in merged.windows(2) {
            assert!(w[0].global <= w[1].global);
        }
    }

    #[test]
    fn timeline_clamps_pre_anchor_events_and_stays_monotone() {
        let coordinator = vec![Event::new(
            ms(5),
            EventKind::Anchor {
                machine: 0,
                shard_ns: ms(10).as_nanos() as u64,
            },
        )];
        let shards = vec![ShardStream {
            machine: 0,
            events: vec![
                Event::new(ms(2), EventKind::OsSuspend), // before the anchor
                Event::new(ms(12), EventKind::OsResume),
            ],
        }];
        let merged = merge_timeline(&coordinator, &shards);
        let suspend = merged
            .iter()
            .find(|t| matches!(t.event.kind, EventKind::OsSuspend))
            .unwrap();
        // 5ms wall − (10−2)ms saturates to zero.
        assert_eq!(suspend.global, Duration::ZERO);
        let resume = merged
            .iter()
            .find(|t| matches!(t.event.kind, EventKind::OsResume))
            .unwrap();
        assert_eq!(resume.global, ms(7));
    }

    #[test]
    fn slo_counts_breaches_burn_and_outliers() {
        // Three requests in one workload: walls 10, 10, 50ms; budget 20ms.
        let mk = |id: u64, wall_ms: u64, done: bool| {
            let coordinator = vec![
                farm(ms(0), "enqueued", id, u64::MAX),
                farm(ms(0), "admitted", id, 0),
                farm(ms(wall_ms), if done { "done" } else { "failed" }, id, 0),
            ];
            let shard = ShardStream {
                machine: 0,
                events: vec![
                    ctxed(farm(ms(0), "attempt_start", id, 0), id, 1),
                    charge(ms(1), "cpu", ms(wall_ms).as_nanos() as u64, id, 1),
                    ctxed(farm(ms(wall_ms), "attempt_end", id, 0), id, 1),
                ],
            };
            (coordinator, shard)
        };
        let mut coordinator = Vec::new();
        let mut shards = Vec::new();
        for (id, wall, done) in [(1, 10, true), (2, 10, true), (3, 50, true)] {
            let (c, s) = mk(id, wall, done);
            coordinator.extend(c);
            shards.push(s);
        }
        // Separate shards share machine 0 in this synthetic setup; merge
        // their event lists so attribute sees one stream.
        let merged = ShardStream {
            machine: 0,
            events: shards.into_iter().flat_map(|s| s.events).collect(),
        };
        let attr = attribute(&coordinator, &[merged]);
        let meta: Vec<RequestMeta> = (1..=3)
            .map(|request| RequestMeta {
                request,
                workload: "ssh".into(),
            })
            .collect();
        let policy = SloPolicy {
            budgets: BTreeMap::from([("ssh".to_string(), ms(20))]),
            default_budget: ms(100),
            error_budget: 0.05,
            outlier_factor: 3.0,
        };
        let report = evaluate_slo(&policy, &attr, &meta);
        assert_eq!(report.workloads.len(), 1);
        let w = &report.workloads[0];
        assert_eq!(w.requests, 3);
        assert_eq!(w.breaches, 1, "the 50ms request breaches its 20ms budget");
        assert_eq!(w.worst, ms(50));
        assert!(!w.ok(), "1/3 breaches >> 5% error budget");
        assert!(!report.ok());
        assert_eq!(report.outliers, vec![3], "50 > 3 × median(10)");

        // A generous budget passes and flags no outage.
        let lax = SloPolicy {
            budgets: BTreeMap::new(),
            default_budget: ms(60),
            error_budget: 0.05,
            outlier_factor: 10.0,
        };
        let report = evaluate_slo(&lax, &attr, &meta);
        assert!(report.ok());
        assert!(report.outliers.is_empty());
    }

    #[test]
    fn failed_request_breaches_regardless_of_latency() {
        let coordinator = vec![
            farm(ms(0), "enqueued", 1, u64::MAX),
            farm(ms(0), "admitted", 1, 0),
            farm(ms(1), "failed", 1, 0),
        ];
        let attr = attribute(&coordinator, &[]);
        let meta = [RequestMeta {
            request: 1,
            workload: "ca".into(),
        }];
        let policy = SloPolicy {
            budgets: BTreeMap::new(),
            default_budget: ms(1000),
            error_budget: 0.0,
            outlier_factor: 3.0,
        };
        let report = evaluate_slo(&policy, &attr, &meta);
        assert_eq!(report.workloads[0].breaches, 1);
        assert!(!report.ok(), "zero error budget: any breach burns through");
    }
}
