//! Render a [`Trace`] in formats external tools understand.
//!
//! Three exporters, all hand-rolled (the workspace is dependency-free):
//!
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON. Completed spans
//!   become `ph:"X"` complete events, flight-recorder events become
//!   `ph:"i"` instants; load the file at `chrome://tracing` or in Perfetto.
//! * [`events_jsonl`] — one JSON object per line per flight-recorder event;
//!   [`parse_events_jsonl`] reads the same format back, which is how
//!   `flicker_trace_tool audit --jsonl` replays saved recordings.
//! * [`prometheus_text`] — Prometheus text exposition of counters (as
//!   `_total`) and histograms (cumulative `le` buckets in seconds).

use crate::{Event, EventKind, RequestCtx, Trace};
use std::fmt::Write as _;
use std::time::Duration;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with fractional part, the unit `trace_event` expects.
fn us(d: Duration) -> String {
    let ns = d.as_nanos();
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Splices the optional request-context fields into an args object string
/// (which always ends in `}`).
fn with_ctx(mut args: String, ctx: Option<RequestCtx>) -> String {
    let Some(ctx) = ctx else {
        return args;
    };
    args.pop();
    if !args.ends_with('{') {
        args.push(',');
    }
    let _ = write!(
        args,
        "\"req\":{},\"attempt\":{}}}",
        ctx.request, ctx.attempt
    );
    args
}

fn event_args(kind: &EventKind) -> String {
    match kind {
        EventKind::SessionStart { id } | EventKind::SessionEnd { id } => {
            format!("{{\"id\":{id}}}")
        }
        EventKind::PhaseStart { name } | EventKind::PhaseEnd { name } => {
            format!("{{\"name\":\"{}\"}}", escape_json(name))
        }
        EventKind::TpmCommand {
            ordinal,
            locality,
            dur_ns,
        } => format!(
            "{{\"ordinal\":\"{}\",\"locality\":{locality},\"dur_ns\":{dur_ns}}}",
            escape_json(ordinal)
        ),
        EventKind::CryptoCost {
            ordinal,
            primitive,
            count,
            dur_ns,
        } => format!(
            "{{\"ordinal\":\"{}\",\"primitive\":\"{}\",\"count\":{count},\"dur_ns\":{dur_ns}}}",
            escape_json(ordinal),
            escape_json(primitive)
        ),
        EventKind::Charge { op, ns } => {
            format!("{{\"op\":\"{}\",\"ns\":{ns}}}", escape_json(op))
        }
        EventKind::Anchor { machine, shard_ns } => {
            format!("{{\"machine\":{machine},\"shard_ns\":{shard_ns}}}")
        }
        EventKind::PcrExtend { index, locality } | EventKind::PcrReset { index, locality } => {
            format!("{{\"index\":{index},\"locality\":{locality}}}")
        }
        EventKind::DevProtect { base, len } => format!("{{\"base\":{base},\"len\":{len}}}"),
        EventKind::DevRelease { count } => format!("{{\"count\":{count}}}"),
        EventKind::InterruptsChanged { enabled } => format!("{{\"enabled\":{enabled}}}"),
        EventKind::Skinit { slb_base, slb_len } => {
            format!("{{\"slb_base\":{slb_base},\"slb_len\":{slb_len}}}")
        }
        EventKind::Zeroize { base, len } => format!("{{\"base\":{base},\"len\":{len}}}"),
        EventKind::FaultInjected { fault } => {
            format!("{{\"fault\":\"{}\"}}", escape_json(fault))
        }
        EventKind::Farm {
            action,
            request,
            machine,
        } => format!(
            "{{\"action\":\"{}\",\"request\":{request},\"machine\":{machine}}}",
            escape_json(action)
        ),
        EventKind::OsSuspend | EventKind::OsResume | EventKind::Reboot => "{}".to_string(),
    }
}

/// Renders completed spans and flight-recorder events as Chrome
/// `trace_event` JSON (the object form: `{"traceEvents":[...]}`).
///
/// Spans still open at export time are skipped — they have no duration and
/// `ph:"X"` requires one. Everything lands on `pid` 1 / `tid` 1 so the
/// Figure-2 phase nesting renders as a single flame.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut entries: Vec<String> = Vec::new();
    for span in trace.spans() {
        let Some(duration) = span.duration else {
            continue;
        };
        entries.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"span\",\"pid\":1,\"tid\":1,\
             \"ts\":{},\"dur\":{},\"args\":{}}}",
            escape_json(span.name),
            us(span.start),
            us(duration),
            with_ctx("{}".to_string(), span.ctx),
        ));
    }
    for event in trace.events() {
        entries.push(format!(
            "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"event\",\"pid\":1,\"tid\":1,\
             \"ts\":{},\"s\":\"t\",\"args\":{}}}",
            escape_json(event.kind.name()),
            us(event.at),
            with_ctx(event_args(&event.kind), event.ctx),
        ));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Serializes the flight-recorder event stream as JSONL, oldest first.
pub fn events_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for event in trace.events() {
        out.push_str(&event.to_jsonl());
        out.push('\n');
    }
    out
}

/// Parses text produced by [`events_jsonl`] back into events. Blank lines
/// are skipped; any malformed line fails the whole parse with its line
/// number, because a silently truncated flight record would corrupt audits.
pub fn parse_events_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_jsonl(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Maps a trace metric name to a Prometheus-legal one: lowercased,
/// non-alphanumerics collapsed to `_`, prefixed `flicker_`.
fn metric_name(name: &str) -> String {
    let mut out = String::from("flicker_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Seconds with enough digits to round-trip nanosecond-granular bounds.
fn secs(d: Duration) -> String {
    if d == Duration::from_nanos(u64::MAX) {
        return "+Inf".to_string();
    }
    let s = format!("{:.9}", d.as_secs_f64());
    let trimmed = s.trim_end_matches('0');
    let trimmed = trimmed.strip_suffix('.').unwrap_or(trimmed);
    trimmed.to_string()
}

/// Renders counters and histograms in the Prometheus text exposition
/// format: counters as `<name>_total`, histograms as `<name>_seconds` with
/// cumulative `le` buckets derived from
/// [`DurationHistogram::nonzero_buckets`](crate::DurationHistogram::nonzero_buckets).
pub fn prometheus_text(trace: &Trace) -> String {
    let mut out = String::new();
    for (name, value) in trace.counters() {
        let metric = metric_name(name);
        let _ = writeln!(
            out,
            "# HELP {metric}_total Monotonic flight-recorder count of {name} events."
        );
        let _ = writeln!(out, "# TYPE {metric}_total counter");
        let _ = writeln!(out, "{metric}_total {value}");
    }
    for (name, hist) in trace.histograms() {
        let metric = format!("{}_seconds", metric_name(name));
        let _ = writeln!(
            out,
            "# HELP {metric} Virtual-clock latency distribution of {name}."
        );
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        for (_low, high, count) in hist.nonzero_buckets() {
            cumulative += count;
            let _ = writeln!(out, "{metric}_bucket{{le=\"{}\"}} {cumulative}", secs(high));
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{metric}_sum {}", secs(hist.sum()));
        let _ = writeln!(out, "{metric}_count {}", hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let t = Trace::new();
        let outer = t.span_start("phase.pal", Duration::from_micros(10));
        t.span_end(outer, Duration::from_micros(250));
        t.span_start("open.span", Duration::from_micros(300));
        t.counter_add("tpm.retry", 3);
        t.observe("tpm.TPM_Seal", Duration::from_millis(20));
        t.observe("tpm.TPM_Seal", Duration::from_millis(21));
        t.event(
            Duration::from_micros(42),
            EventKind::TpmCommand {
                ordinal: "TPM_Seal".into(),
                locality: 0,
                dur_ns: 20_000_000,
            },
        );
        t.event(Duration::from_micros(50), EventKind::OsResume);
        t
    }

    #[test]
    fn chrome_trace_has_complete_and_instant_events() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"phase.pal\""));
        assert!(json.contains("\"dur\":240.000"), "{json}");
        assert!(
            !json.contains("open.span"),
            "open spans must be skipped: {json}"
        );
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let t = sample_trace();
        let text = events_jsonl(&t);
        let parsed = parse_events_jsonl(&text).expect("parses");
        assert_eq!(parsed, t.events());
    }

    #[test]
    fn jsonl_parse_reports_bad_line_number() {
        let err = parse_events_jsonl("{\"at_ns\":1,\"kind\":\"os_resume\"}\nbroken\n")
            .expect_err("must fail");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn prometheus_text_exposes_counters_and_histograms() {
        let text = prometheus_text(&sample_trace());
        assert!(text.contains("# TYPE flicker_tpm_retry_total counter"));
        assert!(text.contains("flicker_tpm_retry_total 3"));
        assert!(text.contains("# TYPE flicker_tpm_tpm_seal_seconds histogram"));
        assert!(text.contains("flicker_tpm_tpm_seal_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("flicker_tpm_tpm_seal_seconds_sum 0.041"));
        assert!(text.contains("flicker_tpm_tpm_seal_seconds_count 2"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let t = Trace::new();
        t.observe("h", Duration::from_nanos(3));
        t.observe("h", Duration::from_micros(900));
        let text = prometheus_text(&t);
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.last(), Some(&2));
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn metric_names_sanitize_dots_and_dashes() {
        // Real trace names mix `.` separators and `-` (e.g. ordinal or
        // span names); every exposed metric must be Prometheus-legal:
        // [a-zA-Z_:][a-zA-Z0-9_:]*.
        let t = Trace::new();
        t.counter_add("warm.seal-memo.hit", 1);
        t.counter_add("net.rtt-samples", 2);
        t.observe("phase.seal-unseal", Duration::from_micros(7));
        let text = prometheus_text(&t);
        assert!(
            text.contains("flicker_warm_seal_memo_hit_total 1"),
            "{text}"
        );
        assert!(text.contains("flicker_net_rtt_samples_total 2"), "{text}");
        assert!(
            text.contains("# TYPE flicker_phase_seal_unseal_seconds histogram"),
            "{text}"
        );
        let legal = |name: &str| {
            !name.is_empty()
                && !name.starts_with(|c: char| c.is_ascii_digit())
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let metric = line
                .split([' ', '{'])
                .next()
                .expect("every sample line starts with a metric name");
            assert!(legal(metric), "illegal metric name {metric:?} in {line:?}");
        }
    }

    #[test]
    fn prometheus_scrape_format_golden() {
        // Golden test for the exact exposition text of a small trace:
        // catches accidental format drift (ordering, TYPE lines, le
        // rendering) that a contains()-based test would miss.
        let t = Trace::new();
        t.counter_add("tpm.retry", 3);
        t.observe("net.rtt", Duration::from_micros(512));
        t.observe("net.rtt", Duration::from_micros(900));
        let text = prometheus_text(&t);
        let expected = "\
# HELP flicker_tpm_retry_total Monotonic flight-recorder count of tpm.retry events.
# TYPE flicker_tpm_retry_total counter
flicker_tpm_retry_total 3
# HELP flicker_net_rtt_seconds Virtual-clock latency distribution of net.rtt.
# TYPE flicker_net_rtt_seconds histogram
flicker_net_rtt_seconds_bucket{le=\"0.000524288\"} 1
flicker_net_rtt_seconds_bucket{le=\"0.000917504\"} 2
flicker_net_rtt_seconds_bucket{le=\"+Inf\"} 2
flicker_net_rtt_seconds_sum 0.001412
flicker_net_rtt_seconds_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn chrome_args_carry_request_ctx() {
        let t = Trace::new();
        t.set_request_ctx(Some(crate::RequestCtx {
            request: 11,
            attempt: 2,
        }));
        t.event(Duration::from_micros(1), EventKind::OsSuspend);
        let s = t.span_start("phase.skinit", Duration::from_micros(2));
        t.span_end(s, Duration::from_micros(3));
        let json = chrome_trace_json(&t);
        assert!(
            json.contains("\"args\":{\"req\":11,\"attempt\":2}"),
            "empty-args event must gain ctx fields: {json}"
        );
        assert!(
            json.matches("\"req\":11").count() >= 2,
            "span args must carry ctx too: {json}"
        );
    }
}
