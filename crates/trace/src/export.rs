//! Render a [`Trace`] in formats external tools understand.
//!
//! Three exporters, all hand-rolled (the workspace is dependency-free):
//!
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON. Completed spans
//!   become `ph:"X"` complete events, flight-recorder events become
//!   `ph:"i"` instants; load the file at `chrome://tracing` or in Perfetto.
//! * [`events_jsonl`] — one JSON object per line per flight-recorder event;
//!   [`parse_events_jsonl`] reads the same format back, which is how
//!   `flicker_trace_tool audit --jsonl` replays saved recordings.
//! * [`prometheus_text`] — Prometheus text exposition of counters (as
//!   `_total`) and histograms (cumulative `le` buckets in seconds).

use crate::{Event, EventKind, Trace};
use std::fmt::Write as _;
use std::time::Duration;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with fractional part, the unit `trace_event` expects.
fn us(d: Duration) -> String {
    let ns = d.as_nanos();
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn event_args(kind: &EventKind) -> String {
    match kind {
        EventKind::SessionStart { id } | EventKind::SessionEnd { id } => {
            format!("{{\"id\":{id}}}")
        }
        EventKind::PhaseStart { name } | EventKind::PhaseEnd { name } => {
            format!("{{\"name\":\"{}\"}}", escape_json(name))
        }
        EventKind::TpmCommand { ordinal, locality } => format!(
            "{{\"ordinal\":\"{}\",\"locality\":{locality}}}",
            escape_json(ordinal)
        ),
        EventKind::PcrExtend { index, locality } | EventKind::PcrReset { index, locality } => {
            format!("{{\"index\":{index},\"locality\":{locality}}}")
        }
        EventKind::DevProtect { base, len } => format!("{{\"base\":{base},\"len\":{len}}}"),
        EventKind::DevRelease { count } => format!("{{\"count\":{count}}}"),
        EventKind::InterruptsChanged { enabled } => format!("{{\"enabled\":{enabled}}}"),
        EventKind::Skinit { slb_base, slb_len } => {
            format!("{{\"slb_base\":{slb_base},\"slb_len\":{slb_len}}}")
        }
        EventKind::Zeroize { base, len } => format!("{{\"base\":{base},\"len\":{len}}}"),
        EventKind::FaultInjected { fault } => {
            format!("{{\"fault\":\"{}\"}}", escape_json(fault))
        }
        EventKind::Farm {
            action,
            request,
            machine,
        } => format!(
            "{{\"action\":\"{}\",\"request\":{request},\"machine\":{machine}}}",
            escape_json(action)
        ),
        EventKind::OsSuspend | EventKind::OsResume | EventKind::Reboot => "{}".to_string(),
    }
}

/// Renders completed spans and flight-recorder events as Chrome
/// `trace_event` JSON (the object form: `{"traceEvents":[...]}`).
///
/// Spans still open at export time are skipped — they have no duration and
/// `ph:"X"` requires one. Everything lands on `pid` 1 / `tid` 1 so the
/// Figure-2 phase nesting renders as a single flame.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut entries: Vec<String> = Vec::new();
    for span in trace.spans() {
        let Some(duration) = span.duration else {
            continue;
        };
        entries.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"span\",\"pid\":1,\"tid\":1,\
             \"ts\":{},\"dur\":{}}}",
            escape_json(span.name),
            us(span.start),
            us(duration),
        ));
    }
    for event in trace.events() {
        entries.push(format!(
            "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"event\",\"pid\":1,\"tid\":1,\
             \"ts\":{},\"s\":\"t\",\"args\":{}}}",
            escape_json(event.kind.name()),
            us(event.at),
            event_args(&event.kind),
        ));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Serializes the flight-recorder event stream as JSONL, oldest first.
pub fn events_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for event in trace.events() {
        out.push_str(&event.to_jsonl());
        out.push('\n');
    }
    out
}

/// Parses text produced by [`events_jsonl`] back into events. Blank lines
/// are skipped; any malformed line fails the whole parse with its line
/// number, because a silently truncated flight record would corrupt audits.
pub fn parse_events_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_jsonl(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Maps a trace metric name to a Prometheus-legal one: lowercased,
/// non-alphanumerics collapsed to `_`, prefixed `flicker_`.
fn metric_name(name: &str) -> String {
    let mut out = String::from("flicker_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Seconds with enough digits to round-trip nanosecond-granular bounds.
fn secs(d: Duration) -> String {
    if d == Duration::from_nanos(u64::MAX) {
        return "+Inf".to_string();
    }
    let s = format!("{:.9}", d.as_secs_f64());
    let trimmed = s.trim_end_matches('0');
    let trimmed = trimmed.strip_suffix('.').unwrap_or(trimmed);
    trimmed.to_string()
}

/// Renders counters and histograms in the Prometheus text exposition
/// format: counters as `<name>_total`, histograms as `<name>_seconds` with
/// cumulative `le` buckets derived from
/// [`DurationHistogram::nonzero_buckets`](crate::DurationHistogram::nonzero_buckets).
pub fn prometheus_text(trace: &Trace) -> String {
    let mut out = String::new();
    for (name, value) in trace.counters() {
        let metric = metric_name(name);
        let _ = writeln!(out, "# TYPE {metric}_total counter");
        let _ = writeln!(out, "{metric}_total {value}");
    }
    for (name, hist) in trace.histograms() {
        let metric = format!("{}_seconds", metric_name(name));
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        for (_low, high, count) in hist.nonzero_buckets() {
            cumulative += count;
            let _ = writeln!(out, "{metric}_bucket{{le=\"{}\"}} {cumulative}", secs(high));
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{metric}_sum {}", secs(hist.sum()));
        let _ = writeln!(out, "{metric}_count {}", hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let t = Trace::new();
        let outer = t.span_start("phase.pal", Duration::from_micros(10));
        t.span_end(outer, Duration::from_micros(250));
        t.span_start("open.span", Duration::from_micros(300));
        t.counter_add("tpm.retry", 3);
        t.observe("tpm.TPM_Seal", Duration::from_millis(20));
        t.observe("tpm.TPM_Seal", Duration::from_millis(21));
        t.event(
            Duration::from_micros(42),
            EventKind::TpmCommand {
                ordinal: "TPM_Seal".into(),
                locality: 0,
            },
        );
        t.event(Duration::from_micros(50), EventKind::OsResume);
        t
    }

    #[test]
    fn chrome_trace_has_complete_and_instant_events() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"phase.pal\""));
        assert!(json.contains("\"dur\":240.000"), "{json}");
        assert!(
            !json.contains("open.span"),
            "open spans must be skipped: {json}"
        );
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let t = sample_trace();
        let text = events_jsonl(&t);
        let parsed = parse_events_jsonl(&text).expect("parses");
        assert_eq!(parsed, t.events());
    }

    #[test]
    fn jsonl_parse_reports_bad_line_number() {
        let err = parse_events_jsonl("{\"at_ns\":1,\"kind\":\"os_resume\"}\nbroken\n")
            .expect_err("must fail");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn prometheus_text_exposes_counters_and_histograms() {
        let text = prometheus_text(&sample_trace());
        assert!(text.contains("# TYPE flicker_tpm_retry_total counter"));
        assert!(text.contains("flicker_tpm_retry_total 3"));
        assert!(text.contains("# TYPE flicker_tpm_tpm_seal_seconds histogram"));
        assert!(text.contains("flicker_tpm_tpm_seal_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("flicker_tpm_tpm_seal_seconds_sum 0.041"));
        assert!(text.contains("flicker_tpm_tpm_seal_seconds_count 2"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let t = Trace::new();
        t.observe("h", Duration::from_nanos(3));
        t.observe("h", Duration::from_micros(900));
        let text = prometheus_text(&t);
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.last(), Some(&2));
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }
}
