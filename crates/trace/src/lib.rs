//! Structured trace recorder for the Flicker reproduction.
//!
//! The simulator runs on a virtual clock (`SimClock` in `flicker-machine`),
//! so this crate deliberately knows nothing about clocks: every recording
//! call takes an explicit [`Duration`] timestamp ("virtual nanoseconds since
//! boot"). That keeps `flicker-trace` dependency-free and lets it sit below
//! every other crate in the workspace.
//!
//! Three primitives, mirroring what the perf-baseline harness consumes:
//!
//! * **Spans** — named intervals with nesting ([`Trace::span_start`] /
//!   [`Trace::span_end`]). `run_session` opens one span per Figure-2 phase.
//! * **Counters** — saturating named totals ([`Trace::counter_add`]), e.g.
//!   `tpm.retry` or `mem.zeroize_bytes`.
//! * **Observations** — named duration samples ([`Trace::observe`]) folded
//!   into a log-bucketed [`DurationHistogram`], e.g. per-TPM-ordinal command
//!   latency or net RTTs.
//!
//! A fourth primitive turns the trace into a **flight recorder**: a bounded
//! ring buffer of typed [`Event`]s ([`Trace::event`]) — session and phase
//! transitions, TPM commands, PCR extends/resets, DEV protect/release,
//! interrupt-flag changes, zeroize sweeps, injected faults. The [`audit`]
//! module replays that stream against the paper's Figure-2/§4 ordering
//! invariants, and [`export`] renders it as Chrome `trace_event` JSON,
//! JSONL, or Prometheus-style text.
//!
//! A [`Trace`] is a cheap cloneable handle (`Arc<Mutex<..>>`, `Send + Sync`
//! like the fault injector); every component that wants to record clones
//! the same handle. Because the handle is `Send`, a whole machine — clock,
//! TPM, memory, recorder — can move onto a worker thread, which is what the
//! farm's sharded service layer does: one private trace per machine shard,
//! audited independently (per-shard virtual clocks mean timestamps are only
//! comparable within one shard's stream).
//!
//! For the farm, the recorder is also *request-scoped*: the coordinator
//! installs a [`RequestCtx`] on the serving shard's handle for the duration
//! of each attempt ([`Trace::set_request_ctx`]), every event and span is
//! stamped with it, and substrates charge virtual time to named attribution
//! categories via [`Trace::charge`]. The [`attribution`] module folds those
//! per-shard streams into per-request critical-path breakdowns, a farm-wide
//! timeline (aligned through coordinator [`EventKind::Anchor`] events), and
//! SLO verdicts.

pub mod attribution;
pub mod audit;
mod event;
pub mod export;
mod hist;
pub mod profile;

pub use event::{Event, EventKind, RequestCtx};
pub use hist::DurationHistogram;

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Counter incremented once per event evicted from a full ring buffer, so
/// truncated flight records are never mistaken for quiet runs.
pub const DROPPED_EVENTS_COUNTER: &str = "trace.dropped_events";

/// Default flight-recorder capacity: comfortably holds a full 250-session
/// perf-baseline run (~60 events/session) with an order of magnitude to
/// spare.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Identifies a span within one [`Trace`]; returned by [`Trace::span_start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(usize);

/// A completed (or still-open) named interval.
#[derive(Debug, Clone)]
pub struct Span {
    /// Static span name, e.g. `"phase.skinit"`.
    pub name: &'static str,
    /// Virtual time at which the span was opened.
    pub start: Duration,
    /// `Some(end - start)` once closed, `None` while open.
    pub duration: Option<Duration>,
    /// Nesting depth: 0 for a root span.
    pub depth: usize,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// The farm request the span belongs to, when one was in force on the
    /// recorder at open time.
    pub ctx: Option<RequestCtx>,
}

/// One logged PAL/session operation: a typed replacement for the old
/// `(&'static str, Duration)` tuples in `op_log`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEvent {
    /// Operation name, e.g. `"seal"` or `"rsa1024_sign"`.
    pub name: &'static str,
    /// Virtual time at which the operation started.
    pub at: Duration,
    /// How long the operation took on the virtual clock.
    pub duration: Duration,
}

struct Inner {
    spans: Vec<Span>,
    open: Vec<SpanId>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, DurationHistogram>,
    events: VecDeque<Event>,
    event_capacity: usize,
    next_session_id: u64,
    current_ctx: Option<RequestCtx>,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            spans: Vec::new(),
            open: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: VecDeque::new(),
            event_capacity: DEFAULT_EVENT_CAPACITY,
            next_session_id: 0,
            current_ctx: None,
        }
    }
}

impl Inner {
    /// Evicts oldest events until `len <= event_capacity`, counting drops.
    fn enforce_event_capacity(&mut self) {
        while self.events.len() > self.event_capacity {
            self.events.pop_front();
            let c = self.counters.entry(DROPPED_EVENTS_COUNTER).or_insert(0);
            *c = c.saturating_add(1);
        }
    }
}

/// Cloneable recorder handle. All clones share the same buffers.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Arc<Mutex<Inner>>,
}

impl Trace {
    /// Locks the shared recorder state (poisoning is not recoverable for a
    /// recorder — a panicking recorder thread already lost its data).
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("trace recorder poisoned")
    }
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Opens a span at virtual time `now`, nested under the innermost open
    /// span (if any).
    pub fn span_start(&self, name: &'static str, now: Duration) -> SpanId {
        let mut inner = self.lock();
        let parent = inner.open.last().copied();
        let depth = inner.open.len();
        let id = SpanId(inner.spans.len());
        let ctx = inner.current_ctx;
        inner.spans.push(Span {
            name,
            start: now,
            duration: None,
            depth,
            parent,
            ctx,
        });
        inner.open.push(id);
        id
    }

    /// Closes `id` at virtual time `now`. Any spans opened after `id` that
    /// are still open are closed with it (a span cannot outlive its parent).
    /// Closing an already-closed span is a no-op.
    pub fn span_end(&self, id: SpanId, now: Duration) {
        let mut inner = self.lock();
        let Some(pos) = inner.open.iter().position(|&o| o == id) else {
            return;
        };
        for open_id in inner.open.split_off(pos) {
            let span = &mut inner.spans[open_id.0];
            span.duration = Some(now.saturating_sub(span.start));
        }
    }

    /// Records a fully-formed span in one call (used when start and end are
    /// both known, e.g. when converting a stopwatch measurement).
    pub fn span_closed(&self, name: &'static str, start: Duration, duration: Duration) {
        let mut inner = self.lock();
        let parent = inner.open.last().copied();
        let depth = inner.open.len();
        let ctx = inner.current_ctx;
        inner.spans.push(Span {
            name,
            start,
            duration: Some(duration),
            depth,
            parent,
            ctx,
        });
    }

    /// Adds to a named counter, saturating at `u64::MAX`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.lock();
        let c = inner.counters.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Records a duration sample into the named histogram.
    pub fn observe(&self, name: &'static str, sample: Duration) {
        let mut inner = self.lock();
        inner.histograms.entry(name).or_default().observe(sample);
    }

    /// Snapshot of all spans in creation order.
    pub fn spans(&self) -> Vec<Span> {
        self.lock().spans.clone()
    }

    /// Completed spans with the given name, in creation order. Spans still
    /// open at snapshot time are excluded (they have no duration yet); use
    /// [`Trace::spans`] for the raw list including open spans.
    pub fn spans_named(&self, name: &str) -> Vec<Span> {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.name == name && s.duration.is_some())
            .cloned()
            .collect()
    }

    /// Records a flight-recorder event at virtual time `at`, stamped with
    /// the current request context (if one is in force). When the ring
    /// buffer is full the oldest event is evicted and
    /// [`DROPPED_EVENTS_COUNTER`] is incremented.
    pub fn event(&self, at: Duration, kind: EventKind) {
        let mut inner = self.lock();
        let ctx = inner.current_ctx;
        inner.events.push_back(Event { at, kind, ctx });
        inner.enforce_event_capacity();
    }

    /// Sets (or with `None`, clears) the request context stamped onto every
    /// subsequent event and span. The farm worker installs the admitted
    /// request's context on the shard's recorder just before each attempt
    /// and clears it when the attempt leaves the shard, so the whole
    /// substrate below — machine, TPM, OS, network — attributes its work
    /// without knowing requests exist.
    pub fn set_request_ctx(&self, ctx: Option<RequestCtx>) {
        self.lock().current_ctx = ctx;
    }

    /// The request context currently in force, if any.
    pub fn request_ctx(&self) -> Option<RequestCtx> {
        self.lock().current_ctx
    }

    /// Charges virtual time against the active request under the named
    /// attribution category (see [`attribution`]). A no-op when no request
    /// context is in force: machine-scoped work (provisioning, probes) is
    /// not part of any request's latency, and skipping the event keeps the
    /// non-farm paths' flight records unchanged.
    pub fn charge(&self, at: Duration, op: &'static str, d: Duration) {
        let mut inner = self.lock();
        let Some(ctx) = inner.current_ctx else {
            return;
        };
        if d.is_zero() {
            return;
        }
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        inner.events.push_back(Event {
            at,
            kind: EventKind::Charge { op: op.into(), ns },
            ctx: Some(ctx),
        });
        inner.enforce_event_capacity();
    }

    /// Snapshot of the flight-recorder ring buffer, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn event_count(&self) -> usize {
        self.lock().events.len()
    }

    /// Changes the ring-buffer bound. Shrinking below the current length
    /// evicts the oldest events (counted as drops). A capacity of 0 keeps
    /// room for a single event, the smallest useful flight record.
    pub fn set_event_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.event_capacity = capacity.max(1);
        inner.enforce_event_capacity();
    }

    /// Allocates the next session id (1, 2, …) for `SessionStart` events.
    pub fn next_session_id(&self) -> u64 {
        let mut inner = self.lock();
        inner.next_session_id += 1;
        inner.next_session_id
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Events evicted from the ring buffer so far (the
    /// [`DROPPED_EVENTS_COUNTER`] counter). Nonzero means [`Trace::events`]
    /// returns a truncated stream and any audit over it is inconclusive.
    pub fn dropped_events(&self) -> u64 {
        self.counter(DROPPED_EVENTS_COUNTER)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.lock().counters.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Clone of the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<DurationHistogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(&'static str, DurationHistogram)> {
        self.lock()
            .histograms
            .iter()
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }

    /// Discards all recorded data, keeping the handle (and its clones) live.
    /// The configured event capacity survives the reset.
    pub fn reset(&self) {
        let mut inner = self.lock();
        let capacity = inner.event_capacity;
        *inner = Inner {
            event_capacity: capacity,
            ..Inner::default()
        };
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Trace")
            .field("spans", &inner.spans.len())
            .field("open", &inner.open.len())
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .field("events", &inner.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn span_nesting_tracks_depth_and_parent() {
        let t = Trace::new();
        let outer = t.span_start("outer", us(0));
        let inner = t.span_start("inner", us(10));
        t.span_end(inner, us(25));
        t.span_end(outer, us(40));

        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].duration, Some(us(40)));
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].parent, Some(outer));
        assert_eq!(spans[1].duration, Some(us(15)));
    }

    #[test]
    fn closing_parent_closes_dangling_children() {
        let t = Trace::new();
        let outer = t.span_start("outer", us(0));
        let _inner = t.span_start("inner", us(5));
        t.span_end(outer, us(20));
        let spans = t.spans();
        assert_eq!(spans[1].duration, Some(us(15)), "child closed with parent");
        assert_eq!(spans[0].duration, Some(us(20)));
    }

    #[test]
    fn double_close_is_noop() {
        let t = Trace::new();
        let s = t.span_start("s", us(0));
        t.span_end(s, us(10));
        t.span_end(s, us(99));
        assert_eq!(t.spans()[0].duration, Some(us(10)));
    }

    #[test]
    fn sibling_spans_share_depth() {
        let t = Trace::new();
        let a = t.span_start("a", us(0));
        t.span_end(a, us(1));
        let b = t.span_start("b", us(1));
        t.span_end(b, us(2));
        let spans = t.spans();
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn span_closed_records_under_open_parent() {
        let t = Trace::new();
        let outer = t.span_start("outer", us(0));
        t.span_closed("leaf", us(3), us(4));
        t.span_end(outer, us(10));
        let spans = t.spans();
        assert_eq!(spans[1].parent, Some(outer));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].duration, Some(us(4)));
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let t = Trace::new();
        t.counter_add("c", u64::MAX - 1);
        t.counter_add("c", 5);
        assert_eq!(t.counter("c"), u64::MAX);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn observations_build_histograms() {
        let t = Trace::new();
        for ms in [1u64, 2, 3, 4, 100] {
            t.observe("tpm.TPM_Seal", Duration::from_millis(ms));
        }
        let h = t.histogram("tpm.TPM_Seal").expect("histogram exists");
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Duration::from_millis(100));
        assert!(t.histogram("tpm.TPM_Quote").is_none());
    }

    #[test]
    fn clones_share_state() {
        let a = Trace::new();
        let b = a.clone();
        b.counter_add("shared", 2);
        assert_eq!(a.counter("shared"), 2);
        let s = a.span_start("s", us(0));
        b.span_end(s, us(7));
        assert_eq!(a.spans()[0].duration, Some(us(7)));
    }

    #[test]
    fn reset_clears_everything() {
        let t = Trace::new();
        t.counter_add("c", 1);
        t.span_start("s", us(0));
        t.observe("h", us(1));
        t.event(us(2), EventKind::OsSuspend);
        t.reset();
        assert!(t.spans().is_empty());
        assert_eq!(t.counter("c"), 0);
        assert!(t.histogram("h").is_none());
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_named_returns_only_completed_spans() {
        let t = Trace::new();
        let done = t.span_start("phase.suspend", us(0));
        t.span_end(done, us(5));
        let _still_open = t.span_start("phase.suspend", us(6));
        let named = t.spans_named("phase.suspend");
        assert_eq!(named.len(), 1, "open span must not be returned");
        assert_eq!(named[0].duration, Some(us(5)));
        assert_eq!(t.spans().len(), 2, "raw view still shows both");
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let t = Trace::new();
        t.set_event_capacity(3);
        for id in 1..=5u64 {
            t.event(us(id), EventKind::SessionStart { id });
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::SessionStart { id: 3 });
        assert_eq!(events[2].kind, EventKind::SessionStart { id: 5 });
        assert_eq!(t.counter(DROPPED_EVENTS_COUNTER), 2);
    }

    #[test]
    fn shrinking_capacity_evicts_and_counts() {
        let t = Trace::new();
        for id in 1..=4u64 {
            t.event(us(id), EventKind::SessionEnd { id });
        }
        t.set_event_capacity(2);
        assert_eq!(t.event_count(), 2);
        assert_eq!(t.counter(DROPPED_EVENTS_COUNTER), 2);
    }

    #[test]
    fn reset_preserves_event_capacity() {
        let t = Trace::new();
        t.set_event_capacity(2);
        t.reset();
        for id in 1..=3u64 {
            t.event(us(id), EventKind::SessionStart { id });
        }
        assert_eq!(t.event_count(), 2, "capacity survives reset");
        assert_eq!(t.counter(DROPPED_EVENTS_COUNTER), 1);
    }

    #[test]
    fn request_ctx_stamps_events_and_spans() {
        let t = Trace::new();
        t.event(us(1), EventKind::OsSuspend);
        let ctx = RequestCtx {
            request: 7,
            attempt: 2,
        };
        t.set_request_ctx(Some(ctx));
        t.event(us(2), EventKind::OsResume);
        let s = t.span_start("phase.skinit", us(3));
        t.span_end(s, us(4));
        t.set_request_ctx(None);
        t.event(us(5), EventKind::Reboot);

        let events = t.events();
        assert_eq!(events[0].ctx, None);
        assert_eq!(events[1].ctx, Some(ctx));
        assert_eq!(events[2].ctx, None);
        assert_eq!(t.spans()[0].ctx, Some(ctx));
    }

    #[test]
    fn charge_requires_active_ctx_and_skips_zero() {
        let t = Trace::new();
        t.charge(us(1), "cpu", us(10));
        assert_eq!(t.event_count(), 0, "no ctx: charge is a no-op");
        t.set_request_ctx(Some(RequestCtx {
            request: 1,
            attempt: 1,
        }));
        t.charge(us(2), "cpu", Duration::ZERO);
        assert_eq!(t.event_count(), 0, "zero charge is elided");
        t.charge(us(3), "tpm", us(4));
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            EventKind::Charge {
                op: "tpm".into(),
                ns: 4_000,
            }
        );
        assert!(events[0].ctx.is_some());
    }

    #[test]
    fn session_ids_are_monotone_from_one() {
        let t = Trace::new();
        assert_eq!(t.next_session_id(), 1);
        assert_eq!(t.next_session_id(), 2);
        t.reset();
        assert_eq!(t.next_session_id(), 1, "reset restarts the id sequence");
    }
}
