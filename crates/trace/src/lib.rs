//! Structured trace recorder for the Flicker reproduction.
//!
//! The simulator runs on a virtual clock (`SimClock` in `flicker-machine`),
//! so this crate deliberately knows nothing about clocks: every recording
//! call takes an explicit [`Duration`] timestamp ("virtual nanoseconds since
//! boot"). That keeps `flicker-trace` dependency-free and lets it sit below
//! every other crate in the workspace.
//!
//! Three primitives, mirroring what the perf-baseline harness consumes:
//!
//! * **Spans** — named intervals with nesting ([`Trace::span_start`] /
//!   [`Trace::span_end`]). `run_session` opens one span per Figure-2 phase.
//! * **Counters** — saturating named totals ([`Trace::counter_add`]), e.g.
//!   `tpm.retry` or `mem.zeroize_bytes`.
//! * **Observations** — named duration samples ([`Trace::observe`]) folded
//!   into a log-bucketed [`DurationHistogram`], e.g. per-TPM-ordinal command
//!   latency or net RTTs.
//!
//! A [`Trace`] is a cheap cloneable handle (`Rc<RefCell<..>>`, `!Send` like
//! the rest of the simulator); every component that wants to record clones
//! the same handle, mirroring how the fault injector is threaded through.

mod hist;

pub use hist::DurationHistogram;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

/// Identifies a span within one [`Trace`]; returned by [`Trace::span_start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(usize);

/// A completed (or still-open) named interval.
#[derive(Debug, Clone)]
pub struct Span {
    /// Static span name, e.g. `"phase.skinit"`.
    pub name: &'static str,
    /// Virtual time at which the span was opened.
    pub start: Duration,
    /// `Some(end - start)` once closed, `None` while open.
    pub duration: Option<Duration>,
    /// Nesting depth: 0 for a root span.
    pub depth: usize,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
}

/// One logged PAL/session operation: a typed replacement for the old
/// `(&'static str, Duration)` tuples in `op_log`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEvent {
    /// Operation name, e.g. `"seal"` or `"rsa1024_sign"`.
    pub name: &'static str,
    /// Virtual time at which the operation started.
    pub at: Duration,
    /// How long the operation took on the virtual clock.
    pub duration: Duration,
}

#[derive(Default)]
struct Inner {
    spans: Vec<Span>,
    open: Vec<SpanId>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, DurationHistogram>,
}

/// Cloneable recorder handle. All clones share the same buffers.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Rc<RefCell<Inner>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Opens a span at virtual time `now`, nested under the innermost open
    /// span (if any).
    pub fn span_start(&self, name: &'static str, now: Duration) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let parent = inner.open.last().copied();
        let depth = inner.open.len();
        let id = SpanId(inner.spans.len());
        inner.spans.push(Span {
            name,
            start: now,
            duration: None,
            depth,
            parent,
        });
        inner.open.push(id);
        id
    }

    /// Closes `id` at virtual time `now`. Any spans opened after `id` that
    /// are still open are closed with it (a span cannot outlive its parent).
    /// Closing an already-closed span is a no-op.
    pub fn span_end(&self, id: SpanId, now: Duration) {
        let mut inner = self.inner.borrow_mut();
        let Some(pos) = inner.open.iter().position(|&o| o == id) else {
            return;
        };
        for open_id in inner.open.split_off(pos) {
            let span = &mut inner.spans[open_id.0];
            span.duration = Some(now.saturating_sub(span.start));
        }
    }

    /// Records a fully-formed span in one call (used when start and end are
    /// both known, e.g. when converting a stopwatch measurement).
    pub fn span_closed(&self, name: &'static str, start: Duration, duration: Duration) {
        let mut inner = self.inner.borrow_mut();
        let parent = inner.open.last().copied();
        let depth = inner.open.len();
        inner.spans.push(Span {
            name,
            start,
            duration: Some(duration),
            depth,
            parent,
        });
    }

    /// Adds to a named counter, saturating at `u64::MAX`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        let c = inner.counters.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Records a duration sample into the named histogram.
    pub fn observe(&self, name: &'static str, sample: Duration) {
        let mut inner = self.inner.borrow_mut();
        inner.histograms.entry(name).or_default().observe(sample);
    }

    /// Snapshot of all spans in creation order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.borrow().spans.clone()
    }

    /// Completed spans with the given name, in creation order.
    pub fn spans_named(&self, name: &str) -> Vec<Span> {
        self.inner
            .borrow()
            .spans
            .iter()
            .filter(|s| s.name == name)
            .cloned()
            .collect()
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Clone of the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<DurationHistogram> {
        self.inner.borrow().histograms.get(name).cloned()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(&'static str, DurationHistogram)> {
        self.inner
            .borrow()
            .histograms
            .iter()
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }

    /// Discards all recorded data, keeping the handle (and its clones) live.
    pub fn reset(&self) {
        *self.inner.borrow_mut() = Inner::default();
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Trace")
            .field("spans", &inner.spans.len())
            .field("open", &inner.open.len())
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn span_nesting_tracks_depth_and_parent() {
        let t = Trace::new();
        let outer = t.span_start("outer", us(0));
        let inner = t.span_start("inner", us(10));
        t.span_end(inner, us(25));
        t.span_end(outer, us(40));

        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].duration, Some(us(40)));
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].parent, Some(outer));
        assert_eq!(spans[1].duration, Some(us(15)));
    }

    #[test]
    fn closing_parent_closes_dangling_children() {
        let t = Trace::new();
        let outer = t.span_start("outer", us(0));
        let _inner = t.span_start("inner", us(5));
        t.span_end(outer, us(20));
        let spans = t.spans();
        assert_eq!(spans[1].duration, Some(us(15)), "child closed with parent");
        assert_eq!(spans[0].duration, Some(us(20)));
    }

    #[test]
    fn double_close_is_noop() {
        let t = Trace::new();
        let s = t.span_start("s", us(0));
        t.span_end(s, us(10));
        t.span_end(s, us(99));
        assert_eq!(t.spans()[0].duration, Some(us(10)));
    }

    #[test]
    fn sibling_spans_share_depth() {
        let t = Trace::new();
        let a = t.span_start("a", us(0));
        t.span_end(a, us(1));
        let b = t.span_start("b", us(1));
        t.span_end(b, us(2));
        let spans = t.spans();
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn span_closed_records_under_open_parent() {
        let t = Trace::new();
        let outer = t.span_start("outer", us(0));
        t.span_closed("leaf", us(3), us(4));
        t.span_end(outer, us(10));
        let spans = t.spans();
        assert_eq!(spans[1].parent, Some(outer));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].duration, Some(us(4)));
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let t = Trace::new();
        t.counter_add("c", u64::MAX - 1);
        t.counter_add("c", 5);
        assert_eq!(t.counter("c"), u64::MAX);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn observations_build_histograms() {
        let t = Trace::new();
        for ms in [1u64, 2, 3, 4, 100] {
            t.observe("tpm.TPM_Seal", Duration::from_millis(ms));
        }
        let h = t.histogram("tpm.TPM_Seal").expect("histogram exists");
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Duration::from_millis(100));
        assert!(t.histogram("tpm.TPM_Quote").is_none());
    }

    #[test]
    fn clones_share_state() {
        let a = Trace::new();
        let b = a.clone();
        b.counter_add("shared", 2);
        assert_eq!(a.counter("shared"), 2);
        let s = a.span_start("s", us(0));
        b.span_end(s, us(7));
        assert_eq!(a.spans()[0].duration, Some(us(7)));
    }

    #[test]
    fn reset_clears_everything() {
        let t = Trace::new();
        t.counter_add("c", 1);
        t.span_start("s", us(0));
        t.observe("h", us(1));
        t.reset();
        assert!(t.spans().is_empty());
        assert_eq!(t.counter("c"), 0);
        assert!(t.histogram("h").is_none());
    }
}
