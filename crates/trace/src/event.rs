//! The typed flight-recorder event stream.
//!
//! Spans answer "how long did each phase take"; events answer "what did the
//! platform *do*, in what order". Each [`Event`] is a virtual-clock-stamped
//! [`EventKind`] recorded by the substrate that performed the action — the
//! machine (SKINIT, DEV, interrupt flag), the TPM (per-ordinal commands,
//! PCR extends and resets), physical memory (zeroize sweeps), the OS
//! (suspend/resume lifecycle), and the session driver (session and phase
//! transitions). Injected faults appear in the same stream, so a replay
//! shows exactly which fault landed between which protocol steps.
//!
//! The stream is what `trace::audit` replays to check the paper's Figure-2
//! ordering invariants, and what the JSONL / Chrome-trace exporters emit.

use std::time::Duration;

/// Dapper-style request context: identifies the farm request (trace id) and
/// attempt (span within the trace) an event belongs to.
///
/// Minted by the farm coordinator at admission and stamped onto the serving
/// shard's recorder for the duration of each attempt, so every event the
/// substrate emits while working on a request carries the owner's id
/// without threading a parameter through the whole protocol stack. Events
/// recorded with no context in force are *machine-scoped* (provisioning,
/// probe sessions) or *coordinator-scoped* (queue decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestCtx {
    /// The farm request id (the trace id; unique per submitted request).
    pub request: u64,
    /// 1-based attempt number (the parent span id within the trace: a
    /// retried or requeued request keeps its trace id and opens a new
    /// attempt span).
    pub attempt: u32,
}

/// One recorded platform action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time at which the action completed.
    pub at: Duration,
    /// What happened.
    pub kind: EventKind,
    /// The owning request, when one was in force on the recorder.
    pub ctx: Option<RequestCtx>,
}

impl Event {
    /// An event with no request context (machine- or coordinator-scoped).
    pub fn new(at: Duration, kind: EventKind) -> Event {
        Event {
            at,
            kind,
            ctx: None,
        }
    }
}

/// The kinds of actions the flight recorder distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A Flicker session began (the session driver allocated `id`).
    SessionStart {
        /// Monotonic per-trace session id.
        id: u64,
    },
    /// The session with `id` completed its full Figure-2 timeline.
    SessionEnd {
        /// The id from the matching [`EventKind::SessionStart`].
        id: u64,
    },
    /// A Figure-2 phase opened (e.g. `phase.skinit`).
    PhaseStart {
        /// Phase span name.
        name: String,
    },
    /// A Figure-2 phase closed.
    PhaseEnd {
        /// Phase span name.
        name: String,
    },
    /// A TPM command completed (successfully or not) at a software
    /// locality.
    TpmCommand {
        /// Spec ordinal name, e.g. `TPM_Seal`.
        ordinal: String,
        /// Locality the command was issued at (0 for the OS driver path).
        locality: u8,
        /// Virtual time the command spent executing, in nanoseconds
        /// (per-ordinal drill-down under the `tpm` attribution category).
        dur_ns: u64,
    },
    /// The crypto cost model's decomposition of one TPM ordinal's virtual
    /// time into a named primitive operation (see `flicker-tpm`'s
    /// `costmodel`): `count` operations of `primitive` are modeled to
    /// account for `dur_ns` of the ordinal's charged latency. Pended by
    /// the TPM right after the matching [`EventKind::TpmCommand`], so the
    /// two share a completion timestamp and profiles can nest primitives
    /// under their ordinal.
    CryptoCost {
        /// Spec ordinal name the time belongs to, e.g. `TPM_Quote`.
        ordinal: String,
        /// Primitive operation name (`modmul`, `sha1_compress`,
        /// `sha256_compress`, `hmac`, `aes_block`).
        primitive: String,
        /// Modeled number of primitive operations.
        count: u64,
        /// Virtual time attributed to this primitive, in nanoseconds.
        dur_ns: u64,
    },
    /// Virtual time charged against the active request under a named
    /// attribution category (`cpu`, `tpm`, `net`, `skinit`, `tpm_backoff`,
    /// `retry_backoff`) or a `warm_saved.*` estimate (reported separately,
    /// not part of wall time). Emitted only while a [`RequestCtx`] is in
    /// force, so idle shards and provisioning stay cheap.
    Charge {
        /// Attribution category the time belongs to.
        op: String,
        /// Charged duration in nanoseconds.
        ns: u64,
    },
    /// Clock-alignment anchor: the farm coordinator pairs its own
    /// wall-clock stamp (the event's `at`) with the serving shard's
    /// virtual clock reading at the same scheduling instant, letting the
    /// timeline merge place per-shard events on the farm-wide axis.
    Anchor {
        /// Shard index whose clock is being anchored.
        machine: u64,
        /// The shard's virtual clock reading, in nanoseconds.
        shard_ns: u64,
    },
    /// A PCR was extended.
    PcrExtend {
        /// PCR index.
        index: u32,
        /// Locality of the extend (4 only on the hardware SKINIT path).
        locality: u8,
    },
    /// The dynamic PCRs were reset (17–23 to zero).
    PcrReset {
        /// The PCR whose reset matters to the audit (17).
        index: u32,
        /// Locality presented for the reset; only 4 is legitimate.
        locality: u8,
    },
    /// The DEV began protecting a physical range from device access.
    DevProtect {
        /// Protected base address.
        base: u64,
        /// Protected length in bytes.
        len: u64,
    },
    /// All DEV protections of the active launch were released.
    DevRelease {
        /// How many protection tokens were released.
        count: u64,
    },
    /// The BSP's interrupt flag changed.
    InterruptsChanged {
        /// New state: `true` means interrupts are deliverable again.
        enabled: bool,
    },
    /// `SKINIT` completed: the SLB is measured and the PAL is about to run.
    Skinit {
        /// Physical base of the SLB.
        slb_base: u64,
        /// Header-declared (measured) SLB length.
        slb_len: u64,
    },
    /// A physical memory range was overwritten with zeroes.
    Zeroize {
        /// Erased base address.
        base: u64,
        /// Erased length in bytes.
        len: u64,
    },
    /// An armed fault fired in some substrate.
    FaultInjected {
        /// Stable fault-kind name (see `flicker_faults::fired`).
        fault: String,
    },
    /// The OS suspended itself for a session (APs parked, state saved).
    OsSuspend,
    /// The OS resumed after a session.
    OsResume,
    /// The platform rebooted (power cycle or explicit reset): RAM gone,
    /// dynamic PCRs back to −1, DEV cleared, any launch destroyed.
    Reboot,
    /// A farm-level scheduling decision (the sharded attestation service's
    /// robustness policy layer). Stable `action` names are defined by
    /// `flicker-farm` (`enqueued`, `admitted`, `running`, `done`, `failed`,
    /// `retry`, `shed`, `timed_out`, `requeued`, `quarantine`, `probe`,
    /// `readmitted`).
    Farm {
        /// Decision name (snake_case).
        action: String,
        /// Request id the decision concerns (0 for machine-level actions).
        request: u64,
        /// Machine shard index ([`u64::MAX`] when no machine is involved,
        /// e.g. an admission-control shed decided at the queue).
        machine: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the kind (the JSONL `kind` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SessionStart { .. } => "session_start",
            EventKind::SessionEnd { .. } => "session_end",
            EventKind::PhaseStart { .. } => "phase_start",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::TpmCommand { .. } => "tpm_command",
            EventKind::CryptoCost { .. } => "crypto_cost",
            EventKind::Charge { .. } => "charge",
            EventKind::Anchor { .. } => "anchor",
            EventKind::PcrExtend { .. } => "pcr_extend",
            EventKind::PcrReset { .. } => "pcr_reset",
            EventKind::DevProtect { .. } => "dev_protect",
            EventKind::DevRelease { .. } => "dev_release",
            EventKind::InterruptsChanged { .. } => "interrupts",
            EventKind::Skinit { .. } => "skinit",
            EventKind::Zeroize { .. } => "zeroize",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::OsSuspend => "os_suspend",
            EventKind::OsResume => "os_resume",
            EventKind::Reboot => "reboot",
            EventKind::Farm { .. } => "farm",
        }
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    escape(value, out);
    out.push('"');
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

impl Event {
    /// Serializes the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"at_ns\":");
        let ns = u64::try_from(self.at.as_nanos()).unwrap_or(u64::MAX);
        s.push_str(&ns.to_string());
        push_str_field(&mut s, "kind", self.kind.name());
        match &self.kind {
            EventKind::SessionStart { id } | EventKind::SessionEnd { id } => {
                push_u64_field(&mut s, "id", *id);
            }
            EventKind::PhaseStart { name } | EventKind::PhaseEnd { name } => {
                push_str_field(&mut s, "name", name);
            }
            EventKind::TpmCommand {
                ordinal,
                locality,
                dur_ns,
            } => {
                push_str_field(&mut s, "ordinal", ordinal);
                push_u64_field(&mut s, "locality", u64::from(*locality));
                push_u64_field(&mut s, "dur_ns", *dur_ns);
            }
            EventKind::CryptoCost {
                ordinal,
                primitive,
                count,
                dur_ns,
            } => {
                push_str_field(&mut s, "ordinal", ordinal);
                push_str_field(&mut s, "primitive", primitive);
                push_u64_field(&mut s, "count", *count);
                push_u64_field(&mut s, "dur_ns", *dur_ns);
            }
            EventKind::Charge { op, ns } => {
                push_str_field(&mut s, "op", op);
                push_u64_field(&mut s, "ns", *ns);
            }
            EventKind::Anchor { machine, shard_ns } => {
                push_u64_field(&mut s, "machine", *machine);
                push_u64_field(&mut s, "shard_ns", *shard_ns);
            }
            EventKind::PcrExtend { index, locality } | EventKind::PcrReset { index, locality } => {
                push_u64_field(&mut s, "index", u64::from(*index));
                push_u64_field(&mut s, "locality", u64::from(*locality));
            }
            EventKind::DevProtect { base, len } => {
                push_u64_field(&mut s, "base", *base);
                push_u64_field(&mut s, "len", *len);
            }
            EventKind::DevRelease { count } => push_u64_field(&mut s, "count", *count),
            EventKind::InterruptsChanged { enabled } => {
                s.push_str(",\"enabled\":");
                s.push_str(if *enabled { "true" } else { "false" });
            }
            EventKind::Skinit { slb_base, slb_len } => {
                push_u64_field(&mut s, "slb_base", *slb_base);
                push_u64_field(&mut s, "slb_len", *slb_len);
            }
            EventKind::Zeroize { base, len } => {
                push_u64_field(&mut s, "base", *base);
                push_u64_field(&mut s, "len", *len);
            }
            EventKind::FaultInjected { fault } => push_str_field(&mut s, "fault", fault),
            EventKind::Farm {
                action,
                request,
                machine,
            } => {
                push_str_field(&mut s, "action", action);
                push_u64_field(&mut s, "request", *request);
                push_u64_field(&mut s, "machine", *machine);
            }
            EventKind::OsSuspend | EventKind::OsResume | EventKind::Reboot => {}
        }
        if let Some(ctx) = self.ctx {
            push_u64_field(&mut s, "req", ctx.request);
            push_u64_field(&mut s, "attempt", u64::from(ctx.attempt));
        }
        s.push('}');
        s
    }

    /// Parses one line in the exact format [`Event::to_jsonl`] emits.
    ///
    /// This is a line-oriented field extractor, not a general JSON parser:
    /// it accepts the shapes this crate writes (and tolerates reordered
    /// fields), which is all the round-trip and `audit --jsonl` paths need.
    pub fn from_jsonl(line: &str) -> Result<Event, String> {
        let at_ns = field_u64(line, "at_ns").ok_or_else(|| format!("missing at_ns: {line}"))?;
        let at = Duration::from_nanos(at_ns);
        let kind_name = field_str(line, "kind").ok_or_else(|| format!("missing kind: {line}"))?;
        let req_u64 = |key: &str| {
            field_u64(line, key).ok_or_else(|| format!("missing {key} in {kind_name} event"))
        };
        let req_str = |key: &str| {
            field_str(line, key).ok_or_else(|| format!("missing {key} in {kind_name} event"))
        };
        let kind = match kind_name.as_str() {
            "session_start" => EventKind::SessionStart { id: req_u64("id")? },
            "session_end" => EventKind::SessionEnd { id: req_u64("id")? },
            "phase_start" => EventKind::PhaseStart {
                name: req_str("name")?,
            },
            "phase_end" => EventKind::PhaseEnd {
                name: req_str("name")?,
            },
            "tpm_command" => EventKind::TpmCommand {
                ordinal: req_str("ordinal")?,
                locality: req_u64("locality")? as u8,
                // Optional for lines written before durations were recorded.
                dur_ns: field_u64(line, "dur_ns").unwrap_or(0),
            },
            "crypto_cost" => EventKind::CryptoCost {
                ordinal: req_str("ordinal")?,
                primitive: req_str("primitive")?,
                count: req_u64("count")?,
                dur_ns: req_u64("dur_ns")?,
            },
            "charge" => EventKind::Charge {
                op: req_str("op")?,
                ns: req_u64("ns")?,
            },
            "anchor" => EventKind::Anchor {
                machine: req_u64("machine")?,
                shard_ns: req_u64("shard_ns")?,
            },
            "pcr_extend" => EventKind::PcrExtend {
                index: req_u64("index")? as u32,
                locality: req_u64("locality")? as u8,
            },
            "pcr_reset" => EventKind::PcrReset {
                index: req_u64("index")? as u32,
                locality: req_u64("locality")? as u8,
            },
            "dev_protect" => EventKind::DevProtect {
                base: req_u64("base")?,
                len: req_u64("len")?,
            },
            "dev_release" => EventKind::DevRelease {
                count: req_u64("count")?,
            },
            "interrupts" => EventKind::InterruptsChanged {
                enabled: field_bool(line, "enabled")
                    .ok_or_else(|| format!("missing enabled: {line}"))?,
            },
            "skinit" => EventKind::Skinit {
                slb_base: req_u64("slb_base")?,
                slb_len: req_u64("slb_len")?,
            },
            "zeroize" => EventKind::Zeroize {
                base: req_u64("base")?,
                len: req_u64("len")?,
            },
            "fault" => EventKind::FaultInjected {
                fault: req_str("fault")?,
            },
            "os_suspend" => EventKind::OsSuspend,
            "os_resume" => EventKind::OsResume,
            "reboot" => EventKind::Reboot,
            "farm" => EventKind::Farm {
                action: req_str("action")?,
                request: req_u64("request")?,
                machine: req_u64("machine")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        let ctx = field_u64(line, "req").map(|request| RequestCtx {
            request,
            attempt: field_u64(line, "attempt").unwrap_or(1) as u32,
        });
        Ok(Event { at, kind, ctx })
    }
}

/// Finds `"key":` in `line` and returns the byte offset just past the colon.
fn value_offset(line: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    line.find(&needle).map(|i| i + needle.len())
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let rest = &line[value_offset(line, key)?..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    let rest = &line[value_offset(line, key)?..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[value_offset(line, key)?..];
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: Event) {
        let line = e.to_jsonl();
        let back = Event::from_jsonl(&line).expect("parses");
        assert_eq!(back, e, "line was {line}");
    }

    #[test]
    fn every_kind_round_trips() {
        let at = Duration::from_micros(1234);
        for kind in [
            EventKind::SessionStart { id: 7 },
            EventKind::SessionEnd { id: 7 },
            EventKind::PhaseStart {
                name: "phase.skinit".into(),
            },
            EventKind::PhaseEnd {
                name: "phase.skinit".into(),
            },
            EventKind::TpmCommand {
                ordinal: "TPM_Seal".into(),
                locality: 0,
                dur_ns: 417_000,
            },
            EventKind::CryptoCost {
                ordinal: "TPM_Quote".into(),
                primitive: "modmul".into(),
                count: 4098,
                dur_ns: 904_611_000,
            },
            EventKind::Charge {
                op: "tpm_backoff".into(),
                ns: 1_000_000,
            },
            EventKind::Anchor {
                machine: 3,
                shard_ns: 55_000_000,
            },
            EventKind::PcrExtend {
                index: 17,
                locality: 4,
            },
            EventKind::PcrReset {
                index: 17,
                locality: 4,
            },
            EventKind::DevProtect {
                base: 0x10_0000,
                len: 0x1_0000,
            },
            EventKind::DevRelease { count: 2 },
            EventKind::InterruptsChanged { enabled: false },
            EventKind::Skinit {
                slb_base: 0x10_0000,
                slb_len: 4736,
            },
            EventKind::Zeroize {
                base: 0,
                len: u64::MAX,
            },
            EventKind::FaultInjected {
                fault: "torn_nv_write".into(),
            },
            EventKind::OsSuspend,
            EventKind::OsResume,
            EventKind::Reboot,
            EventKind::Farm {
                action: "quarantine".into(),
                request: 0,
                machine: 3,
            },
        ] {
            round_trip(Event::new(at, kind.clone()));
            round_trip(Event {
                at,
                kind,
                ctx: Some(RequestCtx {
                    request: 42,
                    attempt: 3,
                }),
            });
        }
    }

    #[test]
    fn strings_with_specials_round_trip() {
        round_trip(Event::new(
            Duration::ZERO,
            EventKind::FaultInjected {
                fault: "weird \"name\"\\with\nspecials".into(),
            },
        ));
    }

    #[test]
    fn request_field_does_not_shadow_ctx() {
        // A `farm` event has its own "request" field; the optional ctx
        // "req" field must neither collide with it on write nor be
        // mistaken for it on read.
        let e = Event {
            at: Duration::from_micros(5),
            kind: EventKind::Farm {
                action: "running".into(),
                request: 9,
                machine: 1,
            },
            ctx: Some(RequestCtx {
                request: 9,
                attempt: 2,
            }),
        };
        round_trip(e.clone());
        let bare = Event::new(
            Duration::from_micros(5),
            EventKind::Farm {
                action: "running".into(),
                request: 9,
                machine: 1,
            },
        );
        let back = Event::from_jsonl(&bare.to_jsonl()).unwrap();
        assert_eq!(back.ctx, None, "no ctx must parse as no ctx");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::from_jsonl("not json").is_err());
        assert!(Event::from_jsonl("{\"at_ns\":1,\"kind\":\"no_such_kind\"}").is_err());
        assert!(Event::from_jsonl("{\"at_ns\":1,\"kind\":\"skinit\"}").is_err());
    }
}
