//! Log-bucketed duration histograms on the virtual clock.
//!
//! The recorder must stay cheap enough to leave enabled on the hot path, so
//! a histogram is a fixed array of counts — no per-sample allocation, no
//! sorted sample vector. Buckets are HDR-style: each power-of-two octave of
//! nanoseconds is split into [`SUBBUCKETS`] linear sub-buckets, giving a
//! worst-case relative quantile error of `1/SUBBUCKETS` (~6 %) across the
//! full nanosecond-to-hours range. Exact `min`/`max`/`sum`/`count` are kept
//! alongside so the extremes and the mean are precise.

use std::time::Duration;

/// Sub-buckets per power-of-two octave (must be a power of two).
pub const SUBBUCKETS: u64 = 16;
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();
/// Enough buckets to index any u64 nanosecond value.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUBBUCKETS as usize;

/// Bucket index for a nanosecond value (monotone in `ns`).
fn bucket_index(ns: u64) -> usize {
    if ns < SUBBUCKETS {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let shift = msb - SUB_BITS;
    let base = (((msb - SUB_BITS) as u64 + 1) << SUB_BITS) as usize;
    base + ((ns >> shift) - SUBBUCKETS) as usize
}

/// Inclusive lower bound of a bucket's value range.
fn bucket_low(index: usize) -> u64 {
    let i = index as u64;
    if i < SUBBUCKETS {
        return i;
    }
    let octave = (i >> SUB_BITS) - 1;
    let within = i & (SUBBUCKETS - 1);
    (SUBBUCKETS + within) << octave
}

/// Exclusive upper bound of a bucket's value range, saturating at
/// `u64::MAX` for the final bucket (whose true bound would overflow).
fn bucket_high(index: usize) -> u64 {
    let i = (index + 1) as u64;
    if i < SUBBUCKETS {
        return i;
    }
    let octave = (i >> SUB_BITS) - 1;
    let within = i & (SUBBUCKETS - 1);
    u64::try_from(u128::from(SUBBUCKETS + within) << octave).unwrap_or(u64::MAX)
}

/// A fixed-size duration histogram with exact count/sum/min/max.
#[derive(Clone)]
pub struct DurationHistogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            buckets: Box::new([0u64; NUM_BUCKETS]),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl DurationHistogram {
    /// Records one sample.
    pub fn observe(&mut self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest sample (`Duration::ZERO` when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_ns)
        }
    }

    /// Exact largest sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Exact arithmetic mean (`Duration::ZERO` when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Quantile estimate for `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the sample of that rank, clamped to the exact min/max.
    /// Returns `Duration::ZERO` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= rank {
                let low = bucket_low(i);
                let high = bucket_low(i + 1);
                let mid = (low + high) / 2;
                return Duration::from_nanos(mid.clamp(self.min_ns, self.max_ns));
            }
        }
        self.max()
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(u64::try_from(self.sum_ns).unwrap_or(u64::MAX))
    }

    /// Iterates the non-empty buckets in ascending order as
    /// `(low, high, count)`, where the bucket covered samples in
    /// `[low, high)`. This is the view text exporters (Prometheus-style
    /// histograms) need: cumulative `le` bounds are the `high` values.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (Duration, Duration, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                (
                    Duration::from_nanos(bucket_low(i)),
                    Duration::from_nanos(bucket_high(i)),
                    n,
                )
            })
    }

    /// The p50 / p95 / p99 triple used by the perf baseline.
    pub fn percentiles(&self) -> (Duration, Duration, Duration) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

impl std::fmt::Debug for DurationHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurationHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("mean", &self.mean())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut last = 0usize;
        for ns in 0..10_000u64 {
            let i = bucket_index(ns);
            assert!(i >= last, "index not monotone at {ns}");
            assert!(i - last <= 1, "index jumps at {ns}");
            last = i;
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_low_inverts_index() {
        for ns in [0u64, 1, 15, 16, 17, 1000, 123_456, u64::MAX / 2] {
            let i = bucket_index(ns);
            assert!(bucket_low(i) <= ns, "low({i}) > {ns}");
            assert!(bucket_low(i + 1) > ns, "low({}) <= {ns}", i + 1);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = DurationHistogram::default();
        for ns in 0..16u64 {
            h.observe(Duration::from_nanos(ns));
        }
        assert_eq!(h.quantile(0.0), Duration::from_nanos(0));
        assert_eq!(h.max(), Duration::from_nanos(15));
    }

    #[test]
    fn quantiles_of_uniform_samples_are_close() {
        let mut h = DurationHistogram::default();
        for us in 1..=1000u64 {
            h.observe(Duration::from_micros(us));
        }
        let p50 = h.quantile(0.50).as_secs_f64();
        let p95 = h.quantile(0.95).as_secs_f64();
        let p99 = h.quantile(0.99).as_secs_f64();
        assert!((p50 - 500e-6).abs() / 500e-6 < 0.07, "p50 {p50}");
        assert!((p95 - 950e-6).abs() / 950e-6 < 0.07, "p95 {p95}");
        assert!((p99 - 990e-6).abs() / 990e-6 < 0.07, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn exact_stats() {
        let mut h = DurationHistogram::default();
        h.observe(Duration::from_millis(10));
        h.observe(Duration::from_millis(20));
        h.observe(Duration::from_millis(60));
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Duration::from_millis(10));
        assert_eq!(h.max(), Duration::from_millis(60));
        assert_eq!(h.mean(), Duration::from_millis(30));
    }

    #[test]
    fn merge_combines() {
        let mut a = DurationHistogram::default();
        let mut b = DurationHistogram::default();
        a.observe(Duration::from_millis(1));
        b.observe(Duration::from_millis(9));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Duration::from_millis(1));
        assert_eq!(a.max(), Duration::from_millis(9));
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = DurationHistogram::default();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    fn nonzero_buckets_cover_all_samples_in_order() {
        let mut h = DurationHistogram::default();
        for ns in [3u64, 3, 900, 1_000_003, u64::MAX] {
            h.observe(Duration::from_nanos(ns));
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets.iter().map(|&(_, _, n)| n).sum::<u64>(), h.count());
        for window in buckets.windows(2) {
            assert!(window[0].1 <= window[1].0, "buckets out of order");
        }
        for &(low, high, _) in &buckets {
            assert!(low < high, "empty-range bucket ({low:?}, {high:?})");
        }
        assert_eq!(buckets[0].0, Duration::from_nanos(3));
        assert_eq!(buckets[0].2, 2, "both 3ns samples share the exact bucket");
        let last = buckets.last().unwrap();
        assert_eq!(
            last.1,
            Duration::from_nanos(u64::MAX),
            "final bound saturates"
        );
        assert!(h.nonzero_buckets().count() < 8);
        assert_eq!(DurationHistogram::default().nonzero_buckets().count(), 0);
    }

    #[test]
    fn sum_is_exact() {
        let mut h = DurationHistogram::default();
        h.observe(Duration::from_millis(10));
        h.observe(Duration::from_millis(25));
        assert_eq!(h.sum(), Duration::from_millis(35));
        assert_eq!(DurationHistogram::default().sum(), Duration::ZERO);
    }

    #[test]
    fn quantile_clamped_to_observed_range() {
        let mut h = DurationHistogram::default();
        h.observe(Duration::from_nanos(1_000_003));
        let q = h.quantile(0.5);
        assert_eq!(q, Duration::from_nanos(1_000_003), "single sample exact");
    }
}
