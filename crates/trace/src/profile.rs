//! Profile trees and folded-stack (flamegraph) rendering over a recorded
//! [`Trace`].
//!
//! This is the fourth observability layer: spans say how long each
//! Figure-2 phase took, events say what the platform did, attribution
//! says where a request's wall time went — the profile says where the
//! time *inside* the phases goes, down to the TPM ordinal and the crypto
//! primitive the cost model blames (see `flicker-tpm`'s `costmodel` and
//! [`EventKind::CryptoCost`]).
//!
//! A [`Profile`] is a merged tree: every session contributes to the same
//! `session` root, every `phase.pal` instance to the same child, every
//! `TPM_Seal` under it to the same grandchild. Node weights are inclusive
//! virtual time; the *self* weight (inclusive minus children) is what the
//! folded-stack export emits, so the folded weights sum back to the root
//! totals — the reconciliation property the CI gate checks.
//!
//! The folded format is the collapsed-stack interchange text every
//! flamegraph renderer reads: one `frame;frame;frame weight` line per
//! stack, weights in virtual nanoseconds.

use crate::{EventKind, Trace};
use std::collections::BTreeMap;
use std::time::Duration;

/// Synthetic root merging every `SessionStart`..`SessionEnd` window.
pub const SESSION_ROOT: &str = "session";
/// Synthetic root for events recorded outside any span or session window
/// (provisioning, probes).
pub const UNTRACED_ROOT: &str = "(untraced)";

/// One merged node of a profile tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// Inclusive virtual time, in nanoseconds, across every merged
    /// instance of this stack.
    pub total_ns: u64,
    /// How many instances merged into this node (0 for containers that
    /// only exist because a descendant was recorded).
    pub count: u64,
    /// Child frames by name (deterministic order).
    pub children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    /// Inclusive time of the children.
    fn children_ns(&self) -> u64 {
        self.children.values().map(|c| c.total_ns).sum()
    }

    /// Self weight: inclusive minus children, clamped at zero.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.children_ns())
    }
}

/// A merged profile tree built from one recorded trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Root frames by name.
    pub roots: BTreeMap<String, ProfileNode>,
    /// Nanoseconds by which children exceeded their parent's inclusive
    /// time somewhere in the tree (clamped out of the folded output). A
    /// non-trivial overflow means the trace's nesting model is wrong —
    /// the reconciliation gate fails when it passes 1 % of the total.
    pub overflow_ns: u64,
}

/// Builds the merged profile tree for `trace`.
///
/// Structure: completed spans nest by their parent links; spans and
/// events inside a `SessionStart`..`SessionEnd` window nest under the
/// [`SESSION_ROOT`]; each [`EventKind::TpmCommand`] becomes a
/// `tpm.<ordinal>` frame under its innermost enclosing span; each
/// [`EventKind::CryptoCost`] becomes a primitive frame under that
/// ordinal's frame.
pub fn build(trace: &Trace) -> Profile {
    let spans = trace.spans();
    let events = trace.events();

    // Session windows, paired by id.
    let mut starts: BTreeMap<u64, Duration> = BTreeMap::new();
    let mut windows: Vec<(Duration, Duration)> = Vec::new();
    for e in &events {
        match &e.kind {
            EventKind::SessionStart { id } => {
                starts.insert(*id, e.at);
            }
            EventKind::SessionEnd { id } => {
                if let Some(s) = starts.remove(id) {
                    windows.push((s, e.at));
                }
            }
            _ => {}
        }
    }
    let in_window = |at: Duration| windows.iter().any(|&(s, e)| s <= at && at <= e);

    // Root-first name path per span instance, with the session prefix
    // decided at the root of each chain.
    let mut paths: Vec<Vec<String>> = Vec::with_capacity(spans.len());
    for s in &spans {
        let mut path = match s.parent {
            Some(p) => paths[p.0].clone(),
            None => {
                if in_window(s.start) {
                    vec![SESSION_ROOT.to_string()]
                } else {
                    Vec::new()
                }
            }
        };
        path.push(s.name.to_string());
        paths.push(path);
    }

    let mut profile = Profile::default();
    for (s, e) in &windows {
        insert(
            &mut profile.roots,
            &[SESSION_ROOT.to_string()],
            (*e - *s).as_nanos() as u64,
            1,
        );
    }
    for (i, s) in spans.iter().enumerate() {
        let Some(d) = s.duration else { continue };
        insert(&mut profile.roots, &paths[i], d.as_nanos() as u64, 1);
    }

    // Innermost completed span instance containing the whole interval
    // `[start, end]`. An event's weight covers its full duration, and
    // events are stamped at completion (drain) time — so containment of
    // the completion *point* is not enough: a 901 ms unseal draining
    // inside a 10 ms phase span must climb to an ancestor that can hold
    // it, or the tree's weights stop reconciling.
    let enclosing = |start: Duration, end: Duration| -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, s) in spans.iter().enumerate() {
            let Some(d) = s.duration else { continue };
            if s.start <= start && end <= s.start + d {
                let deeper = match best {
                    None => true,
                    Some(b) => {
                        s.depth > spans[b].depth
                            || (s.depth == spans[b].depth && s.start >= spans[b].start)
                    }
                };
                if deeper {
                    best = Some(i);
                }
            }
        }
        best
    };

    let event_path = |at: Duration, dur_ns: u64, tail: &[String]| -> Vec<String> {
        let start = at.saturating_sub(Duration::from_nanos(dur_ns));
        let mut path = match enclosing(start, at) {
            Some(i) => paths[i].clone(),
            // No span holds the whole interval; the merged session root
            // can, whenever a session window holds it. Work that only
            // *completes* inside a window (e.g. the OS-level quote that
            // runs between sessions and drains at the next one) is not
            // session time and must not inflate the session root.
            None if windows.iter().any(|&(ws, we)| ws <= start && at <= we) => {
                vec![SESSION_ROOT.to_string()]
            }
            None => vec![UNTRACED_ROOT.to_string()],
        };
        path.extend(tail.iter().cloned());
        path
    };

    // A command's CryptoCost decomposition is pended right after its
    // TpmCommand and shares the completion timestamp; resolving the
    // parent once per command keeps the primitives under the same
    // ordinal node even though their own (fractional) durations would
    // resolve to a deeper span.
    let mut cmd_paths: BTreeMap<(Duration, String), Vec<String>> = BTreeMap::new();
    for e in &events {
        match &e.kind {
            EventKind::TpmCommand {
                ordinal, dur_ns, ..
            } => {
                let path = event_path(e.at, *dur_ns, &[format!("tpm.{ordinal}")]);
                cmd_paths.insert((e.at, ordinal.clone()), path.clone());
                insert(&mut profile.roots, &path, *dur_ns, 1);
            }
            EventKind::CryptoCost {
                ordinal,
                primitive,
                dur_ns,
                count,
            } => {
                let mut path = match cmd_paths.get(&(e.at, ordinal.clone())) {
                    Some(p) => p.clone(),
                    None => event_path(e.at, *dur_ns, &[format!("tpm.{ordinal}")]),
                };
                path.push(primitive.clone());
                insert(&mut profile.roots, &path, *dur_ns, *count);
            }
            _ => {}
        }
    }

    // Containers that only exist because of descendants inherit their
    // children's total; then account clamping losses.
    for node in profile.roots.values_mut() {
        fill_containers(node);
    }
    let mut overflow = 0u64;
    for node in profile.roots.values() {
        sum_overflow(node, &mut overflow);
    }
    profile.overflow_ns = overflow;
    profile
}

fn insert(roots: &mut BTreeMap<String, ProfileNode>, path: &[String], ns: u64, count: u64) {
    debug_assert!(!path.is_empty());
    let mut node = roots.entry(path[0].clone()).or_default();
    for name in &path[1..] {
        node = node.children.entry(name.clone()).or_default();
    }
    node.total_ns = node.total_ns.saturating_add(ns);
    node.count = node.count.saturating_add(count);
}

fn fill_containers(node: &mut ProfileNode) {
    for c in node.children.values_mut() {
        fill_containers(c);
    }
    if node.count == 0 && node.total_ns == 0 {
        node.total_ns = node.children_ns();
    }
}

fn sum_overflow(node: &ProfileNode, overflow: &mut u64) {
    let children = node.children_ns();
    *overflow += children.saturating_sub(node.total_ns);
    for c in node.children.values() {
        sum_overflow(c, overflow);
    }
}

impl Profile {
    /// Sum of the root frames' inclusive time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.roots.values().map(|r| r.total_ns).sum())
    }

    /// Inclusive time of the merged [`SESSION_ROOT`] (zero when the trace
    /// recorded no sessions).
    pub fn session_total(&self) -> Duration {
        Duration::from_nanos(self.roots.get(SESSION_ROOT).map_or(0, |r| r.total_ns))
    }

    /// Fraction of the total weight lost to child-exceeds-parent
    /// clamping; the reconciliation gate requires `< 0.01`.
    pub fn reconciliation_error(&self) -> f64 {
        let total = self.roots.values().map(|r| r.total_ns).sum::<u64>();
        if total == 0 {
            return 0.0;
        }
        self.overflow_ns as f64 / total as f64
    }

    /// Looks a node up by path.
    pub fn get(&self, path: &[&str]) -> Option<&ProfileNode> {
        let mut node = self.roots.get(*path.first()?)?;
        for name in &path[1..] {
            node = node.children.get(*name)?;
        }
        Some(node)
    }

    /// Per-stack *self* weights, keyed by `;`-joined path — exactly the
    /// content of [`Profile::folded`], in map form for diffing.
    pub fn folded_weights(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (name, node) in &self.roots {
            collect_folded(name, node, &mut out);
        }
        out
    }

    /// Collapsed-stack text: one `path;frame weight` line per stack with
    /// non-zero self time, weights in virtual nanoseconds, lines in
    /// deterministic path order. The weights sum to [`Profile::total`]
    /// minus clamping losses.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, w) in self.folded_weights() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }

    /// The `n` heaviest stacks by self weight, heaviest first (path
    /// breaks ties).
    pub fn top_self(&self, n: usize) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.folded_weights().into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Renders the merged tree as Chrome `trace_event` JSON: one `X`
    /// slice per node, children laid out sequentially inside their
    /// parent, so `chrome://tracing` / Perfetto draw the merged flame.
    pub fn to_chrome_json(&self) -> String {
        let mut entries: Vec<String> = Vec::new();
        let mut offset = 0u64;
        for (name, node) in &self.roots {
            chrome_node(name, node, offset, &mut entries);
            offset += node.total_ns;
        }
        format!("{{\"traceEvents\":[{}]}}", entries.join(","))
    }
}

fn collect_folded(path: &str, node: &ProfileNode, out: &mut BTreeMap<String, u64>) {
    let own = node.self_ns();
    if own > 0 {
        *out.entry(path.to_string()).or_insert(0) += own;
    }
    for (name, c) in &node.children {
        collect_folded(&format!("{path};{name}"), c, out);
    }
}

fn chrome_node(name: &str, node: &ProfileNode, start_ns: u64, entries: &mut Vec<String>) {
    entries.push(format!(
        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"profile\",\"pid\":1,\"tid\":1,\
         \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"count\":{},\"self_ns\":{}}}}}",
        escape(name),
        start_ns as f64 / 1e3,
        node.total_ns as f64 / 1e3,
        node.count,
        node.self_ns(),
    ));
    let mut offset = start_ns;
    for (cname, c) in &node.children {
        chrome_node(cname, c, offset, entries);
        offset += c.total_ns;
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses collapsed-stack text (the exact format [`Profile::folded`]
/// emits; blank lines tolerated) back into a path → weight map.
pub fn parse_folded(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (path, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no weight in {line:?}", i + 1))?;
        let w: u64 = weight
            .parse()
            .map_err(|_| format!("line {}: bad weight {weight:?}", i + 1))?;
        if path.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        *out.entry(path.to_string()).or_insert(0) += w;
    }
    Ok(out)
}

/// One stack's weight change between two folded profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedDelta {
    /// `;`-joined stack path.
    pub path: String,
    /// Weight in the baseline profile (0 when the stack is new).
    pub before: u64,
    /// Weight in the subject profile (0 when the stack vanished).
    pub after: u64,
}

impl FoldedDelta {
    /// Signed change `after - before`.
    pub fn delta(&self) -> i128 {
        i128::from(self.after) - i128::from(self.before)
    }
}

/// Diffs two folded-weight maps: every stack present in either, largest
/// absolute change first (path breaks ties). Unchanged stacks are
/// omitted.
pub fn diff_folded(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> Vec<FoldedDelta> {
    let mut out: Vec<FoldedDelta> = Vec::new();
    let paths: std::collections::BTreeSet<&String> = before.keys().chain(after.keys()).collect();
    for path in paths {
        let b = before.get(path).copied().unwrap_or(0);
        let a = after.get(path).copied().unwrap_or(0);
        if a != b {
            out.push(FoldedDelta {
                path: path.clone(),
                before: b,
                after: a,
            });
        }
    }
    out.sort_by(|x, y| {
        y.delta()
            .abs()
            .cmp(&x.delta().abs())
            .then(x.path.cmp(&y.path))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session_trace() -> Trace {
        let t = Trace::new();
        let ms = Duration::from_millis;
        t.event(ms(0), EventKind::SessionStart { id: 1 });
        let pal = t.span_start("phase.pal", ms(10));
        t.event(
            ms(30),
            EventKind::TpmCommand {
                ordinal: "TPM_Unseal".into(),
                locality: 0,
                dur_ns: 15_000_000,
            },
        );
        t.event(
            ms(30),
            EventKind::CryptoCost {
                ordinal: "TPM_Unseal".into(),
                primitive: "modmul".into(),
                count: 3074,
                dur_ns: 13_800_000,
            },
        );
        t.span_end(pal, ms(50));
        let cleanup = t.span_start("phase.cleanup", ms(50));
        t.span_end(cleanup, ms(60));
        t.event(ms(70), EventKind::SessionEnd { id: 1 });
        t
    }

    #[test]
    fn tree_nests_spans_ordinals_and_primitives() {
        let p = build(&session_trace());
        assert_eq!(p.session_total(), Duration::from_millis(70));
        let pal = p.get(&[SESSION_ROOT, "phase.pal"]).unwrap();
        assert_eq!(pal.total_ns, 40_000_000);
        let unseal = p
            .get(&[SESSION_ROOT, "phase.pal", "tpm.TPM_Unseal"])
            .unwrap();
        assert_eq!(unseal.total_ns, 15_000_000);
        let modmul = p
            .get(&[SESSION_ROOT, "phase.pal", "tpm.TPM_Unseal", "modmul"])
            .unwrap();
        assert_eq!(modmul.count, 3074);
        assert_eq!(p.overflow_ns, 0);
        assert_eq!(p.reconciliation_error(), 0.0);
    }

    #[test]
    fn folded_weights_sum_to_total() {
        let p = build(&session_trace());
        let sum: u64 = p.folded_weights().values().sum();
        assert_eq!(Duration::from_nanos(sum), p.total());
        assert_eq!(p.total(), Duration::from_millis(70));
    }

    #[test]
    fn folded_round_trips_through_parse() {
        let p = build(&session_trace());
        let parsed = parse_folded(&p.folded()).unwrap();
        assert_eq!(parsed, p.folded_weights());
        assert!(!parsed.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_folded("stack-without-weight").is_err());
        assert!(parse_folded("a;b notanumber").is_err());
        assert!(parse_folded(" 12").is_err());
        assert_eq!(parse_folded("\n\n").unwrap().len(), 0);
    }

    #[test]
    fn untraced_events_get_their_own_root() {
        let t = Trace::new();
        t.event(
            Duration::from_millis(5),
            EventKind::TpmCommand {
                ordinal: "TPM_MakeIdentity".into(),
                locality: 0,
                dur_ns: 1_000_000,
            },
        );
        let p = build(&t);
        assert!(p.get(&[UNTRACED_ROOT, "tpm.TPM_MakeIdentity"]).is_some());
        assert_eq!(p.session_total(), Duration::ZERO);
    }

    #[test]
    fn overflow_is_detected_not_hidden() {
        let t = Trace::new();
        let span = t.span_start("phase.pal", Duration::ZERO);
        // An event claiming more time than its enclosing span has.
        t.event(
            Duration::from_millis(1),
            EventKind::TpmCommand {
                ordinal: "TPM_Quote".into(),
                locality: 0,
                dur_ns: 5_000_000,
            },
        );
        t.span_end(span, Duration::from_millis(2));
        let p = build(&t);
        assert_eq!(p.overflow_ns, 3_000_000);
        assert!(p.reconciliation_error() > 0.01);
    }

    #[test]
    fn diff_orders_by_magnitude_and_handles_new_and_gone() {
        let before = parse_folded("a;x 100\nb;y 50\nc;z 10\n").unwrap();
        let after = parse_folded("a;x 400\nc;z 10\nd;w 20\n").unwrap();
        let deltas = diff_folded(&before, &after);
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].path, "a;x");
        assert_eq!(deltas[0].delta(), 300);
        assert_eq!(deltas[1].path, "b;y");
        assert_eq!(deltas[1].delta(), -50);
        assert_eq!(deltas[2].path, "d;w");
        assert_eq!(deltas[2].after, 20);
    }

    #[test]
    fn chrome_export_contains_nested_slices() {
        let p = build(&session_trace());
        let json = p.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"session\""));
        assert!(json.contains("\"name\":\"tpm.TPM_Unseal\""));
        assert!(json.contains("\"name\":\"modmul\""));
    }

    #[test]
    fn identical_traces_build_identical_profiles() {
        let a = build(&session_trace());
        let b = build(&session_trace());
        assert_eq!(a, b);
        assert_eq!(a.folded(), b.folded());
        assert_eq!(a.to_chrome_json(), b.to_chrome_json());
    }
}
