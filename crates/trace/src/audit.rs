//! Replay a flight-recorder event stream against the paper's ordering
//! invariants (Figure 2 / §4).
//!
//! The auditor is a small state machine over [`Event`]s. It tracks the
//! active DEV protections, whether execution is inside a PAL window (from
//! `Skinit` to the `DevRelease` that precedes OS resume), which physical
//! ranges have been zeroized inside that window, and whether PCR 17
//! currently holds a locality-4 measurement of the running PAL. Five
//! invariant classes are checked:
//!
//! 1. [`Invariant::DevBeforeSkinit`] — the SLB must be DEV-protected from
//!    DMA before `SKINIT` measures it (§4.1: otherwise a device could
//!    rewrite the code between measurement and execution).
//! 2. [`Invariant::PcrResetLocality`] — dynamic PCRs may only be reset by
//!    the hardware locality-4 path that `SKINIT` owns; a software-locality
//!    reset would let an OS forge the measurement chain.
//! 3. [`Invariant::InterruptsInPal`] — the interrupt flag must stay clear
//!    for the whole PAL window; re-enabling mid-window hands control to
//!    untrusted handlers with secrets in registers and RAM.
//! 4. [`Invariant::ZeroizeBeforeResume`] — every byte of the SLB must be
//!    zeroized before the platform releases DEV protection and resumes the
//!    OS (§4.2: resume is the moment secrets would leak).
//! 5. [`Invariant::UnsealWithoutMeasurement`] — `TPM_Unseal` must only run
//!    inside a PAL window whose identity has been extended into PCR 17 at
//!    locality 4; anything else means sealed secrets were requested by
//!    unmeasured code.
//!
//! A `Reboot` event clears all state without violation: the platform
//! power-cycle path zeroizes RAM (emitting a covering `Zeroize`) before
//! rebooting, and hardware reset destroys the launch, the DEV setup, and
//! the dynamic PCR values.

use crate::{Event, EventKind, Trace, DROPPED_EVENTS_COUNTER};
use std::time::Duration;

/// The invariant classes the auditor can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// `SKINIT` ran on an SLB range not covered by an active DEV protection.
    DevBeforeSkinit,
    /// Dynamic PCRs were reset from a locality other than 4.
    PcrResetLocality,
    /// Interrupts were re-enabled while still inside the PAL window.
    InterruptsInPal,
    /// DEV protection was released (OS resume) before the whole SLB was
    /// zeroized.
    ZeroizeBeforeResume,
    /// `TPM_Unseal` ran outside a PAL window, or inside one whose PCR-17
    /// measurement is missing.
    UnsealWithoutMeasurement,
}

impl Invariant {
    /// Stable snake_case name, used in reports and violation dumps.
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::DevBeforeSkinit => "dev_before_skinit",
            Invariant::PcrResetLocality => "pcr_reset_locality",
            Invariant::InterruptsInPal => "interrupts_in_pal",
            Invariant::ZeroizeBeforeResume => "zeroize_before_resume",
            Invariant::UnsealWithoutMeasurement => "unseal_without_measurement",
        }
    }
}

/// One audit finding: which invariant broke, where in the stream, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending event in the audited slice.
    pub index: usize,
    /// Virtual timestamp of the offending event.
    pub at: Duration,
    /// Which invariant class was violated.
    pub invariant: Invariant,
    /// Human-readable specifics (addresses, localities, ordinals).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[event {} @ {:?}] {}: {}",
            self.index,
            self.at,
            self.invariant.name(),
            self.detail
        )
    }
}

/// The PCR that `SKINIT` extends with the SLB measurement.
const PCR_SKINIT: u32 = 17;
/// The hardware locality reserved for the `SKINIT` microcode path.
const LOCALITY_HW: u8 = 4;

#[derive(Debug)]
struct PalWindow {
    slb_base: u64,
    slb_len: u64,
    zeroized: Vec<(u64, u64)>, // [start, end) ranges
}

/// Returns true when the union of `ranges` covers `[start, end)`.
fn ranges_cover(ranges: &[(u64, u64)], start: u64, end: u64) -> bool {
    let mut sorted: Vec<(u64, u64)> = ranges.to_vec();
    sorted.sort_unstable();
    let mut covered_to = start;
    for (s, e) in sorted {
        if s > covered_to {
            break;
        }
        covered_to = covered_to.max(e);
        if covered_to >= end {
            return true;
        }
    }
    covered_to >= end
}

#[derive(Debug, Default)]
struct AuditState {
    /// Active DEV protections as [start, end) ranges.
    dev: Vec<(u64, u64)>,
    /// `Some` from `Skinit` until the `DevRelease` that resumes the OS.
    pal: Option<PalWindow>,
    /// PCR 17 holds a locality-4 measurement (set by a locality-4 extend,
    /// cleared by reset/reboot/resume).
    measured: bool,
}

impl AuditState {
    fn clear(&mut self) {
        self.dev.clear();
        self.pal = None;
        self.measured = false;
    }
}

/// Replays `events` through the invariant state machine and returns every
/// violation found, in stream order. An empty result means the recording is
/// consistent with the paper's Figure-2 session discipline.
pub fn audit_events(events: &[Event]) -> Vec<Violation> {
    let mut state = AuditState::default();
    let mut violations = Vec::new();
    let mut report = |index: usize, at: Duration, invariant: Invariant, detail: String| {
        violations.push(Violation {
            index,
            at,
            invariant,
            detail,
        });
    };

    for (index, event) in events.iter().enumerate() {
        let at = event.at;
        match &event.kind {
            EventKind::DevProtect { base, len } => {
                state.dev.push((*base, base.saturating_add(*len)));
            }
            EventKind::Skinit { slb_base, slb_len } => {
                let end = slb_base.saturating_add(*slb_len);
                if !ranges_cover(&state.dev, *slb_base, end) {
                    report(
                        index,
                        at,
                        Invariant::DevBeforeSkinit,
                        format!(
                            "SKINIT measured SLB [{slb_base:#x}, {end:#x}) without DEV \
                             protection covering it (active: {:?})",
                            state.dev
                        ),
                    );
                }
                state.pal = Some(PalWindow {
                    slb_base: *slb_base,
                    slb_len: *slb_len,
                    zeroized: Vec::new(),
                });
            }
            EventKind::PcrReset {
                index: pcr,
                locality,
            } => {
                if *locality != LOCALITY_HW {
                    report(
                        index,
                        at,
                        Invariant::PcrResetLocality,
                        format!("dynamic PCR {pcr} reset at software locality {locality}"),
                    );
                }
                if *pcr == PCR_SKINIT {
                    state.measured = false;
                }
            }
            EventKind::PcrExtend {
                index: pcr,
                locality,
            } => {
                if *pcr == PCR_SKINIT && *locality == LOCALITY_HW {
                    state.measured = true;
                }
            }
            EventKind::TpmCommand { ordinal, .. } => {
                if ordinal == "TPM_Unseal" {
                    if state.pal.is_none() {
                        report(
                            index,
                            at,
                            Invariant::UnsealWithoutMeasurement,
                            "TPM_Unseal issued outside any PAL window".to_string(),
                        );
                    } else if !state.measured {
                        report(
                            index,
                            at,
                            Invariant::UnsealWithoutMeasurement,
                            "TPM_Unseal inside a PAL window but PCR 17 holds no \
                             locality-4 measurement"
                                .to_string(),
                        );
                    }
                }
            }
            EventKind::InterruptsChanged { enabled } => {
                if *enabled && state.pal.is_some() {
                    report(
                        index,
                        at,
                        Invariant::InterruptsInPal,
                        "interrupts re-enabled while still inside the PAL window".to_string(),
                    );
                }
            }
            EventKind::Zeroize { base, len } => {
                if let Some(pal) = state.pal.as_mut() {
                    pal.zeroized.push((*base, base.saturating_add(*len)));
                }
            }
            EventKind::DevRelease { .. } => {
                if let Some(pal) = state.pal.take() {
                    let end = pal.slb_base.saturating_add(pal.slb_len);
                    if !ranges_cover(&pal.zeroized, pal.slb_base, end) {
                        report(
                            index,
                            at,
                            Invariant::ZeroizeBeforeResume,
                            format!(
                                "DEV released (OS resume) with SLB [{:#x}, {end:#x}) \
                                 not fully zeroized (zeroized: {:?})",
                                pal.slb_base, pal.zeroized
                            ),
                        );
                    }
                }
                state.dev.clear();
                state.measured = false;
            }
            EventKind::Reboot => state.clear(),
            EventKind::SessionStart { .. }
            | EventKind::SessionEnd { .. }
            | EventKind::PhaseStart { .. }
            | EventKind::PhaseEnd { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::Farm { .. }
            | EventKind::Charge { .. }
            | EventKind::CryptoCost { .. }
            | EventKind::Anchor { .. }
            | EventKind::OsSuspend
            | EventKind::OsResume => {}
        }
    }
    violations
}

/// Outcome of a truncation-aware audit ([`audit_trace`] /
/// [`audit_events_with_drops`]).
///
/// A ring buffer that overflowed has silently discarded its oldest events,
/// so replaying what's left can vacuously pass: the `DevProtect` that never
/// happened and the `Skinit` it should have preceded may both be gone. A
/// truncated stream therefore yields [`AuditVerdict::Inconclusive`] — never
/// `Clean` — and callers that gate on audits (fault sweep, farm bench, CI)
/// must treat it as a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The complete stream replayed with no violations.
    Clean,
    /// The stream (complete or not) contained violations. When the stream
    /// was also truncated, `dropped_events` is nonzero.
    Violations {
        /// Every violation found, in stream order.
        violations: Vec<Violation>,
        /// Events evicted from the ring buffer before the audit ran.
        dropped_events: u64,
    },
    /// The stream replayed clean, but `dropped_events` events were evicted
    /// before the audit ran, so the verdict proves nothing about the full
    /// execution.
    Inconclusive {
        /// Events evicted from the ring buffer before the audit ran.
        dropped_events: u64,
    },
}

impl AuditVerdict {
    /// True only for a complete, violation-free stream.
    pub fn is_clean(&self) -> bool {
        matches!(self, AuditVerdict::Clean)
    }

    /// The violations found, if any (empty for `Clean` / `Inconclusive`).
    pub fn violations(&self) -> &[Violation] {
        match self {
            AuditVerdict::Violations { violations, .. } => violations,
            _ => &[],
        }
    }

    /// How many events the ring buffer evicted before the audit.
    pub fn dropped_events(&self) -> u64 {
        match self {
            AuditVerdict::Clean => 0,
            AuditVerdict::Violations { dropped_events, .. }
            | AuditVerdict::Inconclusive { dropped_events } => *dropped_events,
        }
    }
}

impl std::fmt::Display for AuditVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditVerdict::Clean => write!(f, "clean"),
            AuditVerdict::Violations {
                violations,
                dropped_events,
            } => {
                write!(f, "{} violation(s)", violations.len())?;
                if *dropped_events > 0 {
                    write!(f, " (stream truncated: {dropped_events} dropped)")?;
                }
                Ok(())
            }
            AuditVerdict::Inconclusive { dropped_events } => write!(
                f,
                "inconclusive: {dropped_events} event(s) dropped from the ring \
                 buffer before audit"
            ),
        }
    }
}

/// Audits an event slice known to be missing `dropped` evicted events.
pub fn audit_events_with_drops(events: &[Event], dropped: u64) -> AuditVerdict {
    let violations = audit_events(events);
    match (violations.is_empty(), dropped) {
        (true, 0) => AuditVerdict::Clean,
        (true, dropped_events) => AuditVerdict::Inconclusive { dropped_events },
        (false, dropped_events) => AuditVerdict::Violations {
            violations,
            dropped_events,
        },
    }
}

/// Audits a live trace's flight record, consulting its
/// [`DROPPED_EVENTS_COUNTER`] so ring-buffer overflow can never masquerade
/// as a clean run.
pub fn audit_trace(trace: &Trace) -> AuditVerdict {
    audit_events_with_drops(&trace.events(), trace.counter(DROPPED_EVENTS_COUNTER))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLB_BASE: u64 = 0x10_0000;
    const SLB_MAX: u64 = 0x1_0000;
    const SLB_LEN: u64 = 4736;

    fn ev(ms: u64, kind: EventKind) -> Event {
        Event::new(Duration::from_millis(ms), kind)
    }

    /// The canonical well-formed session stream the substrates emit.
    fn clean_session() -> Vec<Event> {
        vec![
            ev(0, EventKind::SessionStart { id: 1 }),
            ev(1, EventKind::OsSuspend),
            ev(
                2,
                EventKind::DevProtect {
                    base: SLB_BASE,
                    len: SLB_MAX,
                },
            ),
            ev(2, EventKind::InterruptsChanged { enabled: false }),
            ev(
                3,
                EventKind::PcrReset {
                    index: 17,
                    locality: 4,
                },
            ),
            ev(
                3,
                EventKind::PcrExtend {
                    index: 17,
                    locality: 4,
                },
            ),
            ev(
                3,
                EventKind::Skinit {
                    slb_base: SLB_BASE,
                    slb_len: SLB_LEN,
                },
            ),
            ev(
                4,
                EventKind::TpmCommand {
                    ordinal: "TPM_Unseal".into(),
                    locality: 0,
                    dur_ns: 0,
                },
            ),
            ev(
                5,
                EventKind::Zeroize {
                    base: SLB_BASE,
                    len: SLB_MAX,
                },
            ),
            ev(
                6,
                EventKind::PcrExtend {
                    index: 17,
                    locality: 0,
                },
            ),
            ev(7, EventKind::DevRelease { count: 1 }),
            ev(7, EventKind::InterruptsChanged { enabled: true }),
            ev(8, EventKind::OsResume),
            ev(8, EventKind::SessionEnd { id: 1 }),
        ]
    }

    #[test]
    fn clean_stream_has_no_violations() {
        let violations = audit_events(&clean_session());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn two_back_to_back_sessions_stay_clean() {
        let mut events = clean_session();
        events.extend(clean_session());
        assert!(audit_events(&events).is_empty());
    }

    #[test]
    fn skinit_without_dev_protection_is_flagged() {
        let events: Vec<Event> = clean_session()
            .into_iter()
            .filter(|e| !matches!(e.kind, EventKind::DevProtect { .. }))
            .collect();
        let violations = audit_events(&events);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == Invariant::DevBeforeSkinit),
            "{violations:?}"
        );
    }

    #[test]
    fn dev_protection_too_small_is_flagged() {
        let events: Vec<Event> = clean_session()
            .into_iter()
            .map(|mut e| {
                if let EventKind::DevProtect { len, .. } = &mut e.kind {
                    *len = SLB_LEN / 2; // covers only half the measured SLB
                }
                e
            })
            .collect();
        let violations = audit_events(&events);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == Invariant::DevBeforeSkinit),
            "{violations:?}"
        );
    }

    #[test]
    fn software_locality_pcr_reset_is_flagged() {
        let events: Vec<Event> = clean_session()
            .into_iter()
            .map(|mut e| {
                if let EventKind::PcrReset { locality, .. } = &mut e.kind {
                    *locality = 0; // the OS pretending to own the dynamic reset
                }
                e
            })
            .collect();
        let violations = audit_events(&events);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == Invariant::PcrResetLocality),
            "{violations:?}"
        );
    }

    #[test]
    fn interrupts_enabled_inside_pal_is_flagged() {
        let mut events = clean_session();
        // Re-enable interrupts right after the PAL starts running.
        events.insert(8, ev(4, EventKind::InterruptsChanged { enabled: true }));
        let violations = audit_events(&events);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].invariant, Invariant::InterruptsInPal);
    }

    #[test]
    fn missing_zeroize_before_release_is_flagged() {
        let events: Vec<Event> = clean_session()
            .into_iter()
            .filter(|e| !matches!(e.kind, EventKind::Zeroize { .. }))
            .collect();
        let violations = audit_events(&events);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == Invariant::ZeroizeBeforeResume),
            "{violations:?}"
        );
    }

    #[test]
    fn partial_zeroize_before_release_is_flagged() {
        let events: Vec<Event> = clean_session()
            .into_iter()
            .map(|mut e| {
                if let EventKind::Zeroize { len, .. } = &mut e.kind {
                    *len = SLB_LEN - 1; // one measured byte survives resume
                }
                e
            })
            .collect();
        let violations = audit_events(&events);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == Invariant::ZeroizeBeforeResume),
            "{violations:?}"
        );
    }

    #[test]
    fn piecewise_zeroize_coverage_is_accepted() {
        let events: Vec<Event> = clean_session()
            .into_iter()
            .flat_map(|e| {
                if matches!(e.kind, EventKind::Zeroize { .. }) {
                    vec![
                        ev(
                            5,
                            EventKind::Zeroize {
                                base: SLB_BASE,
                                len: SLB_LEN / 2,
                            },
                        ),
                        ev(
                            5,
                            EventKind::Zeroize {
                                base: SLB_BASE + SLB_LEN / 2,
                                len: SLB_MAX - SLB_LEN / 2,
                            },
                        ),
                    ]
                } else {
                    vec![e]
                }
            })
            .collect();
        assert!(audit_events(&events).is_empty());
    }

    #[test]
    fn unseal_outside_pal_window_is_flagged() {
        let events = vec![ev(
            0,
            EventKind::TpmCommand {
                ordinal: "TPM_Unseal".into(),
                locality: 0,
                dur_ns: 0,
            },
        )];
        let violations = audit_events(&events);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::UnsealWithoutMeasurement);
    }

    #[test]
    fn unseal_after_software_reset_of_pcr17_is_flagged() {
        let mut events = clean_session();
        // Between SKINIT and the unseal, PCR 17 gets reset (already a
        // locality violation) — the unseal must ALSO be flagged because
        // the running PAL's measurement is gone.
        events.insert(
            7,
            ev(
                4,
                EventKind::PcrReset {
                    index: 17,
                    locality: 0,
                },
            ),
        );
        let violations = audit_events(&events);
        let classes: Vec<Invariant> = violations.iter().map(|v| v.invariant).collect();
        assert!(
            classes.contains(&Invariant::PcrResetLocality),
            "{violations:?}"
        );
        assert!(
            classes.contains(&Invariant::UnsealWithoutMeasurement),
            "{violations:?}"
        );
    }

    #[test]
    fn reboot_resets_audit_state() {
        let mut events = clean_session();
        // Truncate mid-PAL (after the unseal) and power-cycle: RAM zeroize
        // followed by reboot. The next clean session must audit clean and
        // the aborted window must NOT count as a zeroize-before-resume
        // violation (there was no resume).
        events.truncate(8);
        events.push(ev(
            9,
            EventKind::FaultInjected {
                fault: "power_loss".into(),
            },
        ));
        events.push(ev(
            9,
            EventKind::Zeroize {
                base: 0,
                len: 1 << 24,
            },
        ));
        events.push(ev(9, EventKind::Reboot));
        events.extend(clean_session());
        let violations = audit_events(&events);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn overflowed_ring_buffer_is_inconclusive_not_clean() {
        // Regression: a ring buffer small enough to evict the session's
        // DevProtect/Skinit prefix used to replay the truncated suffix
        // clean. The truncation-aware entry points must refuse to call
        // that a pass.
        let trace = Trace::new();
        trace.set_event_capacity(4);
        for e in clean_session() {
            trace.event(e.at, e.kind);
        }
        assert!(
            trace.counter(DROPPED_EVENTS_COUNTER) > 0,
            "test setup must actually overflow the buffer"
        );
        // The truncated suffix happens to replay clean…
        assert!(audit_events(&trace.events()).is_empty());
        // …but the verdict must say so honestly.
        let verdict = audit_trace(&trace);
        assert!(!verdict.is_clean());
        match &verdict {
            AuditVerdict::Inconclusive { dropped_events } => {
                assert_eq!(*dropped_events, trace.counter(DROPPED_EVENTS_COUNTER));
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
        assert!(verdict.to_string().contains("inconclusive"));
    }

    #[test]
    fn complete_stream_audits_clean_and_violations_carry_drop_count() {
        let trace = Trace::new();
        for e in clean_session() {
            trace.event(e.at, e.kind);
        }
        assert_eq!(audit_trace(&trace), AuditVerdict::Clean);

        // A violating stream that ALSO dropped events reports both facts.
        let bad = vec![ev(
            3,
            EventKind::Skinit {
                slb_base: SLB_BASE,
                slb_len: SLB_LEN,
            },
        )];
        let verdict = audit_events_with_drops(&bad, 9);
        assert_eq!(verdict.violations().len(), 1);
        assert_eq!(verdict.dropped_events(), 9);
        assert!(verdict.to_string().contains("truncated"), "{verdict}");
    }

    #[test]
    fn violation_display_is_informative() {
        let events = vec![ev(
            3,
            EventKind::Skinit {
                slb_base: SLB_BASE,
                slb_len: SLB_LEN,
            },
        )];
        let v = &audit_events(&events)[0];
        let text = v.to_string();
        assert!(text.contains("dev_before_skinit"), "{text}");
        assert!(text.contains("0x100000"), "{text}");
    }
}
