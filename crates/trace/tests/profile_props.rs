//! Profile determinism and folded-stack round-trip properties.
//!
//! The profile builder promises (a) that building twice from the same
//! trace yields byte-identical artifacts — the property the committed
//! profile baseline's drift gates rely on — and (b) that the collapsed
//! stack text is a lossless encoding of the self-weight map: parsing
//! what `folded()` emitted reproduces `folded_weights()` exactly, for
//! *any* trace the recorder can produce, including overlapping sessions,
//! dangling spans, and events that attach to no span at all.

use flicker_trace::profile::{self, diff_folded, parse_folded};
use flicker_trace::{EventKind, Trace};
use proptest::prelude::*;
use std::time::Duration;

const SPAN_NAMES: [&str; 4] = ["phase.alpha", "phase.beta", "phase.gamma", "phase.delta"];
const ORDINALS: [&str; 4] = ["TPM_Seal", "TPM_Unseal", "TPM_Quote", "TPM_Extend"];
const PRIMITIVES: [&str; 3] = ["modmul", "sha1_compress", "hmac"];

/// Replays scripted `(selector, param)` ops on a fresh trace: span
/// starts/ends, session open/close events, and TPM commands each
/// followed by a same-timestamp crypto-cost event (mirroring how the
/// simulated chip pends both at drain time).
fn build_trace(ops: &[(u8, u16)]) -> Trace {
    let trace = Trace::new();
    let mut now_ns: u64 = 0;
    let mut open_spans = Vec::new();
    let mut session_open = false;
    let mut sessions: u64 = 0;

    for &(selector, param) in ops {
        now_ns += u64::from(param % 997) + 1;
        let now = Duration::from_nanos(now_ns);
        match selector % 16 {
            0..=5 => {
                open_spans.push(trace.span_start(SPAN_NAMES[param as usize % 4], now));
            }
            6..=9 => {
                if let Some(id) = open_spans.pop() {
                    trace.span_end(id, now);
                }
            }
            10 => {
                let kind = if session_open {
                    EventKind::SessionEnd { id: sessions }
                } else {
                    sessions += 1;
                    EventKind::SessionStart { id: sessions }
                };
                session_open = !session_open;
                trace.event(now, kind);
            }
            _ => {
                let ordinal = ORDINALS[param as usize % 4];
                let dur_ns = u64::from(param) * 1_000;
                trace.event(
                    now,
                    EventKind::TpmCommand {
                        ordinal: ordinal.into(),
                        locality: 2,
                        dur_ns,
                    },
                );
                trace.event(
                    now,
                    EventKind::CryptoCost {
                        ordinal: ordinal.into(),
                        primitive: PRIMITIVES[param as usize % 3].into(),
                        count: u64::from(param % 7) + 1,
                        dur_ns: dur_ns / 2,
                    },
                );
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn folded_text_round_trips_for_arbitrary_traces(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..48),
    ) {
        let trace = build_trace(&ops);
        let p = profile::build(&trace);
        let parsed = parse_folded(&p.folded()).expect("own output parses");
        prop_assert_eq!(parsed, p.folded_weights());
    }

    #[test]
    fn building_twice_is_byte_identical(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..48),
    ) {
        let trace = build_trace(&ops);
        let a = profile::build(&trace);
        let b = profile::build(&trace);
        prop_assert_eq!(a.folded(), b.folded());
        prop_assert_eq!(a.to_chrome_json(), b.to_chrome_json());
        prop_assert_eq!(a.total(), b.total());
        prop_assert_eq!(a.overflow_ns, b.overflow_ns);
        // And a profile never drifts against itself.
        prop_assert!(diff_folded(&a.folded_weights(), &b.folded_weights()).is_empty());
    }

    #[test]
    fn folded_diff_deltas_reconstruct_the_after_map(
        ops_a in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..32),
        ops_b in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..32),
    ) {
        let before = profile::build(&build_trace(&ops_a)).folded_weights();
        let after = profile::build(&build_trace(&ops_b)).folded_weights();
        for d in diff_folded(&before, &after) {
            prop_assert_eq!(before.get(&d.path).copied().unwrap_or(0), d.before);
            prop_assert_eq!(after.get(&d.path).copied().unwrap_or(0), d.after);
            prop_assert_eq!(i128::from(d.after) - i128::from(d.before), d.delta());
            prop_assert!(d.delta() != 0, "unchanged stack {} reported", d.path);
        }
    }
}
