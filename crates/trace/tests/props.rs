//! Span-tree well-formedness under arbitrary API interleavings.
//!
//! The recorder promises a forest invariant: parents precede children,
//! `depth` equals the parent chain length, every `parent` id refers to an
//! earlier span, and (on a monotone clock, which is how the simulator
//! drives it) a child's end never exceeds its parent's. These properties
//! must hold for *any* interleaving of `span_start` / `span_end` /
//! `span_closed` / `reset`, including ends of already-closed spans and
//! ends that implicitly close dangling children.

use flicker_trace::{Span, SpanId, Trace};
use proptest::prelude::*;
use std::time::Duration;

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One scripted recorder call, decoded from a `(selector, param)` pair.
#[derive(Debug, Clone, Copy)]
enum Op {
    Start(usize),
    End(usize),
    Closed(u64),
    Reset,
}

fn decode(selector: u8, param: u16) -> Op {
    match selector % 16 {
        0..=7 => Op::Start(param as usize % NAMES.len()),
        8..=13 => Op::End(param as usize),
        14 => Op::Closed(u64::from(param) % 500 + 1),
        _ => Op::Reset,
    }
}

/// Replays `ops` on a fresh trace with a strictly monotone clock, then
/// checks the forest invariants on the resulting snapshot.
fn check_interleaving(ops: &[(u8, u16)]) -> Result<(), String> {
    let trace = Trace::new();
    let mut now_ns: u64 = 0;
    // Creation-order ledger mirroring `trace.spans()`: `Some(id)` for spans
    // from `span_start`, `None` for `span_closed` entries (which have no id).
    let mut ids: Vec<Option<SpanId>> = Vec::new();

    for &(selector, param) in ops {
        now_ns += u64::from(param % 997) + 1;
        let now = Duration::from_nanos(now_ns);
        match decode(selector, param) {
            Op::Start(name) => {
                let id = trace.span_start(NAMES[name], now);
                ids.push(Some(id));
            }
            Op::End(pick) => {
                let started: Vec<SpanId> = ids.iter().flatten().copied().collect();
                if let Some(&id) = started.get(pick % started.len().max(1)) {
                    trace.span_end(id, now);
                }
            }
            Op::Closed(dur_ns) => {
                trace.span_closed("closed", now, Duration::from_nanos(dur_ns));
                now_ns += dur_ns;
                ids.push(None);
            }
            Op::Reset => {
                trace.reset();
                ids.clear();
            }
        }
    }

    let spans = trace.spans();
    if spans.len() != ids.len() {
        return Err(format!(
            "ledger drift: {} spans vs {} ledger entries",
            spans.len(),
            ids.len()
        ));
    }
    let end_of = |s: &Span| s.duration.map(|d| s.start + d);
    for (i, span) in spans.iter().enumerate() {
        match span.parent {
            None => {
                if span.depth != 0 {
                    return Err(format!("span {i}: no parent but depth {}", span.depth));
                }
            }
            Some(parent_id) => {
                let Some(j) = ids.iter().position(|&id| id == Some(parent_id)) else {
                    return Err(format!("span {i}: dangling parent id {parent_id:?}"));
                };
                if j >= i {
                    return Err(format!("span {i}: parent at later index {j}"));
                }
                let parent = &spans[j];
                if span.depth != parent.depth + 1 {
                    return Err(format!(
                        "span {i}: depth {} but parent depth {}",
                        span.depth, parent.depth
                    ));
                }
                if span.start < parent.start {
                    return Err(format!("span {i}: starts before its parent"));
                }
                if let (Some(child_end), Some(parent_end)) = (end_of(span), end_of(parent)) {
                    if child_end > parent_end {
                        return Err(format!(
                            "span {i}: ends at {child_end:?}, after parent end {parent_end:?}"
                        ));
                    }
                }
                if end_of(parent).is_some() && end_of(span).is_none() {
                    return Err(format!("span {i}: still open under a closed parent"));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn span_tree_is_well_formed_under_arbitrary_interleavings(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..64),
    ) {
        if let Err(reason) = check_interleaving(&ops) {
            prop_assert!(false, "{}", reason);
        }
    }
}

#[test]
fn targeted_interleaving_dangling_children() {
    // start, start, end(parent) — the classic dangling-child close.
    let ops = [(0u8, 0u16), (0, 1), (8, 0)];
    check_interleaving(&ops).expect("well-formed");
}
