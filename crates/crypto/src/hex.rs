//! Hexadecimal encoding and decoding.

use crate::CryptoError;

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Examples
///
/// ```
/// assert_eq!(flicker_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    out
}

/// Decodes a hexadecimal string (upper or lower case) into bytes.
///
/// Returns [`CryptoError::Encoding`] on odd length or non-hex characters.
///
/// # Examples
///
/// ```
/// assert_eq!(flicker_crypto::hex::decode("DEad").unwrap(), vec![0xde, 0xad]);
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::Encoding("odd-length hex string"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or(CryptoError::Encoding("non-hex character"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or(CryptoError::Encoding("non-hex character"))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn encode_all_byte_values_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let s = encode(&bytes);
        assert_eq!(decode(&s).unwrap(), bytes);
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert!(matches!(decode("abc"), Err(CryptoError::Encoding(_))));
    }

    #[test]
    fn decode_rejects_non_hex() {
        assert!(matches!(decode("zz"), Err(CryptoError::Encoding(_))));
    }

    #[test]
    fn decode_mixed_case() {
        assert_eq!(decode("aAbB").unwrap(), vec![0xaa, 0xbb]);
    }
}
