//! Constant-time comparison helpers.
//!
//! Secret-dependent early exits in comparison loops leak timing information;
//! the PAL code paths that compare MACs, password hashes, and unsealed
//! secrets use these helpers instead of `==`.

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately if the lengths differ (lengths are public in
/// every protocol in this workspace).
///
/// # Examples
///
/// ```
/// assert!(flicker_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!flicker_crypto::ct_eq(b"abc", b"abd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Selects `a` if `choice` is true, else `b`, without a secret-dependent
/// branch on the byte values.
pub fn ct_select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"flicker", b"flicker"));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"flicker", b"flickes"));
        assert!(!ct_eq(b"flicker", b"flicke"));
        assert!(!ct_eq(b"a", b""));
    }

    #[test]
    fn first_and_last_byte_differences_detected() {
        assert!(!ct_eq(b"xbc", b"abc"));
        assert!(!ct_eq(b"abx", b"abc"));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select(true, 0xaa, 0x55), 0xaa);
        assert_eq!(ct_select(false, 0xaa, 0x55), 0x55);
    }
}
