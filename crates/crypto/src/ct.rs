//! Constant-time comparison helpers.
//!
//! Secret-dependent early exits in comparison loops leak timing information;
//! the PAL code paths that compare MACs, password hashes, and unsealed
//! secrets use these helpers instead of `==`.

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately if the lengths differ (lengths are public in
/// every protocol in this workspace).
///
/// # Examples
///
/// ```
/// assert!(flicker_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!flicker_crypto::ct_eq(b"abc", b"abd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && ct_eq_examined(a, b).0
}

/// The counted fold behind [`ct_eq`]: compares `min(a.len(), b.len())`
/// byte pairs unconditionally and reports how many it examined.
///
/// The count makes the no-early-exit discipline *testable*: a mismatch in
/// the first byte must still examine every pair. Callers that need the
/// boolean only should use [`ct_eq`]; this form exists for auditing and
/// for tests that pin the constant-time property.
pub fn ct_eq_examined(a: &[u8], b: &[u8]) -> (bool, usize) {
    let folded = a
        .iter()
        .zip(b.iter())
        .fold((0u8, 0usize), |(acc, n), (x, y)| (acc | (x ^ y), n + 1));
    (folded.0 == 0, folded.1)
}

/// Selects `a` if `choice` is true, else `b`, without a secret-dependent
/// branch on the byte values.
pub fn ct_select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"flicker", b"flicker"));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"flicker", b"flickes"));
        assert!(!ct_eq(b"flicker", b"flicke"));
        assert!(!ct_eq(b"a", b""));
    }

    #[test]
    fn first_and_last_byte_differences_detected() {
        assert!(!ct_eq(b"xbc", b"abc"));
        assert!(!ct_eq(b"abx", b"abc"));
    }

    #[test]
    fn no_early_exit_on_first_byte_mismatch() {
        // A first-byte mismatch must not short-circuit the fold: every
        // byte pair is examined regardless of where the difference sits.
        let a = b"xlickerflicker";
        let b = b"flickerflicker";
        let (eq, examined) = ct_eq_examined(a, b);
        assert!(!eq);
        assert_eq!(examined, a.len());
        // Same count on a full match and on a last-byte mismatch.
        assert_eq!(ct_eq_examined(b, b), (true, b.len()));
        assert_eq!(ct_eq_examined(b"abc", b"abx"), (false, 3));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select(true, 0xaa, 0x55), 0xaa);
        assert_eq!(ct_select(false, 0xaa, 0x55), 0x55);
    }
}
