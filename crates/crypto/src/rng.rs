//! Random-byte source abstraction.
//!
//! Inside a Flicker session the only trustworthy entropy source is the
//! TPM's `GetRandom` command (paper §2.2); outside it, the untrusted OS may
//! use whatever it likes. Both sides are expressed through [`CryptoRng`] so
//! the RSA/key-generation code is agnostic about where bytes come from.

/// A source of cryptographically strong (or deliberately deterministic, in
/// tests) random bytes.
pub trait CryptoRng {
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Returns a uniformly random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_be_bytes(b)
    }

    /// Returns a uniformly random value in `[0, bound)` by rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection zone keeps the distribution exactly uniform.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// A trivially predictable RNG for reproducible tests.
///
/// It must never be used outside test code; it exists so that substrate
/// tests (e.g. RSA round-trips) are deterministic.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a non-zero seed (zero is mapped to a fixed
    /// constant to avoid the all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShiftRng {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }
}

impl CryptoRng for XorShiftRng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            let bytes = self.state.to_be_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShiftRng::new(42);
        let mut b = XorShiftRng::new(42);
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = XorShiftRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn zero_seed_does_not_stick_at_zero() {
        let mut r = XorShiftRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
