//! MD5 (RFC 1321).
//!
//! Present for one reason: the SSH password application (paper §6.3.1)
//! compares against `/etc/passwd` entries produced by `md5crypt`, which is
//! built on MD5. MD5 is cryptographically broken and must not be used for
//! anything but that compatibility path.

use crate::digest::Digest;

/// Length in bytes of an MD5 digest.
pub const OUTPUT_LEN: usize = 16;
/// MD5 compression block length in bytes.
pub const BLOCK_LEN: usize = 64;

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 hasher.
///
/// # Examples
///
/// ```
/// use flicker_crypto::digest::Digest;
/// let d = flicker_crypto::md5::Md5::digest(b"abc");
/// assert_eq!(flicker_crypto::hex::encode(&d), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0; BLOCK_LEN],
            buffered: 0,
            total_len: 0,
        }
    }
}

impl Md5 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | ((!b) & d), i),
                16..=31 => ((d & b) | ((!d) & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = OUTPUT_LEN;
    const BLOCK_LEN: usize = BLOCK_LEN;

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        if data.is_empty() {
            // Everything was absorbed into the partial buffer; do not let
            // the remainder logic below clobber `buffered`.
            return;
        }
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for chunk in &mut chunks {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != BLOCK_LEN - 8 {
            self.update(&[0x00]);
        }
        // MD5 appends the bit length little-endian, unlike the SHA family.
        self.update(&bit_len.to_le_bytes());
        let mut out = Vec::with_capacity(OUTPUT_LEN);
        for word in self.state {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// One-shot MD5 returning a fixed-size array.
pub fn md5(data: &[u8]) -> [u8; OUTPUT_LEN] {
    let v = Md5::digest(data);
    let mut out = [0u8; OUTPUT_LEN];
    out.copy_from_slice(&v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hexdigest(data: &[u8]) -> String {
        hex::encode(&md5(data))
    }

    #[test]
    fn rfc1321_vectors() {
        assert_eq!(hexdigest(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hexdigest(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hexdigest(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hexdigest(b"message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hexdigest(b"abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hexdigest(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            hexdigest(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            ),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..200u32).map(|i| (i * 3 % 256) as u8).collect();
        for split in [0, 1, 63, 64, 65, 199] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Md5::digest(&data), "split={split}");
        }
    }
}
