//! Common interface implemented by every hash function in this crate.

/// A streaming cryptographic hash function.
///
/// Implementations are value types: clone a partially-updated hasher to fork
/// the computation (used by [`crate::hmac`] and the TPM's PCR logic).
pub trait Digest: Default + Clone {
    /// Digest output length in bytes.
    const OUTPUT_LEN: usize;
    /// Internal compression-function block length in bytes (needed by HMAC).
    const BLOCK_LEN: usize;

    /// Absorbs `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest (`OUTPUT_LEN` bytes).
    fn finalize(self) -> Vec<u8>;

    /// Convenience one-shot helper: hash `data` in a single call.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::default();
        h.update(data);
        h.finalize()
    }
}
