//! The FreeBSD/Linux `md5crypt` password hash (`$1$` scheme).
//!
//! The paper's SSH PAL "computes the hash of the user's password and salt"
//! for comparison against `/etc/passwd` (§6.3.1, Figure 7: `hash ←
//! md5crypt(salt, password)`). This is Poul-Henning Kamp's original
//! algorithm: a deliberately contorted sequence of MD5 invocations plus a
//! 1000-round stretching loop.

use crate::digest::Digest;
use crate::md5::Md5;

const ITOA64: &[u8; 64] = b"./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

fn to64(mut v: u32, n: usize) -> String {
    let mut s = String::with_capacity(n);
    for _ in 0..n {
        s.push(ITOA64[(v & 0x3f) as usize] as char);
        v >>= 6;
    }
    s
}

/// Computes `md5crypt(password, salt)` and returns the full crypt string
/// `"$1$<salt>$<hash>"`.
///
/// `salt` is truncated to 8 bytes and must not contain `'$'` (characters
/// from the first `'$'` onward are ignored, matching the C implementation).
///
/// # Examples
///
/// ```
/// let h = flicker_crypto::md5crypt::md5crypt(b"password", b"saltsalt");
/// assert_eq!(h, "$1$saltsalt$qjXMvbEw8oaL.CzflDtaK/");
/// ```
pub fn md5crypt(password: &[u8], salt: &[u8]) -> String {
    let salt: &[u8] = {
        let end = salt
            .iter()
            .position(|&b| b == b'$')
            .unwrap_or(salt.len())
            .min(8);
        &salt[..end]
    };

    // Outer context: password, magic, salt.
    let mut ctx = Md5::new();
    ctx.update(password);
    ctx.update(b"$1$");
    ctx.update(salt);

    // Alternate sum: MD5(password || salt || password).
    let mut alt = Md5::new();
    alt.update(password);
    alt.update(salt);
    alt.update(password);
    let alt_sum = alt.finalize();

    let mut len = password.len();
    while len > 0 {
        let take = len.min(16);
        ctx.update(&alt_sum[..take]);
        len -= take;
    }

    // The famous bit-twiddling loop on the password length.
    let mut len = password.len();
    while len > 0 {
        if len & 1 != 0 {
            ctx.update(&[0u8]);
        } else {
            ctx.update(&password[..1]);
        }
        len >>= 1;
    }

    let mut sum = ctx.finalize();

    // 1000 rounds of stretching.
    for round in 0..1000 {
        let mut c = Md5::new();
        if round & 1 != 0 {
            c.update(password);
        } else {
            c.update(&sum);
        }
        if round % 3 != 0 {
            c.update(salt);
        }
        if round % 7 != 0 {
            c.update(password);
        }
        if round & 1 != 0 {
            c.update(&sum);
        } else {
            c.update(password);
        }
        sum = c.finalize();
    }

    // Peculiar base64-ish output ordering.
    let mut out = format!("$1${}$", String::from_utf8_lossy(salt));
    let order = [
        (0usize, 6usize, 12usize),
        (1, 7, 13),
        (2, 8, 14),
        (3, 9, 15),
        (4, 10, 5),
    ];
    for (a, b, c) in order {
        let v = ((sum[a] as u32) << 16) | ((sum[b] as u32) << 8) | sum[c] as u32;
        out.push_str(&to64(v, 4));
    }
    out.push_str(&to64(sum[11] as u32, 2));
    out
}

/// Verifies a password against a full `$1$` crypt string in constant time
/// over the hash comparison.
pub fn verify(password: &[u8], crypt_string: &str) -> bool {
    let mut parts = crypt_string.splitn(4, '$');
    let (Some(""), Some("1"), Some(salt), Some(_)) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return false;
    };
    let recomputed = md5crypt(password, salt.as_bytes());
    crate::ct_eq(recomputed.as_bytes(), crypt_string.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values produced with `openssl passwd -1 -salt <salt> <pw>`.
    #[test]
    fn known_vectors() {
        assert_eq!(
            md5crypt(b"password", b"saltsalt"),
            "$1$saltsalt$qjXMvbEw8oaL.CzflDtaK/"
        );
        assert_eq!(md5crypt(b"", b"salt"), "$1$salt$UsdFqFVB.FsuinRDK5eE..");
        assert_eq!(
            md5crypt(b"a", b"12345678"),
            "$1$12345678$3Uz6TyHSiGZR0yDMOX3jO0"
        );
    }

    #[test]
    fn salt_truncated_to_8() {
        assert_eq!(md5crypt(b"pw", b"0123456789"), md5crypt(b"pw", b"01234567"));
    }

    #[test]
    fn salt_stops_at_dollar() {
        assert_eq!(md5crypt(b"pw", b"abc$def"), md5crypt(b"pw", b"abc"));
    }

    #[test]
    fn verify_accepts_correct_password() {
        let h = md5crypt(b"hunter2", b"fl1ck3r");
        assert!(verify(b"hunter2", &h));
    }

    #[test]
    fn verify_rejects_wrong_password() {
        let h = md5crypt(b"hunter2", b"fl1ck3r");
        assert!(!verify(b"hunter3", &h));
        assert!(!verify(b"", &h));
    }

    #[test]
    fn verify_rejects_malformed_strings() {
        assert!(!verify(b"pw", ""));
        assert!(!verify(b"pw", "$2$salt$hash"));
        assert!(!verify(b"pw", "plainhash"));
    }

    #[test]
    fn different_salts_different_hashes() {
        assert_ne!(md5crypt(b"pw", b"saltA"), md5crypt(b"pw", b"saltB"));
    }
}
