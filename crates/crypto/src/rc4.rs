//! RC4 stream cipher.
//!
//! Listed in the paper's Crypto module (Figure 6). RC4 is obsolete and
//! biased; it is kept for inventory fidelity and must not protect new data.

/// RC4 keystream generator / stream cipher state.
///
/// # Examples
///
/// ```
/// use flicker_crypto::rc4::Rc4;
/// let mut c = Rc4::new(b"Key");
/// let mut buf = *b"Plaintext";
/// c.apply_keystream(&mut buf);
/// assert_eq!(flicker_crypto::hex::encode(&buf), "bbf316e8d940af0ad3");
/// ```
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl Rc4 {
    /// Initializes the cipher with `key` (1–256 bytes).
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty or longer than 256 bytes.
    pub fn new(key: &[u8]) -> Self {
        assert!(
            !key.is_empty() && key.len() <= 256,
            "RC4 key must be 1-256 bytes"
        );
        let mut s = [0u8; 256];
        for (idx, v) in s.iter_mut().enumerate() {
            *v = idx as u8;
        }
        let mut j = 0u8;
        for i in 0..256 {
            j = j.wrapping_add(s[i]).wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Rc4 { s, i: 0, j: 0 }
    }

    /// Returns the next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]);
        self.s.swap(self.i as usize, self.j as usize);
        let idx = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]);
        self.s[idx as usize]
    }

    /// XORs the keystream into `buf` in place (encrypt == decrypt).
    pub fn apply_keystream(&mut self, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn classic_vectors() {
        let mut c = Rc4::new(b"Key");
        let mut buf = *b"Plaintext";
        c.apply_keystream(&mut buf);
        assert_eq!(hex::encode(&buf), "bbf316e8d940af0ad3");

        let mut c = Rc4::new(b"Wiki");
        let mut buf = *b"pedia";
        c.apply_keystream(&mut buf);
        assert_eq!(hex::encode(&buf), "1021bf0420");

        let mut c = Rc4::new(b"Secret");
        let mut buf = *b"Attack at dawn";
        c.apply_keystream(&mut buf);
        assert_eq!(hex::encode(&buf), "45a01f645fc35b383552544b9bf5");
    }

    #[test]
    fn round_trip() {
        let msg = b"flicker session state".to_vec();
        let mut buf = msg.clone();
        Rc4::new(b"k").apply_keystream(&mut buf);
        assert_ne!(buf, msg);
        Rc4::new(b"k").apply_keystream(&mut buf);
        assert_eq!(buf, msg);
    }

    #[test]
    #[should_panic(expected = "RC4 key must be")]
    fn empty_key_rejected() {
        let _ = Rc4::new(b"");
    }
}
