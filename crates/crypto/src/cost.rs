//! Primitive-operation cost counters (the measurement half of the cost
//! model).
//!
//! The perf baseline and PR-7 attribution answer *which phase* of a
//! Flicker session is slow; this module answers *why* by counting the
//! primitive operations — Montgomery multiplications, SHA-1/SHA-256
//! compression-function invocations, HMAC computations, AES block
//! operations — that the simulated crypto actually executes. The hot
//! paths ([`crate::montgomery`], [`crate::sha1`], [`crate::sha256`],
//! [`crate::hmac`], [`crate::aes`]) bump these counters inline; profilers
//! take a [`snapshot`] before and after a region and diff the two with
//! [`CostSnapshot::since`].
//!
//! The counters are thread-local [`Cell`]s: this crate sits at the bottom
//! of the workspace (below `flicker-trace`), so it cannot charge a trace
//! recorder itself, and a thread-local costs one add on paths that run
//! tens of thousands of times per RSA operation. Upper layers read the
//! deltas and attribute them to spans, TPM ordinals, or PAL phases.

use std::cell::Cell;

/// The primitive operation classes the cost model distinguishes.
///
/// These are the units the ROADMAP's hot-path speed pass would optimize:
/// a Montgomery+CRT RSA change pays off proportionally to
/// [`Primitive::ModMul`], an SHA schedule precompute to the compression
/// counts, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// One Montgomery multiplication (`MontgomeryCtx::mont_mul`), the
    /// inner loop of every modular exponentiation.
    ModMul,
    /// One SHA-1 compression-function invocation (64-byte block).
    Sha1Compress,
    /// One SHA-256 compression-function invocation (64-byte block).
    Sha256Compress,
    /// One complete HMAC computation (keyed setup + finalize).
    Hmac,
    /// One AES-128 block encryption or decryption (16 bytes).
    AesBlock,
}

impl Primitive {
    /// Every primitive class, in canonical (stable) report order.
    pub const ALL: [Primitive; 5] = [
        Primitive::ModMul,
        Primitive::Sha1Compress,
        Primitive::Sha256Compress,
        Primitive::Hmac,
        Primitive::AesBlock,
    ];

    /// Stable snake_case name used in profiles, folded stacks, and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Primitive::ModMul => "modmul",
            Primitive::Sha1Compress => "sha1_compress",
            Primitive::Sha256Compress => "sha256_compress",
            Primitive::Hmac => "hmac",
            Primitive::AesBlock => "aes_block",
        }
    }

    /// Parses a [`Primitive::name`] back to the primitive.
    pub fn from_name(name: &str) -> Option<Primitive> {
        Primitive::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A point-in-time reading of every primitive counter on this thread.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Montgomery multiplications performed.
    pub modmul: u64,
    /// SHA-1 compression-function invocations.
    pub sha1_compress: u64,
    /// SHA-256 compression-function invocations.
    pub sha256_compress: u64,
    /// Complete HMAC computations.
    pub hmac: u64,
    /// AES block operations (encrypt + decrypt).
    pub aes_block: u64,
}

impl CostSnapshot {
    /// Per-class delta `self - earlier` (saturating, so a [`reset`]
    /// between the two snapshots degrades to zero, not garbage).
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            modmul: self.modmul.saturating_sub(earlier.modmul),
            sha1_compress: self.sha1_compress.saturating_sub(earlier.sha1_compress),
            sha256_compress: self.sha256_compress.saturating_sub(earlier.sha256_compress),
            hmac: self.hmac.saturating_sub(earlier.hmac),
            aes_block: self.aes_block.saturating_sub(earlier.aes_block),
        }
    }

    /// The count for one primitive class.
    pub fn get(&self, p: Primitive) -> u64 {
        match p {
            Primitive::ModMul => self.modmul,
            Primitive::Sha1Compress => self.sha1_compress,
            Primitive::Sha256Compress => self.sha256_compress,
            Primitive::Hmac => self.hmac,
            Primitive::AesBlock => self.aes_block,
        }
    }

    /// Total operations across every class.
    pub fn total(&self) -> u64 {
        Primitive::ALL.iter().map(|&p| self.get(p)).sum()
    }

    /// `(primitive, count)` pairs for the non-zero classes, in canonical
    /// order.
    pub fn nonzero(&self) -> Vec<(Primitive, u64)> {
        Primitive::ALL
            .into_iter()
            .map(|p| (p, self.get(p)))
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

thread_local! {
    static COUNTS: Cell<CostSnapshot> = const { Cell::new(CostSnapshot {
        modmul: 0,
        sha1_compress: 0,
        sha256_compress: 0,
        hmac: 0,
        aes_block: 0,
    }) };
}

/// Reads the current counters for this thread.
pub fn snapshot() -> CostSnapshot {
    COUNTS.with(Cell::get)
}

/// Zeroes the counters for this thread. Profilers normally prefer
/// snapshot-and-diff ([`CostSnapshot::since`]) so nested measurements
/// compose; `reset` exists for test isolation.
pub fn reset() {
    COUNTS.with(|c| c.set(CostSnapshot::default()));
}

/// Adds one operation of class `p` (saturating). `pub` so sibling crates
/// layering new primitives over this one (e.g. the TPM's storage root)
/// stay attributable, but the expected callers are this crate's own hot
/// paths.
#[inline]
pub fn count(p: Primitive) {
    COUNTS.with(|c| {
        let mut s = c.get();
        let slot = match p {
            Primitive::ModMul => &mut s.modmul,
            Primitive::Sha1Compress => &mut s.sha1_compress,
            Primitive::Sha256Compress => &mut s.sha256_compress,
            Primitive::Hmac => &mut s.hmac,
            Primitive::AesBlock => &mut s.aes_block,
        };
        *slot = slot.saturating_add(1);
        c.set(s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::Digest;

    #[test]
    fn snapshot_diff_isolates_a_region() {
        let before = snapshot();
        count(Primitive::ModMul);
        count(Primitive::ModMul);
        count(Primitive::AesBlock);
        let delta = snapshot().since(&before);
        assert_eq!(delta.modmul, 2);
        assert_eq!(delta.aes_block, 1);
        assert_eq!(delta.sha1_compress, 0);
        assert_eq!(delta.total(), 3);
    }

    #[test]
    fn sha1_counts_compressions() {
        let before = snapshot();
        // 3 blocks of message + 1 padding block.
        crate::sha1::Sha1::digest(&[0u8; 192]);
        let delta = snapshot().since(&before);
        assert_eq!(delta.sha1_compress, 4);
    }

    #[test]
    fn sha256_counts_compressions() {
        let before = snapshot();
        crate::sha256::Sha256::digest(&[0u8; 64]);
        let delta = snapshot().since(&before);
        assert_eq!(delta.sha256_compress, 2, "one data block + one padding");
    }

    #[test]
    fn hmac_counts_one_mac_plus_compressions() {
        let before = snapshot();
        crate::hmac::Hmac::<crate::sha1::Sha1>::mac(b"key", b"message");
        let delta = snapshot().since(&before);
        assert_eq!(delta.hmac, 1);
        assert!(delta.sha1_compress >= 2, "inner + outer hash compress");
    }

    #[test]
    fn aes_counts_blocks() {
        let aes = crate::aes::Aes128::new(&[0u8; 16]);
        let before = snapshot();
        let ct = aes.cbc_encrypt(&[0u8; 16], &[0u8; 32]);
        let delta = snapshot().since(&before);
        assert_eq!(delta.aes_block, 3, "two data blocks + PKCS#7 pad block");
        let before = snapshot();
        aes.cbc_decrypt(&[0u8; 16], &ct).unwrap();
        assert_eq!(snapshot().since(&before).aes_block, 3);
    }

    #[test]
    fn modexp_counts_montmuls() {
        let m = crate::mpint::Mpint::from_bytes_be(&0xFFFF_FFFBu64.to_be_bytes());
        let ctx = crate::montgomery::MontgomeryCtx::new(&m).unwrap();
        let base = crate::mpint::Mpint::from_bytes_be(&[3]);
        let exp = crate::mpint::Mpint::from_bytes_be(&65537u64.to_be_bytes());
        let before = snapshot();
        ctx.mod_exp(&base, &exp);
        let delta = snapshot().since(&before);
        // Square-and-multiply: ~2 mont_muls per exponent bit plus the
        // domain conversions. e = 65537 has 17 bits, 2 set.
        assert!(delta.modmul >= 17, "got {}", delta.modmul);
    }

    #[test]
    fn names_round_trip() {
        for p in Primitive::ALL {
            assert_eq!(Primitive::from_name(p.name()), Some(p));
        }
        assert_eq!(Primitive::from_name("nope"), None);
    }

    #[test]
    fn saturating_since_survives_reset() {
        count(Primitive::Hmac);
        let before = snapshot();
        reset();
        count(Primitive::ModMul);
        let delta = snapshot().since(&before);
        assert_eq!(delta.hmac, 0, "saturates instead of wrapping");
    }
}
