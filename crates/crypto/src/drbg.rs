//! HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//!
//! The software TPM's `GetRandom` (paper §2.2: "The TPM includes a random
//! number generator that can be used for key generation") is backed by this
//! generator, seeded from the simulated platform's entropy at manufacture
//! time. Determinism under a fixed seed is a feature here: it makes every
//! experiment in the evaluation harness reproducible bit-for-bit.

use crate::hmac::Hmac;
use crate::rng::CryptoRng;
use crate::sha256::Sha256;

const SEED_INTERVAL: u64 = 1 << 24;

/// HMAC-DRBG instance (SHA-256 variant).
///
/// # Examples
///
/// ```
/// use flicker_crypto::{HmacDrbg, CryptoRng};
/// let mut a = HmacDrbg::new(b"seed", b"nonce");
/// let mut b = HmacDrbg::new(b"seed", b"nonce");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct HmacDrbg {
    k: Vec<u8>,
    v: Vec<u8>,
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from `entropy` and a `nonce` (SP 800-90A §10.1.2.3).
    pub fn new(entropy: &[u8], nonce: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            k: vec![0u8; 32],
            v: vec![1u8; 32],
            reseed_counter: 1,
        };
        let mut seed = entropy.to_vec();
        seed.extend_from_slice(nonce);
        drbg.update(Some(&seed));
        drbg
    }

    /// Mixes fresh entropy into the state (SP 800-90A reseed).
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut h = Hmac::<Sha256>::new(&self.k);
        h.update(&self.v);
        h.update(&[0x00]);
        if let Some(data) = provided {
            h.update(data);
        }
        self.k = h.finalize();
        self.v = Hmac::<Sha256>::mac(&self.k, &self.v);

        if let Some(data) = provided {
            let mut h = Hmac::<Sha256>::new(&self.k);
            h.update(&self.v);
            h.update(&[0x01]);
            h.update(data);
            self.k = h.finalize();
            self.v = Hmac::<Sha256>::mac(&self.k, &self.v);
        }
    }

    /// Generates `out.len()` pseudorandom bytes.
    ///
    /// # Panics
    ///
    /// Panics if the generator exceeds the SP 800-90A reseed interval
    /// without a reseed (2^24 generate calls — unreachable in this
    /// workspace's workloads, and a hard failure is safer than silently
    /// degrading).
    pub fn generate(&mut self, out: &mut [u8]) {
        assert!(
            self.reseed_counter <= SEED_INTERVAL,
            "HMAC-DRBG requires reseed"
        );
        let mut offset = 0;
        while offset < out.len() {
            self.v = Hmac::<Sha256>::mac(&self.k, &self.v);
            let take = (out.len() - offset).min(self.v.len());
            out[offset..offset + take].copy_from_slice(&self.v[..take]);
            offset += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }
}

impl CryptoRng for HmacDrbg {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.generate(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// NIST CAVP HMAC-DRBG SHA-256 test vector (no personalization, no
    /// additional input; `pr=false`), from the published DRBG test files.
    #[test]
    fn cavp_vector() {
        let entropy =
            hex::decode("ca851911349384bffe89de1cbdc46e6831e44d34a4fb935ee285dd14b71a7488")
                .unwrap();
        let nonce = hex::decode("659ba96c601dc69fc902940805ec0ca8").unwrap();
        let mut drbg = HmacDrbg::new(&entropy, &nonce);
        let mut out = vec![0u8; 128];
        drbg.generate(&mut out);
        drbg.generate(&mut out);
        assert_eq!(
            hex::encode(&out),
            "e528e9abf2dece54d47c7e75e5fe302149f817ea9fb4bee6f4199697d04d5b89\
             d54fbb978a15b5c443c9ec21036d2460b6f73ebad0dc2aba6e624abf07745bc1\
             07694bb7547bb0995f70de25d6b29e2d3011bb19d27676c07162c8b5ccde0668\
             961df86803482cb37ed6d5c0bb8d50cf1f50d476aa0458bdaba806f48be9dcb8"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = HmacDrbg::new(b"entropy", b"n");
        let mut b = HmacDrbg::new(b"entropy", b"n");
        let mut oa = [0u8; 64];
        let mut ob = [0u8; 64];
        a.generate(&mut oa);
        b.generate(&mut ob);
        assert_eq!(oa, ob);
    }

    #[test]
    fn different_nonce_diverges() {
        let mut a = HmacDrbg::new(b"entropy", b"n1");
        let mut b = HmacDrbg::new(b"entropy", b"n2");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"entropy", b"n");
        let mut b = HmacDrbg::new(b"entropy", b"n");
        b.reseed(b"more entropy");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn odd_length_requests() {
        let mut drbg = HmacDrbg::new(b"e", b"n");
        let mut out = vec![0u8; 33];
        drbg.generate(&mut out);
        let mut out2 = vec![0u8; 1];
        drbg.generate(&mut out2);
        // Just exercising the partial-block copy path; values are arbitrary.
        assert_eq!(out.len(), 33);
    }
}
