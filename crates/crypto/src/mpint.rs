//! Multi-precision unsigned integer arithmetic.
//!
//! This is the reproduction of the paper's "multi-precision integer
//! library" (Figure 6, Crypto module): the arbitrary-precision arithmetic
//! underneath RSA key generation, encryption/decryption, and signing inside
//! the PAL. Numbers are stored as little-endian `u64` limbs with no sign —
//! RSA needs only non-negative integers, and the one signed computation
//! (the extended Euclidean algorithm in [`Mpint::mod_inverse`]) tracks signs
//! explicitly.
//!
//! Division is Knuth's Algorithm D (TAOCP vol. 2, §4.3.1), the same
//! algorithm every serious bignum library uses; modular exponentiation is
//! left-to-right binary with interleaved reduction.

use crate::rng::CryptoRng;
use crate::CryptoError;

/// An arbitrary-precision unsigned integer.
///
/// The invariant maintained by every constructor and operation is that
/// `limbs` has no trailing zero limbs (so `limbs.is_empty()` iff the value
/// is zero), keeping comparisons and bit-length computations O(1) in the
/// limb count.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Mpint {
    /// Little-endian limbs; no trailing zeros.
    limbs: Vec<u64>,
}

impl core::fmt::Debug for Mpint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Mpint(0x{})", crate::hex::encode(&self.to_bytes_be()))
    }
}

impl Ord for Mpint {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl PartialOrd for Mpint {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for Mpint {
    fn from(v: u64) -> Self {
        if v == 0 {
            Mpint::zero()
        } else {
            Mpint { limbs: vec![v] }
        }
    }
}

impl Mpint {
    /// Returns zero.
    pub fn zero() -> Self {
        Mpint { limbs: Vec::new() }
    }

    /// Returns one.
    pub fn one() -> Self {
        Mpint::from(1u64)
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    fn trim(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Mpint { limbs }
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Self::trim(limbs)
    }

    /// Serializes as a minimal big-endian byte string (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serializes as a fixed-width big-endian byte string, left-padded with
    /// zeros.
    ///
    /// Returns [`CryptoError::MessageTooLong`] if the value does not fit.
    pub fn to_bytes_be_padded(&self, width: usize) -> Result<Vec<u8>, CryptoError> {
        let raw = self.to_bytes_be();
        if raw.len() > width {
            return Err(CryptoError::MessageTooLong);
        }
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// Parses a hexadecimal string (no `0x` prefix; odd lengths allowed).
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        let padded = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_string()
        };
        Ok(Self::from_bytes_be(&crate::hex::decode(&padded)?))
    }

    /// Number of significant bits (zero has bit length 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order over the whole integer).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to 1, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &Mpint) -> Mpint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        #[expect(clippy::needless_range_loop, reason = "two-array lockstep")]
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Self::trim(out)
    }

    /// Returns `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &Mpint) -> Option<Mpint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::trim(out))
    }

    /// Returns `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`; use [`Mpint::checked_sub`] when underflow
    /// is a legitimate outcome.
    pub fn sub(&self, other: &Mpint) -> Mpint {
        self.checked_sub(other)
            .expect("mpint subtraction underflow")
    }

    /// Returns `self * other` (schoolbook multiplication).
    pub fn mul(&self, other: &Mpint) -> Mpint {
        if self.is_zero() || other.is_zero() {
            return Mpint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Self::trim(out)
    }

    /// Returns `self << bits`.
    pub fn shl(&self, bits: usize) -> Mpint {
        if self.is_zero() || bits == 0 {
            let mut v = self.clone();
            if bits > 0 {
                v = Self::trim(
                    std::iter::repeat_n(0, bits / 64)
                        .chain(v.limbs.iter().copied())
                        .collect(),
                );
            }
            return v;
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Self::trim(out)
    }

    /// Returns `self >> bits`.
    pub fn shr(&self, bits: usize) -> Mpint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Mpint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&n| n << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        Self::trim(out)
    }

    /// Returns `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &Mpint) -> (Mpint, Mpint) {
        assert!(!divisor.is_zero(), "mpint division by zero");
        if self < divisor {
            return (Mpint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_limb(divisor.limbs[0]);
        }
        self.div_rem_knuth(divisor)
    }

    fn div_rem_limb(&self, d: u64) -> (Mpint, Mpint) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Self::trim(q), Mpint::from(rem as u64))
    }

    /// Knuth Algorithm D for multi-limb divisors (TAOCP 4.3.1D).
    fn div_rem_knuth(&self, divisor: &Mpint) -> (Mpint, Mpint) {
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // extra high limb u[m+n]

        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;

        // D2-D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two dividend limbs.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v[n - 1] as u128;
            let mut rhat = top % v[n - 1] as u128;
            while qhat >= b || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }

            // D4: multiply and subtract qhat * v from u[j..j+n+1].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
                u[j + i] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = t as u64;
            borrow = t >> 64;

            q[j] = qhat as u64;

            // D5/D6: if we subtracted too much (probability ~2/2^64), add back.
            if borrow != 0 {
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = t as u64;
                    carry = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }

        // D8: denormalize the remainder.
        let rem = Self::trim(u[..n].to_vec()).shr(shift);
        (Self::trim(q), rem)
    }

    /// Returns `self % modulus`.
    pub fn rem(&self, modulus: &Mpint) -> Mpint {
        self.div_rem(modulus).1
    }

    /// Returns `(self * other) % modulus`.
    pub fn mul_mod(&self, other: &Mpint, modulus: &Mpint) -> Mpint {
        self.mul(other).rem(modulus)
    }

    /// The little-endian limb representation (no trailing zeros).
    pub(crate) fn limbs_le(&self) -> Vec<u64> {
        self.limbs.clone()
    }

    /// Builds a value from little-endian limbs (trailing zeros allowed).
    pub(crate) fn from_limbs_le(limbs: Vec<u64>) -> Mpint {
        Self::trim(limbs)
    }

    /// Returns `self^exponent mod modulus`.
    ///
    /// Odd moduli (every RSA modulus and prime) dispatch to Montgomery
    /// multiplication ([`crate::montgomery`]); even moduli fall back to
    /// the division-based [`Mpint::mod_exp_plain`].
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn mod_exp(&self, exponent: &Mpint, modulus: &Mpint) -> Mpint {
        assert!(!modulus.is_zero(), "mpint modular exponentiation mod 0");
        match crate::montgomery::MontgomeryCtx::new(modulus) {
            Some(ctx) => ctx.mod_exp(self, exponent),
            None => self.mod_exp_plain(exponent, modulus),
        }
    }

    /// Division-based modular exponentiation (the reference
    /// implementation [`Mpint::mod_exp`] is checked against, and the
    /// fallback for even moduli).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn mod_exp_plain(&self, exponent: &Mpint, modulus: &Mpint) -> Mpint {
        assert!(!modulus.is_zero(), "mpint modular exponentiation mod 0");
        if modulus.is_one() {
            return Mpint::zero();
        }
        let base = self.rem(modulus);
        if exponent.is_zero() {
            return Mpint::one();
        }
        let mut acc = Mpint::one();
        for i in (0..exponent.bit_len()).rev() {
            acc = acc.mul_mod(&acc, modulus);
            if exponent.bit(i) {
                acc = acc.mul_mod(&base, modulus);
            }
        }
        acc
    }

    /// Returns `gcd(self, other)` (binary-free Euclid; division is fast
    /// enough here).
    pub fn gcd(&self, other: &Mpint) -> Mpint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Returns the multiplicative inverse of `self` modulo `modulus`, or
    /// `None` if `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &Mpint) -> Option<Mpint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid with explicit sign tracking for the Bezout
        // coefficient of `self`.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        let mut t0 = (Mpint::zero(), false); // (magnitude, negative?)
        let mut t1 = (Mpint::one(), false);

        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1 with sign tracking.
            let qt1 = q.mul(&t1.0);
            let t2 = match (t0.1, t1.1) {
                (false, false) => {
                    if t0.0 >= qt1 {
                        (t0.0.sub(&qt1), false)
                    } else {
                        (qt1.sub(&t0.0), true)
                    }
                }
                (true, true) => {
                    if qt1 >= t0.0 {
                        (qt1.sub(&t0.0), false)
                    } else {
                        (t0.0.sub(&qt1), true)
                    }
                }
                (false, true) => (t0.0.add(&qt1), false),
                (true, false) => (t0.0.add(&qt1), true),
            };
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }

        if !r0.is_one() {
            return None;
        }
        let (mag, neg) = t0;
        let inv = if neg {
            modulus.sub(&mag.rem(modulus)).rem(modulus)
        } else {
            mag.rem(modulus)
        };
        Some(inv)
    }

    /// Returns a uniformly random integer in `[0, bound)` (rejection
    /// sampling over `bound.bit_len()`-bit candidates).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: CryptoRng + ?Sized>(rng: &mut R, bound: &Mpint) -> Mpint {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bit_len();
        let bytes = bits.div_ceil(8);
        let excess_bits = (bytes * 8 - bits) as u32;
        loop {
            let mut buf = vec![0u8; bytes];
            rng.fill_bytes(&mut buf);
            buf[0] &= 0xffu8.checked_shr(excess_bits).unwrap_or(0);
            let candidate = Mpint::from_bytes_be(&buf);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Returns a random integer of exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn random_bits<R: CryptoRng + ?Sized>(rng: &mut R, bits: usize) -> Mpint {
        assert!(bits > 0, "random_bits of zero width");
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        let excess_bits = (bytes * 8 - bits) as u32;
        buf[0] &= 0xffu8.checked_shr(excess_bits).unwrap_or(0);
        let mut v = Mpint::from_bytes_be(&buf);
        v.set_bit(bits - 1);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;
    use proptest::prelude::*;

    fn mp(v: u128) -> Mpint {
        let bytes = v.to_be_bytes();
        Mpint::from_bytes_be(&bytes)
    }

    #[test]
    fn zero_and_one() {
        assert!(Mpint::zero().is_zero());
        assert!(Mpint::one().is_one());
        assert!(Mpint::zero().is_even());
        assert!(!Mpint::one().is_even());
        assert_eq!(Mpint::zero().bit_len(), 0);
        assert_eq!(Mpint::one().bit_len(), 1);
    }

    #[test]
    fn byte_round_trip() {
        let v = Mpint::from_hex("0123456789abcdef0011223344556677deadbeef").unwrap();
        assert_eq!(
            crate::hex::encode(&v.to_bytes_be()),
            "0123456789abcdef0011223344556677deadbeef"
        );
        // Leading zeros are stripped on parse.
        let w = Mpint::from_bytes_be(&[0, 0, 1, 2]);
        assert_eq!(w.to_bytes_be(), vec![1, 2]);
    }

    #[test]
    fn padded_serialization() {
        let v = Mpint::from(0x1234u64);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert!(matches!(
            v.to_bytes_be_padded(1),
            Err(CryptoError::MessageTooLong)
        ));
    }

    #[test]
    fn add_with_carry_chain() {
        let a = mp(u128::MAX);
        let one = Mpint::one();
        let sum = a.add(&one);
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.sub(&one), a);
    }

    #[test]
    fn sub_underflow_detected() {
        assert!(Mpint::from(3u64).checked_sub(&Mpint::from(5u64)).is_none());
        assert_eq!(
            Mpint::from(5u64).checked_sub(&Mpint::from(3u64)).unwrap(),
            Mpint::from(2u64)
        );
    }

    #[test]
    fn mul_known_values() {
        // 2^64 * 2^64 = 2^128.
        let b64 = Mpint::one().shl(64);
        assert_eq!(b64.mul(&b64), Mpint::one().shl(128));
        assert_eq!(
            mp(0xffff_ffff).mul(&mp(0xffff_ffff)),
            mp(0xffff_fffe_0000_0001)
        );
    }

    #[test]
    fn shifts() {
        let v = Mpint::from_hex("deadbeefcafebabe1122334455667788").unwrap();
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shl(13).shr(13), v);
        assert_eq!(v.shr(200), Mpint::zero());
        assert_eq!(Mpint::zero().shl(100), Mpint::zero());
    }

    #[test]
    fn div_rem_single_limb() {
        let (q, r) = mp(1000).div_rem(&mp(7));
        assert_eq!(q, mp(142));
        assert_eq!(r, mp(6));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = Mpint::from_hex("deadbeefcafebabe112233445566778899aabbccddeeff00").unwrap();
        let b = Mpint::from_hex("0123456789abcdef0fedcba987654321").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_knuth_addback_path() {
        // Crafted so the qhat estimate overshoots and the D6 add-back runs:
        // dividend with a top limb pattern just below the divisor's.
        let a =
            Mpint::from_hex("80000000000000000000000000000000000000000000000000000000").unwrap();
        let b = Mpint::from_hex("800000000000000000000000000000ff").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Mpint::one().div_rem(&Mpint::zero());
    }

    #[test]
    fn mod_exp_small_cases() {
        // 4^13 mod 497 = 445 (classic example).
        assert_eq!(mp(4).mod_exp(&mp(13), &mp(497)), mp(445));
        assert_eq!(mp(2).mod_exp(&mp(0), &mp(7)), Mpint::one());
        assert_eq!(mp(2).mod_exp(&mp(10), &Mpint::one()), Mpint::zero());
    }

    #[test]
    fn mod_exp_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        let p = mp(1_000_000_007);
        for a in [2u128, 3, 65537, 123456789] {
            assert_eq!(mp(a).mod_exp(&p.sub(&Mpint::one()), &p), Mpint::one());
        }
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(mp(48).gcd(&mp(36)), mp(12));
        assert_eq!(mp(17).gcd(&mp(31)), Mpint::one());
        assert_eq!(mp(0).gcd(&mp(5)), mp(5));
    }

    #[test]
    fn mod_inverse_known() {
        // 3 * 4 = 12 = 1 mod 11.
        assert_eq!(mp(3).mod_inverse(&mp(11)).unwrap(), mp(4));
        // 65537 inverse mod a larger modulus round-trips.
        let m = Mpint::from_hex("c4f8e9e15dcadf2b96c763d981006a644ffb4415030a16ed1283883340f2aa0e")
            .unwrap();
        let e = mp(65537);
        let inv = e.mod_inverse(&m).unwrap();
        assert_eq!(e.mul_mod(&inv, &m), Mpint::one());
        // Non-coprime has no inverse.
        assert!(mp(6).mod_inverse(&mp(9)).is_none());
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = XorShiftRng::new(99);
        let bound = Mpint::from_hex("ffee00").unwrap();
        for _ in 0..200 {
            assert!(Mpint::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = XorShiftRng::new(5);
        for bits in [1usize, 7, 8, 9, 63, 64, 65, 512, 1024] {
            assert_eq!(Mpint::random_bits(&mut rng, bits).bit_len(), bits);
        }
    }

    proptest! {
        #[test]
        fn prop_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(
                Mpint::from(a).add(&Mpint::from(b)),
                mp(a as u128 + b as u128)
            );
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(
                Mpint::from(a).mul(&Mpint::from(b)),
                mp(a as u128 * b as u128)
            );
        }

        #[test]
        fn prop_div_rem_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
            let (q, r) = mp(a).div_rem(&mp(b));
            prop_assert_eq!(q, mp(a / b));
            prop_assert_eq!(r, mp(a % b));
        }

        #[test]
        fn prop_div_rem_reconstructs(
            a in proptest::collection::vec(any::<u8>(), 1..64),
            b in proptest::collection::vec(any::<u8>(), 1..32),
        ) {
            let a = Mpint::from_bytes_be(&a);
            let b = Mpint::from_bytes_be(&b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
        }

        #[test]
        fn prop_add_sub_round_trip(
            a in proptest::collection::vec(any::<u8>(), 0..48),
            b in proptest::collection::vec(any::<u8>(), 0..48),
        ) {
            let a = Mpint::from_bytes_be(&a);
            let b = Mpint::from_bytes_be(&b);
            prop_assert_eq!(a.add(&b).sub(&b), a);
        }

        #[test]
        fn prop_mul_commutes_and_distributes(
            a in proptest::collection::vec(any::<u8>(), 0..24),
            b in proptest::collection::vec(any::<u8>(), 0..24),
            c in proptest::collection::vec(any::<u8>(), 0..24),
        ) {
            let a = Mpint::from_bytes_be(&a);
            let b = Mpint::from_bytes_be(&b);
            let c = Mpint::from_bytes_be(&c);
            prop_assert_eq!(a.mul(&b), b.mul(&a));
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn prop_shift_round_trip(
            a in proptest::collection::vec(any::<u8>(), 0..32),
            s in 0usize..200,
        ) {
            let a = Mpint::from_bytes_be(&a);
            prop_assert_eq!(a.shl(s).shr(s), a);
        }

        #[test]
        fn prop_mod_exp_matches_naive(
            base in any::<u64>(),
            exp in 0u32..64,
            modulus in 2..=u64::MAX,
        ) {
            // Naive repeated multiplication in u128 for the reference.
            let m = modulus as u128;
            let mut expected = 1u128;
            for _ in 0..exp {
                expected = expected * (base as u128 % m) % m;
            }
            prop_assert_eq!(
                Mpint::from(base).mod_exp(&Mpint::from(exp as u64), &Mpint::from(modulus)),
                mp(expected)
            );
        }

        #[test]
        fn prop_mod_inverse_is_inverse(a in 1..=u64::MAX, m in 2..=u64::MAX) {
            let am = Mpint::from(a);
            let mm = Mpint::from(m);
            if let Some(inv) = am.mod_inverse(&mm) {
                prop_assert_eq!(am.mul_mod(&inv, &mm), Mpint::one());
                prop_assert!(inv < mm);
            } else {
                // No inverse implies gcd > 1.
                prop_assert!(!am.gcd(&mm).is_one());
            }
        }

        #[test]
        fn prop_byte_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
            let v = Mpint::from_bytes_be(&bytes);
            let round = Mpint::from_bytes_be(&v.to_bytes_be());
            prop_assert_eq!(v, round);
        }
    }
}
