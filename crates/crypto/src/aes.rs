//! AES-128 (FIPS 197) with ECB, CBC (PKCS#7 padding), and CTR modes.
//!
//! The paper's Crypto module provides AES for the common "seal a symmetric
//! key in the TPM, bulk-encrypt with it on the CPU" pattern described in
//! §2.2. This implementation uses the straightforward table-free S-box
//! formulation; the round transforms operate on a 16-byte column-major
//! state exactly as FIPS 197 describes them.

use crate::CryptoError;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An AES-128 key schedule usable for block encryption and decryption.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = INV_SBOX[*s as usize];
        }
    }

    // State is stored column-major: state[4*c + r] is row r, column c.
    fn shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
            for c in 0..4 {
                state[4 * c + r] = row[(c + r) % 4];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
            for c in 0..4 {
                state[4 * c + r] = row[(c + 4 - r) % 4];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] =
                gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
            state[4 * c + 1] =
                gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
            state[4 * c + 2] =
                gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
            state[4 * c + 3] =
                gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
        }
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        crate::cost::count(crate::cost::Primitive::AesBlock);
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        crate::cost::count(crate::cost::Primitive::AesBlock);
        Self::add_round_key(block, &self.round_keys[10]);
        for round in (1..10).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts `plaintext` in CBC mode with PKCS#7 padding.
    pub fn cbc_encrypt(&self, iv: &[u8; BLOCK_LEN], plaintext: &[u8]) -> Vec<u8> {
        let pad = BLOCK_LEN - (plaintext.len() % BLOCK_LEN);
        let mut data = plaintext.to_vec();
        data.extend(std::iter::repeat_n(pad as u8, pad));

        let mut out = Vec::with_capacity(data.len());
        let mut prev = *iv;
        for chunk in data.chunks_exact(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            for (i, (c, p)) in chunk.iter().zip(prev.iter()).enumerate() {
                block[i] = c ^ p;
            }
            self.encrypt_block(&mut block);
            out.extend_from_slice(&block);
            prev = block;
        }
        out
    }

    /// Decrypts CBC ciphertext and strips PKCS#7 padding.
    ///
    /// Returns [`CryptoError::BadPadding`] on malformed input.
    pub fn cbc_decrypt(
        &self,
        iv: &[u8; BLOCK_LEN],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
            return Err(CryptoError::InvalidLength {
                expected: BLOCK_LEN,
                actual: ciphertext.len() % BLOCK_LEN,
            });
        }
        let mut out = Vec::with_capacity(ciphertext.len());
        let mut prev = *iv;
        for chunk in ciphertext.chunks_exact(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            let saved = block;
            self.decrypt_block(&mut block);
            for (b, p) in block.iter_mut().zip(prev.iter()) {
                *b ^= p;
            }
            out.extend_from_slice(&block);
            prev = saved;
        }
        let pad = *out.last().expect("non-empty") as usize;
        if pad == 0 || pad > BLOCK_LEN || out.len() < pad {
            return Err(CryptoError::BadPadding);
        }
        if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
            return Err(CryptoError::BadPadding);
        }
        out.truncate(out.len() - pad);
        Ok(out)
    }

    /// Applies CTR-mode keystream to `buf` in place (encrypt == decrypt).
    ///
    /// The 16-byte counter block is `nonce || big-endian u64 counter`.
    pub fn ctr_apply(&self, nonce: &[u8; 8], mut counter: u64, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block[..8].copy_from_slice(nonce);
            block[8..].copy_from_slice(&counter.to_be_bytes());
            self.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex::decode("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = hex::decode("3243f6a8885a308d313198a2e0370734")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "3925841d02dc09fbdc118597196a0b32");
        aes.decrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "3243f6a8885a308d313198a2e0370734");
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex::decode("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = hex::decode("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn nist_sp800_38a_cbc() {
        let key: [u8; 16] = hex::decode("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        let iv: [u8; 16] = hex::decode("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let pt = hex::decode("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let ct = Aes128::new(&key).cbc_encrypt(&iv, &pt);
        // First block must match the SP 800-38A vector; the second block is
        // the encrypted PKCS#7 padding our API appends.
        assert_eq!(hex::encode(&ct[..16]), "7649abac8119b246cee98e9b12e9197d");
        assert_eq!(ct.len(), 32);
        let back = Aes128::new(&key).cbc_decrypt(&iv, &ct).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn nist_sp800_38a_ctr() {
        let key: [u8; 16] = hex::decode("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        // SP 800-38A CTR vector uses counter block f0f1...feff.
        let nonce: [u8; 8] = hex::decode("f0f1f2f3f4f5f6f7").unwrap().try_into().unwrap();
        let counter =
            u64::from_be_bytes(hex::decode("f8f9fafbfcfdfeff").unwrap().try_into().unwrap());
        let mut buf = hex::decode("6bc1bee22e409f96e93d7e117393172a").unwrap();
        Aes128::new(&key).ctr_apply(&nonce, counter, &mut buf);
        assert_eq!(hex::encode(&buf), "874d6191b620e3261bef6864990db6ce");
    }

    #[test]
    fn cbc_round_trips_all_lengths() {
        let key = [7u8; 16];
        let iv = [9u8; 16];
        let aes = Aes128::new(&key);
        for len in 0..64 {
            let pt: Vec<u8> = (0..len as u8).collect();
            let ct = aes.cbc_encrypt(&iv, &pt);
            assert_eq!(ct.len() % BLOCK_LEN, 0);
            assert_eq!(aes.cbc_decrypt(&iv, &ct).unwrap(), pt, "len={len}");
        }
    }

    #[test]
    fn cbc_rejects_tampered_padding() {
        let aes = Aes128::new(&[1u8; 16]);
        let iv = [0u8; 16];
        let mut ct = aes.cbc_encrypt(&iv, b"hello");
        let n = ct.len();
        ct[n - 1] ^= 0xff;
        // Tampering with the last block corrupts padding with high probability.
        assert!(aes.cbc_decrypt(&iv, &ct).is_err());
    }

    #[test]
    fn cbc_rejects_partial_block() {
        let aes = Aes128::new(&[1u8; 16]);
        assert!(aes.cbc_decrypt(&[0u8; 16], &[0u8; 17]).is_err());
        assert!(aes.cbc_decrypt(&[0u8; 16], &[]).is_err());
    }

    #[test]
    fn ctr_round_trip() {
        let aes = Aes128::new(&[3u8; 16]);
        let mut buf = b"counter mode state protection for flicker".to_vec();
        let orig = buf.clone();
        aes.ctr_apply(&[1u8; 8], 0, &mut buf);
        assert_ne!(buf, orig);
        aes.ctr_apply(&[1u8; 8], 0, &mut buf);
        assert_eq!(buf, orig);
    }
}
