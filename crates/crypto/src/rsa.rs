//! RSA key generation and raw (textbook) modular operations.
//!
//! The paper's applications use 1024-bit RSA keys inside PALs (secure
//! channel, CA signing) and the TPM itself holds 2048-bit keys (SRK, AIK,
//! sealing keys). Padding lives in [`crate::pkcs1`]; this module supplies
//! keys and the raw `m^e mod n` primitives, using CRT for the private
//! operation like every production implementation.

use crate::mpint::Mpint;
use crate::prime::{generate_prime, PrimeSearchStats};
use crate::rng::CryptoRng;
use crate::CryptoError;

/// Default public exponent (F4).
pub const PUBLIC_EXPONENT: u64 = 65537;
/// Miller-Rabin rounds used during key generation (error < 2^-80).
pub const MR_ROUNDS: u32 = 40;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: Mpint,
    e: Mpint,
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: Mpint,
    p: Mpint,
    q: Mpint,
    d_p: Mpint,
    d_q: Mpint,
    q_inv: Mpint,
}

impl core::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print private material.
        f.debug_struct("RsaPrivateKey")
            .field("bits", &self.public.n.bit_len())
            .finish_non_exhaustive()
    }
}

/// Cost accounting for a key generation, consumed by the timing model.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeygenStats {
    /// Search statistics for the first prime.
    pub p_stats: PrimeSearchStats,
    /// Search statistics for the second prime.
    pub q_stats: PrimeSearchStats,
}

impl RsaPublicKey {
    /// Constructs a public key from raw components.
    pub fn new(n: Mpint, e: Mpint) -> Self {
        RsaPublicKey { n, e }
    }

    /// The modulus `n`.
    pub fn n(&self) -> &Mpint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn e(&self) -> &Mpint {
        &self.e
    }

    /// Modulus length in bytes (k in PKCS#1 terms).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Raw public operation `m^e mod n`.
    ///
    /// Returns [`CryptoError::OutOfRange`] if `m >= n`.
    pub fn raw_encrypt(&self, m: &Mpint) -> Result<Mpint, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::OutOfRange("message >= modulus"));
        }
        Ok(m.mod_exp(&self.e, &self.n))
    }

    /// Serializes as `len(n) || n || len(e) || e` (big-endian u32 lengths).
    ///
    /// This is the wire format the secure-channel protocol sends to remote
    /// parties and the format measured into PCR 17 as PAL output.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses the [`RsaPublicKey::to_bytes`] format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let take = |bytes: &[u8], off: &mut usize| -> Result<Vec<u8>, CryptoError> {
            if bytes.len() < *off + 4 {
                return Err(CryptoError::Encoding("truncated length"));
            }
            let len =
                u32::from_be_bytes(bytes[*off..*off + 4].try_into().expect("4 bytes")) as usize;
            *off += 4;
            if bytes.len() < *off + len {
                return Err(CryptoError::Encoding("truncated field"));
            }
            let v = bytes[*off..*off + len].to_vec();
            *off += len;
            Ok(v)
        };
        let mut off = 0;
        let n = take(bytes, &mut off)?;
        let e = take(bytes, &mut off)?;
        if off != bytes.len() {
            return Err(CryptoError::Encoding("trailing bytes"));
        }
        Ok(RsaPublicKey::new(
            Mpint::from_bytes_be(&n),
            Mpint::from_bytes_be(&e),
        ))
    }
}

impl RsaPrivateKey {
    /// Generates a fresh keypair with modulus length `bits`.
    ///
    /// Returns the key and [`KeygenStats`] so callers can charge the
    /// simulated clock for the work actually performed.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not an even number >= 64.
    pub fn generate<R: CryptoRng + ?Sized>(bits: usize, rng: &mut R) -> (Self, KeygenStats) {
        assert!(
            bits >= 64 && bits.is_multiple_of(2),
            "unsupported RSA modulus size"
        );
        let e = Mpint::from(PUBLIC_EXPONENT);
        loop {
            let (p, p_stats) = generate_prime(bits / 2, MR_ROUNDS, rng);
            let (q, q_stats) = generate_prime(bits / 2, MR_ROUNDS, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = Mpint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            // e must be invertible mod phi(n).
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            let d_p = d.rem(&p1);
            let d_q = d.rem(&q1);
            let q_inv = q.mod_inverse(&p).expect("p, q distinct primes");
            let key = RsaPrivateKey {
                public: RsaPublicKey::new(n, e.clone()),
                d,
                p,
                q,
                d_p,
                d_q,
                q_inv,
            };
            return (key, KeygenStats { p_stats, q_stats });
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Raw private operation `c^d mod n`, computed via CRT.
    ///
    /// Returns [`CryptoError::OutOfRange`] if `c >= n`.
    pub fn raw_decrypt(&self, c: &Mpint) -> Result<Mpint, CryptoError> {
        if c >= &self.public.n {
            return Err(CryptoError::OutOfRange("ciphertext >= modulus"));
        }
        // CRT: m1 = c^dP mod p, m2 = c^dQ mod q,
        // h = qInv (m1 - m2) mod p, m = m2 + h q.
        let m1 = c.mod_exp(&self.d_p, &self.p);
        let m2 = c.mod_exp(&self.d_q, &self.q);
        let diff = if m1 >= m2 {
            m1.sub(&m2)
        } else {
            // (m1 - m2) mod p with m1 < m2: add enough multiples of p.
            self.p.sub(&m2.sub(&m1).rem(&self.p)).rem(&self.p)
        };
        let h = self.q_inv.mul_mod(&diff, &self.p);
        Ok(m2.add(&h.mul(&self.q)))
    }

    /// The private exponent (exposed for serialization into TPM key blobs).
    pub fn d(&self) -> &Mpint {
        &self.d
    }

    /// Serializes the full private key (used only inside simulated TPM
    /// storage, which models a hardware-protected boundary).
    pub fn to_bytes(&self) -> Vec<u8> {
        let fields = [
            self.public.n.to_bytes_be(),
            self.public.e.to_bytes_be(),
            self.d.to_bytes_be(),
            self.p.to_bytes_be(),
            self.q.to_bytes_be(),
        ];
        let mut out = Vec::new();
        for f in fields {
            out.extend_from_slice(&(f.len() as u32).to_be_bytes());
            out.extend_from_slice(&f);
        }
        out
    }

    /// Reconstructs a private key serialized by [`RsaPrivateKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut off = 0usize;
        let mut fields = Vec::with_capacity(5);
        for _ in 0..5 {
            if bytes.len() < off + 4 {
                return Err(CryptoError::Encoding("truncated length"));
            }
            let len = u32::from_be_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            off += 4;
            if bytes.len() < off + len {
                return Err(CryptoError::Encoding("truncated field"));
            }
            fields.push(Mpint::from_bytes_be(&bytes[off..off + len]));
            off += len;
        }
        if off != bytes.len() {
            return Err(CryptoError::Encoding("trailing bytes"));
        }
        let [n, e, d, p, q]: [Mpint; 5] = fields.try_into().expect("5 fields");
        let one = Mpint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        let d_p = d.rem(&p1);
        let d_q = d.rem(&q1);
        let q_inv = q
            .mod_inverse(&p)
            .ok_or(CryptoError::Encoding("q not invertible mod p"))?;
        Ok(RsaPrivateKey {
            public: RsaPublicKey::new(n, e),
            d,
            p,
            q,
            d_p,
            d_q,
            q_inv,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    fn test_key(bits: usize, seed: u64) -> RsaPrivateKey {
        let mut rng = XorShiftRng::new(seed);
        RsaPrivateKey::generate(bits, &mut rng).0
    }

    #[test]
    fn keygen_produces_working_keypair() {
        let key = test_key(512, 11);
        assert_eq!(key.public_key().n().bit_len(), 512);
        let m = Mpint::from(0x1234_5678_9abc_def0u64);
        let c = key.public_key().raw_encrypt(&m).unwrap();
        assert_ne!(c, m);
        assert_eq!(key.raw_decrypt(&c).unwrap(), m);
    }

    #[test]
    fn decrypt_encrypt_composes_both_ways() {
        // Sign direction: decrypt (private op) then encrypt (public op).
        let key = test_key(512, 12);
        let m = Mpint::from_hex("deadbeefcafebabe0123456789").unwrap();
        let s = key.raw_decrypt(&m).unwrap();
        assert_eq!(key.public_key().raw_encrypt(&s).unwrap(), m);
    }

    #[test]
    fn rejects_oversized_inputs() {
        let key = test_key(256, 13);
        let too_big = key.public_key().n().clone();
        assert!(key.public_key().raw_encrypt(&too_big).is_err());
        assert!(key.raw_decrypt(&too_big).is_err());
    }

    #[test]
    fn public_key_serialization_round_trip() {
        let key = test_key(256, 14);
        let bytes = key.public_key().to_bytes();
        let back = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&back, key.public_key());
    }

    #[test]
    fn public_key_rejects_malformed() {
        assert!(RsaPublicKey::from_bytes(&[]).is_err());
        assert!(RsaPublicKey::from_bytes(&[0, 0, 0, 200, 1]).is_err());
        let key = test_key(256, 15);
        let mut bytes = key.public_key().to_bytes();
        bytes.push(0);
        assert!(RsaPublicKey::from_bytes(&bytes).is_err());
    }

    #[test]
    fn private_key_serialization_round_trip() {
        let key = test_key(256, 16);
        let back = RsaPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        let m = Mpint::from(42u64);
        let c = key.public_key().raw_encrypt(&m).unwrap();
        assert_eq!(back.raw_decrypt(&c).unwrap(), m);
        assert_eq!(back.public_key(), key.public_key());
    }

    #[test]
    fn keygen_stats_populated() {
        let mut rng = XorShiftRng::new(17);
        let (_, stats) = RsaPrivateKey::generate(256, &mut rng);
        assert!(stats.p_stats.candidates_tried >= 1);
        assert!(stats.q_stats.candidates_tried >= 1);
        assert!(stats.p_stats.mr_rounds >= MR_ROUNDS as u64);
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = test_key(256, 18);
        let b = test_key(256, 19);
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn debug_does_not_leak_private_material() {
        let key = test_key(256, 20);
        let s = format!("{key:?}");
        assert!(!s.contains(&crate::hex::encode(&key.d().to_bytes_be())));
        assert!(s.contains("bits"));
    }

    #[test]
    fn crt_handles_m1_less_than_m2() {
        // Exercise the borrow path in raw_decrypt repeatedly with varied
        // ciphertexts; correctness is checked via round-trip.
        let key = test_key(256, 21);
        let mut rng = XorShiftRng::new(22);
        for _ in 0..20 {
            let m = Mpint::random_below(&mut rng, key.public_key().n());
            let c = key.public_key().raw_encrypt(&m).unwrap();
            assert_eq!(key.raw_decrypt(&c).unwrap(), m);
        }
    }
}
