//! SHA-1 (FIPS 180-4).
//!
//! SHA-1 is the measurement hash mandated by the TPM v1.2 specification and
//! therefore the one Flicker's whole attestation chain is built on: PCR
//! extends, SLB measurement during `SKINIT`, quote composites, and sealed
//! storage PCR bindings all use 20-byte SHA-1 digests. It is implemented
//! here for protocol fidelity, not as an endorsement of SHA-1's residual
//! collision resistance.

use crate::digest::Digest;

/// Length in bytes of a SHA-1 digest.
pub const OUTPUT_LEN: usize = 20;
/// SHA-1 compression block length in bytes.
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// Streaming SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use flicker_crypto::digest::Digest;
/// let d = flicker_crypto::sha1::Sha1::digest(b"abc");
/// assert_eq!(flicker_crypto::hex::encode(&d), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: H0,
            buffer: [0; BLOCK_LEN],
            buffered: 0,
            total_len: 0,
        }
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        crate::cost::count(crate::cost::Primitive::Sha1Compress);
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a827999),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = OUTPUT_LEN;
    const BLOCK_LEN: usize = BLOCK_LEN;

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        if data.is_empty() {
            // Everything was absorbed into the partial buffer; do not let
            // the remainder logic below clobber `buffered`.
            return;
        }
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for chunk in &mut chunks {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        // `update` above counted the padding byte; the length field must
        // reflect only the message, so neutralize the counter afterwards.
        while self.buffered != BLOCK_LEN - 8 {
            self.update(&[0x00]);
        }
        self.total_len = 0;
        self.update(&bit_len.to_be_bytes());
        let mut out = Vec::with_capacity(OUTPUT_LEN);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-1 returning a fixed-size array.
pub fn sha1(data: &[u8]) -> [u8; OUTPUT_LEN] {
    let v = Sha1::digest(data);
    let mut out = [0u8; OUTPUT_LEN];
    out.copy_from_slice(&v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hexdigest(data: &[u8]) -> String {
        hex::encode(&sha1(data))
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hexdigest(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hexdigest(b"abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hexdigest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex::encode(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split={split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for b in data.iter() {
            h.update(&[*b]);
        }
        assert_eq!(
            hex::encode(&h.finalize()),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn lengths_around_block_boundary() {
        // Padding logic is most fragile at 55/56/63/64-byte messages.
        for len in 50..70 {
            let data = vec![0xabu8; len];
            let mut h = Sha1::new();
            h.update(&data);
            assert_eq!(h.finalize(), Sha1::digest(&data), "len={len}");
        }
    }
}
