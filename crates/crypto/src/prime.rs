//! Primality testing and prime generation for RSA key generation.
//!
//! RSA-1024 key generation is the single most expensive CPU operation in the
//! paper's evaluation (185.7 ms average with a 14 % standard deviation in
//! Figure 9a — the variance comes from the geometric number of candidates
//! tried before a prime is found). This module reports how many candidates
//! and Miller–Rabin rounds were consumed so the simulator's cost model can
//! reproduce exactly that distribution.

use crate::mpint::Mpint;
use crate::rng::CryptoRng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Cost accounting for one prime-generation call, consumed by the
/// simulator's timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimeSearchStats {
    /// Candidates drawn (including the successful one).
    pub candidates_tried: u64,
    /// Total Miller–Rabin rounds executed across all candidates.
    pub mr_rounds: u64,
}

/// Returns true if `n` is probably prime (trial division + `rounds` rounds
/// of Miller–Rabin with random bases).
pub fn is_probable_prime<R: CryptoRng + ?Sized>(n: &Mpint, rounds: u32, rng: &mut R) -> bool {
    is_probable_prime_counted(n, rounds, rng, &mut 0)
}

fn is_probable_prime_counted<R: CryptoRng + ?Sized>(
    n: &Mpint,
    rounds: u32,
    rng: &mut R,
    mr_rounds: &mut u64,
) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pm = Mpint::from(p);
        if n == &pm {
            return true;
        }
        if n.rem(&pm).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&Mpint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    let two = Mpint::from(2u64);
    let n_minus_3 = n.sub(&Mpint::from(3u64));
    'witness: for _ in 0..rounds {
        *mr_rounds += 1;
        // Random base in [2, n-2].
        let a = Mpint::random_below(rng, &n_minus_3).add(&two);
        let mut x = a.mod_exp(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// The top two bits are forced to 1 (so an RSA modulus built from two such
/// primes has the full `2*bits` length) and the candidate is forced odd.
/// Returns the prime together with [`PrimeSearchStats`] for cost modelling.
///
/// # Panics
///
/// Panics if `bits < 16` (no cryptographic use and the top-two-bits trick
/// needs headroom).
pub fn generate_prime<R: CryptoRng + ?Sized>(
    bits: usize,
    mr_rounds: u32,
    rng: &mut R,
) -> (Mpint, PrimeSearchStats) {
    assert!(bits >= 16, "prime size too small");
    let mut stats = PrimeSearchStats::default();
    loop {
        stats.candidates_tried += 1;
        let mut candidate = Mpint::random_bits(rng, bits);
        candidate.set_bit(bits - 2);
        candidate.set_bit(0);
        if is_probable_prime_counted(&candidate, mr_rounds, rng, &mut stats.mr_rounds) {
            return (candidate, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    fn mp(v: u64) -> Mpint {
        Mpint::from(v)
    }

    #[test]
    fn small_primes_recognized() {
        let mut rng = XorShiftRng::new(1);
        for p in [2u64, 3, 5, 7, 11, 101, 257, 65537, 1_000_000_007] {
            assert!(
                is_probable_prime(&mp(p), 20, &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn composites_rejected() {
        let mut rng = XorShiftRng::new(2);
        for c in [1u64, 4, 6, 9, 15, 21, 100, 65536, 1_000_000_008] {
            assert!(!is_probable_prime(&mp(c), 20, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller-Rabin.
        let mut rng = XorShiftRng::new(3);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(
                !is_probable_prime(&mp(c), 20, &mut rng),
                "{c} is Carmichael"
            );
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut rng = XorShiftRng::new(4);
        let m127 = Mpint::one().shl(127).sub(&Mpint::one());
        assert!(is_probable_prime(&m127, 16, &mut rng));
        // 2^128 - 1 factors as 3 * 5 * 17 * ...
        let m128 = Mpint::one().shl(128).sub(&Mpint::one());
        assert!(!is_probable_prime(&m128, 16, &mut rng));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = XorShiftRng::new(5);
        for bits in [64usize, 128, 256] {
            let (p, stats) = generate_prime(bits, 8, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            // Top two bits set.
            assert!(p.bit(bits - 1) && p.bit(bits - 2));
            assert!(stats.candidates_tried >= 1);
            assert!(stats.mr_rounds >= 8, "successful candidate runs all rounds");
        }
    }

    #[test]
    fn distinct_invocations_yield_distinct_primes() {
        let mut rng = XorShiftRng::new(6);
        let (p, _) = generate_prime(128, 8, &mut rng);
        let (q, _) = generate_prime(128, 8, &mut rng);
        assert_ne!(p, q);
    }
}
