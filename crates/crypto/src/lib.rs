//! From-scratch cryptographic primitives for the Flicker reproduction.
//!
//! The Flicker paper (EuroSys 2008, Figure 6) ships a self-contained
//! "Crypto" module inside the PAL's TCB precisely because the TCB argument
//! depends on owning every line of security-relevant code. This crate plays
//! that role for the reproduction: every algorithm Flicker's applications
//! use is implemented here, with no external cryptography dependencies.
//!
//! Provided algorithms (mirroring the paper's module):
//!
//! * Hashes: [`sha1`], [`sha256`], [`sha512`], [`md5`]
//! * MACs: [`hmac`]
//! * Symmetric ciphers: [`aes`] (AES-128, ECB/CBC/CTR), [`rc4`]
//! * Multi-precision integers: [`mpint`], primality testing in [`prime`]
//! * RSA: [`rsa`] (keygen / raw ops), [`pkcs1`] (v1.5 padding, sign/verify)
//! * Password hashing: [`md5crypt`] (the `$1$` scheme used in `/etc/passwd`)
//! * Deterministic random generation: [`drbg`] (HMAC-DRBG per SP 800-90A)
//! * Utilities: [`hex`], constant-time comparison in [`ct`]
//!
//! These implementations favour clarity and auditability over speed, like
//! the original PAL libraries did. They are validated against published
//! test vectors in each module's unit tests.

pub mod aes;
pub mod cost;
pub mod ct;
pub mod digest;
pub mod drbg;
pub mod hex;
pub mod hmac;
pub mod md5;
pub mod md5crypt;
pub mod montgomery;
pub mod mpint;
pub mod pkcs1;
pub mod prime;
pub mod rc4;
pub mod rng;
pub mod rsa;
pub mod sha1;
pub mod sha256;
pub mod sha512;

pub use ct::{ct_eq, ct_eq_examined};
pub use drbg::HmacDrbg;
pub use mpint::Mpint;
pub use rng::CryptoRng;
pub use rsa::{RsaPrivateKey, RsaPublicKey};

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// An input buffer had an invalid length for the requested operation.
    InvalidLength {
        /// What the operation expected.
        expected: usize,
        /// What it was given.
        actual: usize,
    },
    /// A padding check failed (PKCS#1, CBC, ...).
    BadPadding,
    /// A ciphertext or signature failed verification.
    VerificationFailed,
    /// A message was too large for the key or mode in use.
    MessageTooLong,
    /// Key generation could not find suitable parameters.
    KeyGeneration(&'static str),
    /// A value was out of the range required by the algorithm.
    OutOfRange(&'static str),
    /// Hex or other encoding input could not be parsed.
    Encoding(&'static str),
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::InvalidLength { expected, actual } => {
                write!(f, "invalid length: expected {expected}, got {actual}")
            }
            CryptoError::BadPadding => write!(f, "bad padding"),
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::MessageTooLong => write!(f, "message too long"),
            CryptoError::KeyGeneration(s) => write!(f, "key generation failed: {s}"),
            CryptoError::OutOfRange(s) => write!(f, "value out of range: {s}"),
            CryptoError::Encoding(s) => write!(f, "encoding error: {s}"),
        }
    }
}

impl std::error::Error for CryptoError {}
