//! Montgomery-form modular multiplication and exponentiation.
//!
//! RSA-1024/2048 exponentiation with plain multiply-then-divide reduction
//! spends most of its time in Knuth division. Montgomery's method (CIOS
//! variant — Koç, Acar, Kaliski, "Analyzing and Comparing Montgomery
//! Multiplication Algorithms") replaces every reduction with shifts and
//! adds. [`crate::mpint::Mpint::mod_exp`] switches to this path for odd
//! moduli (every RSA modulus and prime is odd); the `mont_vs_division`
//! Criterion bench quantifies the win.

use crate::mpint::Mpint;

/// Precomputed context for arithmetic modulo an odd `n`.
pub struct MontgomeryCtx {
    /// The modulus (odd, > 1), as little-endian limbs.
    n: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n_prime: u64,
    /// `R² mod n` where `R = 2^(64·len)`, for conversion into Montgomery
    /// form.
    r2: Vec<u64>,
}

/// Computes `-n⁻¹ mod 2⁶⁴` for odd `n` via Newton iteration (5 rounds
/// double the precision each time: 2 → 4 → 8 → 16 → 32 → 64 bits).
fn neg_inv_u64(n0: u64) -> u64 {
    debug_assert!(n0 & 1 == 1);
    let mut inv: u64 = n0; // correct mod 2^3 for odd n0 (n*n ≡ 1 mod 8)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
    }
    debug_assert_eq!(n0.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

/// Compares little-endian limb slices of equal length.
fn geq(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

impl MontgomeryCtx {
    /// Builds a context for odd `modulus > 1`; `None` for even or trivial
    /// moduli.
    pub fn new(modulus: &Mpint) -> Option<MontgomeryCtx> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.limbs_le();
        let n_prime = neg_inv_u64(n[0]);
        // R² mod n by repeated doubling: start from R mod n (= 2^(64k) mod
        // n) and double 64k times.
        let k = n.len();
        let r_mod_n = Mpint::one().shl(64 * k).rem(modulus);
        let mut r2 = r_mod_n;
        for _ in 0..64 * k {
            r2 = r2.add(&r2).rem(modulus);
        }
        Some(MontgomeryCtx {
            n,
            n_prime,
            r2: Self::pad(&r2, k),
        })
    }

    fn pad(v: &Mpint, k: usize) -> Vec<u64> {
        let mut limbs = v.limbs_le();
        limbs.resize(k, 0);
        limbs
    }

    /// CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod n` for
    /// equal-length Montgomery-form inputs.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        crate::cost::count(crate::cost::Primitive::ModMul);
        let k = self.n.len();
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter().take(k) {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let mut carry: u128 = (t[0] as u128 + m as u128 * self.n[0] as u128) >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + ((s >> 64) as u64);
            t[k + 1] = 0;
        }
        t.truncate(k + 1);
        // Conditional final subtraction.
        if t[k] != 0 || geq(&t[..k], &self.n) {
            // t may exceed n by at most n (t < 2n), so one subtraction
            // suffices; handle the t[k]=1 overflow limb via wrapping.
            let mut borrow = 0u64;
            #[expect(clippy::needless_range_loop, reason = "two-array lockstep")]
            for i in 0..k {
                let (d1, b1) = t[i].overflowing_sub(self.n[i]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                t[i] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            t[k] = t[k].wrapping_sub(borrow);
            debug_assert_eq!(t[k], 0);
        }
        t.truncate(k);
        t
    }

    /// Modular exponentiation `base^exp mod n` (left-to-right binary over
    /// Montgomery products).
    pub fn mod_exp(&self, base: &Mpint, exp: &Mpint) -> Mpint {
        let k = self.n.len();
        let modulus = Mpint::from_limbs_le(self.n.clone());
        let base_red = base.rem(&modulus);
        if exp.is_zero() {
            return Mpint::one().rem(&modulus);
        }
        // Into Montgomery form: a·R = montmul(a, R²).
        let a = self.mont_mul(&Self::pad(&base_red, k), &self.r2);
        // 1 in Montgomery form = R mod n = montmul(1, R²).
        let one_m = self.mont_mul(&Self::pad(&Mpint::one(), k), &self.r2);

        let mut acc = one_m.clone();
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &a);
            }
        }
        // Out of Montgomery form: montmul(acc, 1).
        let mut unit = vec![0u64; k];
        unit[0] = 1;
        let out = self.mont_mul(&acc, &unit);
        Mpint::from_limbs_le(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;
    use proptest::prelude::*;

    fn mp(v: u128) -> Mpint {
        Mpint::from_bytes_be(&v.to_be_bytes())
    }

    #[test]
    fn neg_inv_correct_for_odd_values() {
        for n in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let ninv = neg_inv_u64(n);
            assert_eq!(n.wrapping_mul(ninv), 1u64.wrapping_neg());
        }
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryCtx::new(&mp(10)).is_none());
        assert!(MontgomeryCtx::new(&Mpint::one()).is_none());
        assert!(MontgomeryCtx::new(&Mpint::zero()).is_none());
        assert!(MontgomeryCtx::new(&mp(9)).is_some());
    }

    #[test]
    fn matches_plain_mod_exp_small() {
        let m = mp(497);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.mod_exp(&mp(4), &mp(13)), mp(445));
        assert_eq!(ctx.mod_exp(&mp(2), &mp(0)), Mpint::one());
        assert_eq!(ctx.mod_exp(&mp(0), &mp(5)), Mpint::zero());
    }

    #[test]
    fn matches_plain_mod_exp_large() {
        let mut rng = XorShiftRng::new(77);
        for _ in 0..10 {
            let mut m = Mpint::random_bits(&mut rng, 512);
            m.set_bit(0); // odd
            let base = Mpint::random_below(&mut rng, &m);
            let exp = Mpint::random_bits(&mut rng, 128);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            assert_eq!(ctx.mod_exp(&base, &exp), base.mod_exp_plain(&exp, &m));
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // 2^126 primes-ish check with a known prime: 2^127 - 1.
        let p = Mpint::one().shl(127).sub(&Mpint::one());
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let pm1 = p.sub(&Mpint::one());
        for a in [2u128, 3, 65537] {
            assert_eq!(ctx.mod_exp(&mp(a), &pm1), Mpint::one());
        }
    }

    proptest! {
        #[test]
        fn prop_matches_plain(
            base in any::<u128>(),
            exp in any::<u64>(),
            modulus in any::<u128>(),
        ) {
            let m = mp(modulus | 1); // force odd
            prop_assume!(!m.is_one());
            let ctx = MontgomeryCtx::new(&m).unwrap();
            let b = mp(base);
            let e = Mpint::from(exp);
            prop_assert_eq!(ctx.mod_exp(&b, &e), b.mod_exp_plain(&e, &m));
        }

        #[test]
        fn prop_mont_mul_reduces(seed in any::<u64>()) {
            let mut rng = XorShiftRng::new(seed);
            let mut m = Mpint::random_bits(&mut rng, 256);
            m.set_bit(0);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            let a = Mpint::random_below(&mut rng, &m);
            let b = Mpint::random_below(&mut rng, &m);
            let r = ctx.mod_exp(&a, &b);
            prop_assert!(r < m, "result fully reduced");
        }
    }
}
