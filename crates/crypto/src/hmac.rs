//! HMAC (RFC 2104), generic over any [`Digest`] in this crate.
//!
//! The distributed-computing application (paper §6.2) MACs its
//! integrity-protected state with HMAC under a TPM-sealed symmetric key;
//! the TPM's OIAP/OSAP authorization sessions (paper §5.1.2) also compute
//! HMAC-SHA-1 over command parameters.

use crate::digest::Digest;

/// Streaming HMAC instance over hash `D`.
///
/// # Examples
///
/// ```
/// use flicker_crypto::{hmac::Hmac, sha1::Sha1};
/// let tag = Hmac::<Sha1>::mac(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     flicker_crypto::hex::encode(&tag),
///     "de7c9b85b8b78aa6bc8a7a36f70a90701c9db4d9"
/// );
/// ```
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    outer: D,
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance keyed with `key`.
    ///
    /// Keys longer than the hash block length are first hashed, per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut padded = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let kh = D::digest(key);
            padded[..kh.len()].copy_from_slice(&kh);
        } else {
            padded[..key.len()].copy_from_slice(key);
        }

        let mut inner = D::default();
        let ipad: Vec<u8> = padded.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);

        let mut outer = D::default();
        let opad: Vec<u8> = padded.iter().map(|b| b ^ 0x5c).collect();
        outer.update(&opad);

        Hmac { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the authentication tag (`D::OUTPUT_LEN` bytes).
    pub fn finalize(mut self) -> Vec<u8> {
        crate::cost::count(crate::cost::Primitive::Hmac);
        let inner_hash = self.inner.finalize();
        self.outer.update(&inner_hash);
        self.outer.finalize()
    }

    /// One-shot HMAC computation.
    pub fn mac(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` against the HMAC of `data` in constant time.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use crate::md5::Md5;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0b; 20];
        let tag = Hmac::<Sha1>::mac(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_sha1_case2() {
        let tag = Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_sha1_long_key() {
        // Case 6: 80-byte key exercises the hash-the-key path.
        let key = [0xaa; 80];
        let tag = Hmac::<Sha1>::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn rfc2202_md5_case1() {
        let key = [0x0b; 16];
        let tag = Hmac::<Md5>::mac(&key, b"Hi There");
        assert_eq!(hex::encode(&tag), "9294727a3638bb1c13f48ef8158bfc9d");
    }

    #[test]
    fn rfc4231_sha256_case2() {
        let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let key = b"0123456789abcdef";
        let data = b"some state to protect across flicker sessions";
        let mut h = Hmac::<Sha1>::new(key);
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), Hmac::<Sha1>::mac(key, data));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = Hmac::<Sha1>::mac(b"k", b"m");
        assert!(Hmac::<Sha1>::verify(b"k", b"m", &tag));
        assert!(!Hmac::<Sha1>::verify(b"k", b"m2", &tag));
        assert!(!Hmac::<Sha1>::verify(b"k2", b"m", &tag));
        let mut bad = tag.clone();
        bad[0] ^= 1;
        assert!(!Hmac::<Sha1>::verify(b"k", b"m", &bad));
    }
}
