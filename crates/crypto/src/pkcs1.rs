//! PKCS#1 v1.5 (RFC 2437) encryption padding and signatures.
//!
//! The paper's SSH application explicitly uses "PKCS1 encryption which is
//! chosen-ciphertext-secure and nonmalleable" (§6.3.1, citing \[15\] =
//! RFC 2437) to protect the password in transit, and the CA application
//! signs certificates with RSA. Both paddings are implemented here over the
//! raw RSA operations from [`crate::rsa`].

use crate::digest::Digest;
use crate::mpint::Mpint;
use crate::rng::CryptoRng;
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::sha1::Sha1;
use crate::CryptoError;

/// DER prefix of the `DigestInfo` structure for SHA-1 (RFC 8017 §9.2 note 1).
const SHA1_DIGEST_INFO: [u8; 15] = [
    0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14,
];

/// Encrypts `msg` under `key` with EME-PKCS1-v1_5 padding (block type 2).
///
/// Returns [`CryptoError::MessageTooLong`] if `msg` exceeds `k - 11` bytes
/// for a `k`-byte modulus.
pub fn encrypt<R: CryptoRng + ?Sized>(
    key: &RsaPublicKey,
    msg: &[u8],
    rng: &mut R,
) -> Result<Vec<u8>, CryptoError> {
    let k = key.modulus_len();
    if msg.len() + 11 > k {
        return Err(CryptoError::MessageTooLong);
    }
    // EM = 0x00 || 0x02 || PS || 0x00 || M, PS = nonzero random bytes.
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x02);
    for _ in 0..k - msg.len() - 3 {
        loop {
            let mut b = [0u8; 1];
            rng.fill_bytes(&mut b);
            if b[0] != 0 {
                em.push(b[0]);
                break;
            }
        }
    }
    em.push(0x00);
    em.extend_from_slice(msg);

    let m = Mpint::from_bytes_be(&em);
    let c = key.raw_encrypt(&m)?;
    c.to_bytes_be_padded(k)
}

/// Decrypts an EME-PKCS1-v1_5 ciphertext.
///
/// Returns [`CryptoError::BadPadding`] on any structural violation. (The
/// original Flicker PAL runs in an environment with no observable timing
/// side channel to the attacker during the session, but we still avoid
/// distinguishing padding failures in the error type.)
pub fn decrypt(key: &RsaPrivateKey, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let k = key.public_key().modulus_len();
    if ciphertext.len() != k {
        return Err(CryptoError::BadPadding);
    }
    let c = Mpint::from_bytes_be(ciphertext);
    let m = key.raw_decrypt(&c).map_err(|_| CryptoError::BadPadding)?;
    let em = m
        .to_bytes_be_padded(k)
        .map_err(|_| CryptoError::BadPadding)?;

    if em[0] != 0x00 || em[1] != 0x02 {
        return Err(CryptoError::BadPadding);
    }
    // Find the 0x00 separator after at least 8 padding bytes.
    let sep = em[2..]
        .iter()
        .position(|&b| b == 0)
        .ok_or(CryptoError::BadPadding)?;
    if sep < 8 {
        return Err(CryptoError::BadPadding);
    }
    Ok(em[2 + sep + 1..].to_vec())
}

fn emsa_encode(msg: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let hash = Sha1::digest(msg);
    let t_len = SHA1_DIGEST_INFO.len() + hash.len();
    if k < t_len + 11 {
        return Err(CryptoError::MessageTooLong);
    }
    // EM = 0x00 || 0x01 || 0xFF..FF || 0x00 || DigestInfo || H.
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xff, k - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(&SHA1_DIGEST_INFO);
    em.extend_from_slice(&hash);
    Ok(em)
}

/// Signs `msg` with RSASSA-PKCS1-v1_5 over SHA-1.
pub fn sign(key: &RsaPrivateKey, msg: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let k = key.public_key().modulus_len();
    let em = emsa_encode(msg, k)?;
    let m = Mpint::from_bytes_be(&em);
    let s = key.raw_decrypt(&m)?;
    s.to_bytes_be_padded(k)
}

/// Verifies an RSASSA-PKCS1-v1_5 SHA-1 signature.
///
/// Verification re-encodes the expected encoded message and compares it to
/// the full decrypted block, which forecloses the Bleichenbacher '06
/// forgery class.
pub fn verify(key: &RsaPublicKey, msg: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
    let k = key.modulus_len();
    if signature.len() != k {
        return Err(CryptoError::VerificationFailed);
    }
    let s = Mpint::from_bytes_be(signature);
    let m = key
        .raw_encrypt(&s)
        .map_err(|_| CryptoError::VerificationFailed)?;
    let em = m
        .to_bytes_be_padded(k)
        .map_err(|_| CryptoError::VerificationFailed)?;
    let expected = emsa_encode(msg, k)?;
    if crate::ct_eq(&em, &expected) {
        Ok(())
    } else {
        Err(CryptoError::VerificationFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    fn test_key(seed: u64) -> RsaPrivateKey {
        let mut rng = XorShiftRng::new(seed);
        RsaPrivateKey::generate(512, &mut rng).0
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = test_key(31);
        let mut rng = XorShiftRng::new(32);
        let msg = b"user password + nonce";
        let ct = encrypt(key.public_key(), msg, &mut rng).unwrap();
        assert_eq!(ct.len(), key.public_key().modulus_len());
        assert_eq!(decrypt(&key, &ct).unwrap(), msg);
    }

    #[test]
    fn encryption_is_randomized() {
        let key = test_key(33);
        let mut rng = XorShiftRng::new(34);
        let a = encrypt(key.public_key(), b"m", &mut rng).unwrap();
        let b = encrypt(key.public_key(), b"m", &mut rng).unwrap();
        assert_ne!(a, b);
        assert_eq!(decrypt(&key, &a).unwrap(), b"m");
        assert_eq!(decrypt(&key, &b).unwrap(), b"m");
    }

    #[test]
    fn oversized_message_rejected() {
        let key = test_key(35);
        let mut rng = XorShiftRng::new(36);
        let k = key.public_key().modulus_len();
        let msg = vec![1u8; k - 10];
        assert!(matches!(
            encrypt(key.public_key(), &msg, &mut rng),
            Err(CryptoError::MessageTooLong)
        ));
        // Largest legal message fits.
        let msg = vec![1u8; k - 11];
        let ct = encrypt(key.public_key(), &msg, &mut rng).unwrap();
        assert_eq!(decrypt(&key, &ct).unwrap(), msg);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = test_key(37);
        let mut rng = XorShiftRng::new(38);
        let ct = encrypt(key.public_key(), b"secret", &mut rng).unwrap();
        // Flipping bits produces garbage padding with overwhelming probability.
        let mut bad = ct.clone();
        bad[0] ^= 0x80;
        let r = decrypt(&key, &bad);
        assert!(r.is_err() || r.unwrap() != b"secret");
        assert!(decrypt(&key, &ct[1..]).is_err());
    }

    #[test]
    fn empty_message_round_trips() {
        let key = test_key(39);
        let mut rng = XorShiftRng::new(40);
        let ct = encrypt(key.public_key(), b"", &mut rng).unwrap();
        assert_eq!(decrypt(&key, &ct).unwrap(), b"");
    }

    #[test]
    fn sign_verify_round_trip() {
        let key = test_key(41);
        let sig = sign(&key, b"certificate signing request").unwrap();
        assert!(verify(key.public_key(), b"certificate signing request", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key(42);
        let sig = sign(&key, b"msg A").unwrap();
        assert!(verify(key.public_key(), b"msg B", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key = test_key(43);
        let other = test_key(44);
        let sig = sign(&key, b"msg").unwrap();
        assert!(verify(other.public_key(), b"msg", &sig).is_err());
    }

    #[test]
    fn verify_rejects_bitflips() {
        let key = test_key(45);
        let sig = sign(&key, b"msg").unwrap();
        for i in [0, sig.len() / 2, sig.len() - 1] {
            let mut bad = sig.clone();
            bad[i] ^= 1;
            assert!(verify(key.public_key(), b"msg", &bad).is_err(), "bit {i}");
        }
        assert!(verify(key.public_key(), b"msg", &sig[..sig.len() - 1]).is_err());
    }

    #[test]
    fn signing_is_deterministic() {
        let key = test_key(46);
        assert_eq!(sign(&key, b"m").unwrap(), sign(&key, b"m").unwrap());
    }
}
