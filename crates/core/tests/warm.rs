//! Warm-path equivalence: §7.6 caching is a pure latency optimisation.
//!
//! The property: for any seeded fault schedule (TPM busy gates, torn NV
//! writes) and any workload, running the same back-to-back PAL sessions
//! with the warm path ON and OFF produces **byte-identical PAL outcomes**
//! and **identical paper-invariant audit verdicts**. Caching may skip a
//! `TPM_Seal` or reuse an auth session, but it must never change what a
//! session computes, releases, or proves.
//!
//! Two determinism decisions make this hold (see `flicker-tpm`):
//! session nonces come from a dedicated DRBG so skipped session opens
//! never shift the `GetRandom` stream, and seal blobs use an SIV-style
//! deterministic nonce so a re-seal of an unchanged payload is
//! byte-identical to the memoized blob it replaces.

use flicker_core::{
    run_session, FlickerResult, NativePal, PalContext, PalPayload, ReplayProtectedStorage,
    SessionParams, SlbImage, SlbOptions,
};
use flicker_faults::{Fault, FaultInjector, FaultPlan};
use flicker_os::{Os, OsConfig};
use flicker_trace::{audit, Trace};
use proptest::prelude::*;
use std::sync::Arc;

/// NV index for this harness's storage workload (distinct from the fault
/// sweep's `0x0001_4000`, the perf baseline's `0x0001_5000`, and the
/// farm's `0x0001_6000`).
const WARM_NV_INDEX: u32 = 0x0001_7000;

/// Seals a fixed payload to itself and proves it can get it back. Running
/// this three times back to back is the §7.6 warm case: same image (the
/// measurement memo hits), same payload and PCR policy (the seal memo
/// hits), same machine (the parked auth session is reused).
struct SealRoundtripPal;
impl NativePal for SealRoundtripPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let payload = b"warm-equivalence-payload";
        let blob = ctx.seal_to_self(payload)?;
        let back = ctx.unseal(&blob)?;
        ctx.write_output(&back)
    }
}

/// A replay-protected storage chain inside one session: setup, seal,
/// unseal. Its NV counter advances every run, so the sealed payload is
/// never identical and the seal memo must *not* fire — the cold and warm
/// TPM command streams for this PAL are the same.
struct StorageChainPal;
impl NativePal for StorageChainPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let store = ReplayProtectedStorage::new(WARM_NV_INDEX);
        store.setup(ctx, &[0u8; 20])?;
        let blob = store.seal(ctx, b"warm-equivalence-state")?;
        let data = store.unseal(ctx, &blob)?;
        ctx.write_output(&data)
    }
}

fn build_slb(storage: bool) -> SlbImage {
    let payload = if storage {
        PalPayload::Native {
            identity: b"warm-storage-pal".to_vec(),
            program: Arc::new(StorageChainPal),
        }
    } else {
        PalPayload::Native {
            identity: b"warm-roundtrip-pal".to_vec(),
            program: Arc::new(SealRoundtripPal),
        }
    };
    SlbImage::build(payload, SlbOptions::default()).unwrap()
}

/// Decodes a generated `(kind, skip, mag)` triple into a fault plan. Only
/// faults whose recovery is deterministic are in scope: TPM busy gates
/// are absorbed by the bounded backoff, torn NV writes fail the same NV
/// write in both runs (caching never skips an NV write). Power loss is
/// exercised separately (it deliberately invalidates the warm state).
fn plan(kind: u8, skip: u32, mag: u32) -> FaultPlan {
    match kind {
        1 => FaultPlan::one(Fault::TpmTransient {
            skip,
            failures: mag.clamp(1, 2),
        }),
        2 => FaultPlan::one(Fault::TornNvWrite {
            skip: skip % 4,
            keep: mag as usize * 3,
        }),
        _ => FaultPlan::none(),
    }
}

/// One PAL session's observable result: what the PAL computed (or how it
/// failed) and what the session released.
type Outcome = (Result<(), String>, Vec<u8>);

struct RunRecord {
    outcomes: Vec<Outcome>,
    verdicts: Vec<String>,
    warm_hits: u64,
}

/// Runs `iterations` back-to-back sessions of one image on a fresh
/// platform, with the warm path on or off, under one armed fault
/// schedule carried across the whole run (consumed gates stay consumed,
/// as in the farm).
fn drive(
    seed: u8,
    schedule: &FaultPlan,
    storage: bool,
    warm: bool,
    iterations: usize,
) -> RunRecord {
    let mut os = Os::boot(OsConfig::fast_for_tests(seed));
    let trace = Trace::new();
    os.set_tracer(trace.clone());
    if !warm {
        os.machine_mut().set_warm_enabled(false);
    }
    let slb = build_slb(storage);
    os.machine_mut()
        .set_fault_injector(FaultInjector::new(schedule));
    let mut outcomes = Vec::new();
    for _ in 0..iterations {
        match run_session(&mut os, &slb, &SessionParams::default()) {
            Ok(rec) => outcomes.push((
                rec.pal_result.clone().map_err(|e| e.to_string()),
                rec.outputs.clone(),
            )),
            Err(e) => outcomes.push((Err(e.to_string()), Vec::new())),
        }
    }
    os.machine_mut().clear_fault_injector();
    let verdicts = audit::audit_events(&trace.events())
        .into_iter()
        .map(|v| v.to_string())
        .collect();
    RunRecord {
        outcomes,
        verdicts,
        warm_hits: trace.counter("warm.hit"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline §7.6 property (see module docs).
    #[test]
    fn warm_and_cold_runs_agree(
        seed in 1u8..200,
        kind in 0u8..3,
        skip in 0u32..6,
        mag in 1u32..3,
        storage in any::<bool>(),
    ) {
        let schedule = plan(kind, skip, mag);
        let warm = drive(seed, &schedule, storage, true, 3);
        let cold = drive(seed, &schedule, storage, false, 3);
        prop_assert_eq!(&warm.outcomes, &cold.outcomes,
            "PAL outcomes diverged under schedule {:?}", schedule);
        prop_assert_eq!(&warm.verdicts, &cold.verdicts,
            "audit verdicts diverged under schedule {:?}", schedule);
        prop_assert!(warm.verdicts.is_empty(), "violations: {:?}", warm.verdicts);
        // The comparison is only meaningful if the warm run actually
        // cached: three launches of one image must hit the measurement
        // memo at least twice.
        prop_assert!(warm.warm_hits >= 2, "warm path never engaged");
        prop_assert_eq!(cold.warm_hits, 0, "cold run must not cache");
    }
}

/// Deterministic spot-check outside the proptest loop: the clean warm run
/// of the roundtrip PAL skips re-seals (seal memo hit) and still unseals
/// the identical payload every time.
#[test]
fn warm_run_skips_reseal_and_outputs_are_stable() {
    let rec = drive(7, &FaultPlan::none(), false, true, 3);
    for (result, output) in &rec.outcomes {
        assert!(result.is_ok(), "clean run failed: {result:?}");
        assert_eq!(output, b"warm-equivalence-payload");
    }
    assert!(rec.verdicts.is_empty(), "violations: {:?}", rec.verdicts);
}
