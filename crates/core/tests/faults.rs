//! Recovery-semantics tests under deterministic fault injection.
//!
//! The contract: any single injected fault leaves the session either fully
//! successful or failed with a clean [`FlickerError`] — and in *every*
//! case the OS is resumed (or rebooted after a power cut), no suspend
//! state leaks, the DEV protections are lifted, PCR 17 cannot release PAL
//! secrets, and no secret byte survives in simulated RAM.

use flicker_core::{
    run_session, FlickerError, FlickerResult, NativePal, PalContext, PalPayload, SessionParams,
    SlbImage, SlbOptions, DEFAULT_SLB_BASE, TERMINATOR,
};
use flicker_crypto::sha1::sha1;
use flicker_faults::{Fault, FaultInjector, FaultPlan};
use flicker_machine::{CoreState, MachineError};
use flicker_os::{Os, OsConfig};
use flicker_tpm::TpmError;
use std::sync::Arc;
use std::time::Duration;

/// A recognisable secret that must never survive a session in RAM.
const SECRET: &[u8] = b"FLICKER-FAULT-SECRET-0123456789";

fn test_os(seed: u8) -> Os {
    Os::boot(OsConfig::fast_for_tests(seed))
}

/// Hashes its inputs, stashing a copy in PAL stack memory first so the
/// cleanup phase has an in-window secret to erase. Outputs only the digest
/// — the raw secret must never be released.
struct DigestPal;
impl NativePal for DigestPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let inputs = ctx.inputs().to_vec();
        ctx.write_logical(61 * 1024, &inputs)?;
        let digest = ctx.sha1(&inputs);
        ctx.write_output(&digest)
    }
}

fn digest_slb() -> SlbImage {
    SlbImage::build(
        PalPayload::Native {
            identity: b"digest-pal".to_vec(),
            program: Arc::new(DigestPal),
        },
        SlbOptions::default(),
    )
    .unwrap()
}

fn secret_params() -> SessionParams {
    SessionParams::with_inputs(SECRET.to_vec())
}

fn ram_contains(os: &Os, needle: &[u8]) -> bool {
    let mem = os.machine().memory();
    mem.read(0, mem.size())
        .unwrap()
        .windows(needle.len())
        .any(|w| w == needle)
}

/// The full post-session platform invariant, success or failure.
fn assert_platform_restored(os: &Os, context: &str) {
    assert!(
        os.saved_state().is_none(),
        "{context}: suspend state leaked"
    );
    assert!(
        os.machine().active_skinit().is_none(),
        "{context}: launch left active"
    );
    assert_eq!(
        os.machine().dev().active_protections(),
        0,
        "{context}: DEV protections leaked"
    );
    assert!(!os.machine().power_lost(), "{context}: machine left dead");
    assert_eq!(
        os.machine().cpus().core(1).unwrap().state,
        CoreState::Running,
        "{context}: AP not rescheduled"
    );
    assert!(
        !ram_contains(os, SECRET),
        "{context}: secret residue in RAM"
    );
}

fn sha1_extend(pcr: [u8; 20], data: &[u8; 20]) -> [u8; 20] {
    let mut buf = [0u8; 40];
    buf[..20].copy_from_slice(&pcr);
    buf[20..].copy_from_slice(data);
    sha1(&buf)
}

// ---------------------------------------------------------------------------
// Transient TPM busy: absorbed by the driver's TPM_E_RETRY backoff.
// ---------------------------------------------------------------------------

#[test]
fn transient_tpm_busy_is_absorbed_by_retry() {
    let mut os = test_os(40);
    let inj = FaultInjector::new(&FaultPlan::one(Fault::TpmTransient {
        skip: 1,
        failures: 2,
    }));
    os.machine_mut().set_fault_injector(inj.clone());

    let rec = run_session(&mut os, &digest_slb(), &secret_params()).unwrap();
    assert!(rec.pal_result.is_ok(), "{:?}", rec.pal_result);
    assert_eq!(rec.outputs, sha1(SECRET));
    assert_eq!(inj.counts().tpm_transient, 2, "both busy answers delivered");
    assert_platform_restored(&os, "transient tpm");
}

// ---------------------------------------------------------------------------
// Permanent TPM busy: the session fails cleanly, and the resume guard still
// caps PCR 17 once the TPM recovers during its own (retried) extend.
// ---------------------------------------------------------------------------

#[test]
fn permanent_tpm_busy_fails_cleanly_and_caps_pcr17() {
    let mut os = test_os(41);
    // Four driver attempts exhaust on the first gated command; the guard's
    // terminator extend eats the remaining two busies and lands.
    os.machine_mut()
        .set_fault_injector(FaultInjector::new(&FaultPlan::one(Fault::TpmTransient {
            skip: 0,
            failures: 6,
        })));

    let slb = digest_slb();
    let err = run_session(&mut os, &slb, &secret_params()).unwrap_err();
    assert!(matches!(err, FlickerError::Tpm(TpmError::Retry)), "{err:?}");
    assert_platform_restored(&os, "permanent tpm");

    // PCR 17 was capped on the way out: launch value + terminator, so the
    // aborted session's chain can never release a sealed secret.
    let expected = sha1_extend(
        slb.expected_pcr17_after_skinit(DEFAULT_SLB_BASE),
        &TERMINATOR,
    );
    let pcr17 = os.machine_mut().tpm_op(|t| t.pcr_read(17)).unwrap();
    assert_eq!(pcr17, expected);

    // The platform is immediately usable again.
    os.machine_mut().clear_fault_injector();
    let rec = run_session(&mut os, &digest_slb(), &secret_params()).unwrap();
    assert_eq!(rec.outputs, sha1(SECRET));
}

// ---------------------------------------------------------------------------
// Memory write faults: the suspended-OS leak regression.
// ---------------------------------------------------------------------------

#[test]
fn staging_write_fault_leaves_os_running_and_scrubbed() {
    let mut os = test_os(42);
    // Write order: SLB image, inputs — the second write faults, before the
    // OS is ever suspended.
    os.machine_mut()
        .set_fault_injector(FaultInjector::new(&FaultPlan::one(Fault::MemWriteFault {
            skip: 1,
        })));

    let err = run_session(&mut os, &digest_slb(), &secret_params()).unwrap_err();
    assert!(
        matches!(
            err,
            FlickerError::Machine(MachineError::MemWriteFault { .. })
        ),
        "{err:?}"
    );
    assert_platform_restored(&os, "staging fault");

    os.machine_mut().clear_fault_injector();
    let rec = run_session(&mut os, &digest_slb(), &secret_params()).unwrap();
    assert_eq!(rec.outputs, sha1(SECRET));
}

#[test]
fn saved_state_write_fault_does_not_leak_the_suspended_os() {
    let mut os = test_os(43);
    // Write order: SLB image, inputs, saved kernel state — the third write
    // faults *after* `suspend_for_session`, the exact spot where a naive
    // driver strands the OS suspended forever.
    os.machine_mut()
        .set_fault_injector(FaultInjector::new(&FaultPlan::one(Fault::MemWriteFault {
            skip: 2,
        })));

    let err = run_session(&mut os, &digest_slb(), &secret_params()).unwrap_err();
    assert!(
        matches!(
            err,
            FlickerError::Machine(MachineError::MemWriteFault { .. })
        ),
        "{err:?}"
    );
    assert_platform_restored(&os, "saved-state fault");

    os.machine_mut().clear_fault_injector();
    let rec = run_session(&mut os, &digest_slb(), &secret_params()).unwrap();
    assert!(rec.pal_result.is_ok());
    assert_eq!(rec.outputs, sha1(SECRET));
}

// ---------------------------------------------------------------------------
// Power loss mid-session: reboot, secrets gone, PCR 17 unusable.
// ---------------------------------------------------------------------------

#[test]
fn power_loss_mid_session_reboots_with_no_secrets() {
    let mut os = test_os(44);
    os.machine_mut()
        .set_fault_injector(FaultInjector::new(&FaultPlan::one(Fault::PowerLossAfter {
            after: Duration::from_millis(1),
        })));

    let err = run_session(&mut os, &digest_slb(), &secret_params()).unwrap_err();
    assert!(
        matches!(err, FlickerError::Machine(MachineError::PowerLoss)),
        "{err:?}"
    );
    // The guard rebooted the platform: no suspend state, no launch, no
    // protections, power back on.
    assert_platform_restored(&os, "power loss");
    // RAM died with the machine: the secret cannot survive anywhere.
    assert!(!ram_contains(&os, SECRET));
    assert!(!ram_contains(&os, &sha1(SECRET)));
    // PCR 17 is back at -1: the dead session's measurement chain is gone
    // and nothing can unseal against it.
    let pcr17 = os.machine_mut().tpm_op(|t| t.pcr_read(17)).unwrap();
    assert_eq!(pcr17, [0xFF; 20]);

    // The rebooted platform runs sessions again.
    os.machine_mut().clear_fault_injector();
    let rec = run_session(&mut os, &digest_slb(), &secret_params()).unwrap();
    assert_eq!(rec.outputs, sha1(SECRET));
}

// ---------------------------------------------------------------------------
// Hashing-stub + bytecode PAL: the PAL really runs at its staged offset.
// ---------------------------------------------------------------------------

#[test]
fn hashing_stub_launches_bytecode_pal_at_its_offset() {
    let mut os = test_os(45);
    let slb = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::progs::hello_world()),
        SlbOptions::default(),
    )
    .unwrap();
    let params = SessionParams {
        use_hashing_stub: true,
        ..Default::default()
    };
    let rec = run_session(&mut os, &slb, &params).unwrap();
    assert!(rec.pal_result.is_ok(), "{:?}", rec.pal_result);
    assert_eq!(rec.outputs, b"Hello, world");
    assert_platform_restored(&os, "stub bytecode");

    // The same image runs identically through the direct launch path.
    let rec2 = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert_eq!(rec2.outputs, b"Hello, world");
}

// ---------------------------------------------------------------------------
// Seeded schedules: the sweep invariant, in regression-test form.
// ---------------------------------------------------------------------------

#[test]
fn seeded_fault_schedules_recover_or_fail_clean() {
    for seed in 0..200u64 {
        let mut os = test_os((seed % 197) as u8 + 50);
        os.machine_mut()
            .set_fault_injector(FaultInjector::new(&FaultPlan::seeded(seed)));

        let res = run_session(&mut os, &digest_slb(), &secret_params());
        if let Ok(rec) = &res {
            if rec.pal_result.is_ok() {
                assert_eq!(rec.outputs, sha1(SECRET), "seed {seed}: wrong outputs");
            }
        }
        // Success or failure, the platform is whole again.
        assert_platform_restored(&os, &format!("seed {seed} ({res:?})"));

        // And a fault-free follow-up session always succeeds.
        os.machine_mut().clear_fault_injector();
        let rec = run_session(&mut os, &digest_slb(), &secret_params())
            .unwrap_or_else(|e| panic!("seed {seed}: follow-up failed: {e:?}"));
        assert!(rec.pal_result.is_ok(), "seed {seed}: {:?}", rec.pal_result);
        assert_eq!(rec.outputs, sha1(SECRET), "seed {seed}: follow-up outputs");
    }
}
