//! End-to-end Flicker session tests: the Figure 2 timeline, the PCR 17
//! measurement chain, multi-session sealed handoffs, the hashing-stub
//! optimisation, and remote attestation.

use flicker_core::{
    expected_pcr17_final, generate_channel_keypair, open_channel, run_session, ChannelSetup,
    ExpectedSession, FlickerResult, NativePal, PalContext, PalPayload, RemoteParty, SessionParams,
    SlbImage, SlbOptions, Verifier,
};
use flicker_crypto::rng::XorShiftRng;
use flicker_os::{Os, OsConfig};
use flicker_tpm::{PcrSelection, PrivacyCa};
use std::sync::Arc;
use std::time::Duration;

fn test_os(seed: u8) -> Os {
    Os::boot(OsConfig::fast_for_tests(seed))
}

fn native_slb(identity: &[u8], pal: impl NativePal + 'static) -> SlbImage {
    SlbImage::build(
        PalPayload::Native {
            identity: identity.to_vec(),
            program: Arc::new(pal),
        },
        SlbOptions::default(),
    )
    .unwrap()
}

/// Echoes its inputs, reversed.
struct ReversePal;
impl NativePal for ReversePal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let mut data = ctx.inputs().to_vec();
        data.reverse();
        ctx.write_output(&data)
    }
}

#[test]
fn basic_session_runs_pal_and_returns_outputs() {
    let mut os = test_os(1);
    let slb = native_slb(b"reverse-pal", ReversePal);
    let rec = run_session(
        &mut os,
        &slb,
        &SessionParams::with_inputs(b"flicker".to_vec()),
    )
    .unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    assert_eq!(rec.outputs, b"rekcilf");
}

#[test]
fn session_restores_platform_state() {
    let mut os = test_os(2);
    let slb = native_slb(b"reverse-pal", ReversePal);
    run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    let bsp = os.machine().cpus().bsp();
    assert!(bsp.interrupts_enabled, "interrupts restored");
    assert_eq!(bsp.mode, flicker_machine::CpuMode::Paged);
    assert!(os.machine().active_skinit().is_none());
    assert!(os.saved_state().is_none(), "flicker-module state cleared");
    // A second session works.
    let rec = run_session(&mut os, &slb, &SessionParams::with_inputs(b"ab".to_vec())).unwrap();
    assert_eq!(rec.outputs, b"ba");
}

#[test]
fn pcr17_matches_predicted_chain() {
    let mut os = test_os(3);
    let slb = native_slb(b"reverse-pal", ReversePal);
    let params = SessionParams {
        inputs: b"hello".to_vec(),
        nonce: [7u8; 20],
        ..Default::default()
    };
    let rec = run_session(&mut os, &slb, &params).unwrap();

    assert_eq!(
        rec.pcr17_entry,
        slb.expected_pcr17_after_skinit(params.slb_base),
        "post-SKINIT value is H(0^20 || H(SLB))"
    );
    let expected = expected_pcr17_final(&ExpectedSession {
        slb: &slb,
        slb_base: params.slb_base,
        inputs: &params.inputs,
        outputs: &rec.outputs,
        nonce: params.nonce,
        used_hashing_stub: false,
    });
    assert_eq!(rec.pcr17_final, expected);
    // And the TPM agrees.
    assert_eq!(os.machine().tpm().pcrs().read(17).unwrap(), expected);
}

#[test]
fn different_pals_produce_different_pcr17() {
    let mut os1 = test_os(4);
    let slb1 = native_slb(b"pal-one", ReversePal);
    let r1 = run_session(&mut os1, &slb1, &SessionParams::default()).unwrap();

    let mut os2 = test_os(4);
    let slb2 = native_slb(b"pal-two", ReversePal);
    let r2 = run_session(&mut os2, &slb2, &SessionParams::default()).unwrap();

    assert_ne!(r1.pcr17_entry, r2.pcr17_entry);
    assert_ne!(r1.pcr17_final, r2.pcr17_final);
}

#[test]
fn session_timings_are_plausible() {
    let mut os = test_os(5);
    let slb = native_slb(b"reverse-pal", ReversePal);
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    let t = &rec.timings;
    // SKINIT for a small SLB: ~0.9 ms fixed + ~2.7 µs/B.
    assert!(t.skinit > Duration::from_micros(900), "{:?}", t.skinit);
    assert!(t.skinit < Duration::from_millis(10), "{:?}", t.skinit);
    // Cleanup includes three 1.2 ms PCR extends.
    assert!(t.cleanup >= Duration::from_micros(3_600));
    assert!(t.total >= t.suspend + t.skinit + t.pal + t.cleanup + t.resume);
}

#[test]
fn hashing_stub_reduces_skinit_time() {
    // §7.2: the 4 736-byte stub cuts SKINIT from ~177 ms to ~14 ms for a
    // full-size PAL. Build a large PAL and compare both launch paths.
    let big_identity = vec![0xA5u8; 50 * 1024];
    let mut os_plain = test_os(6);
    let slb = native_slb(&big_identity, ReversePal);
    let plain = run_session(&mut os_plain, &slb, &SessionParams::default()).unwrap();

    let mut os_stub = test_os(6);
    let stub_params = SessionParams {
        use_hashing_stub: true,
        ..Default::default()
    };
    let stub = run_session(&mut os_stub, &slb, &stub_params).unwrap();

    let plain_ms = plain.timings.skinit.as_secs_f64() * 1e3;
    let stub_ms = stub.timings.skinit.as_secs_f64() * 1e3;
    assert!(
        (130.0..180.0).contains(&plain_ms),
        "plain SKINIT {plain_ms:.1} ms"
    );
    assert!(
        (10.0..20.0).contains(&stub_ms),
        "stub SKINIT {stub_ms:.1} ms"
    );
    // The stub then measures the window on the CPU, which is fast.
    assert!(stub.timings.stub_measure < Duration::from_millis(2));
    // Both produce working sessions.
    assert_eq!(stub.pal_result, Ok(()));
}

#[test]
fn hashing_stub_chain_verifies() {
    let mut os = test_os(7);
    let slb = native_slb(b"stub-launched-pal", ReversePal);
    let params = SessionParams {
        inputs: b"xyz".to_vec(),
        use_hashing_stub: true,
        nonce: [3u8; 20],
        ..Default::default()
    };
    let rec = run_session(&mut os, &slb, &params).unwrap();
    let expected = expected_pcr17_final(&ExpectedSession {
        slb: &slb,
        slb_base: params.slb_base,
        inputs: &params.inputs,
        outputs: &rec.outputs,
        nonce: params.nonce,
        used_hashing_stub: true,
    });
    assert_eq!(rec.pcr17_final, expected);
}

#[test]
fn faulting_pal_still_resumes_os() {
    struct Crasher;
    impl NativePal for Crasher {
        fn run(&self, _ctx: &mut PalContext<'_>) -> FlickerResult<()> {
            Err(flicker_core::FlickerError::PalFault("boom".into()))
        }
    }
    let mut os = test_os(8);
    let slb = native_slb(b"crasher", Crasher);
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert!(rec.pal_result.is_err());
    assert!(os.machine().cpus().bsp().interrupts_enabled, "OS resumed");
    // The terminal extends still happened: PCR 17 is closed off.
    assert_eq!(os.machine().tpm().pcrs().read(17).unwrap(), rec.pcr17_final);
}

#[test]
fn oversized_inputs_rejected() {
    let mut os = test_os(9);
    let slb = native_slb(b"pal", ReversePal);
    let params = SessionParams::with_inputs(vec![0u8; 0xE01]);
    assert!(run_session(&mut os, &slb, &params).is_err());
}

#[test]
fn outputs_published_through_output_page() {
    let mut os = test_os(10);
    let slb = native_slb(b"reverse-pal", ReversePal);
    let params = SessionParams::with_inputs(b"abc".to_vec());
    let rec = run_session(&mut os, &slb, &params).unwrap();
    // The flicker-module exposes outputs via its sysfs entry, which reads
    // the output page.
    let base = params.slb_base + flicker_core::slb::OUTPUTS_OFFSET;
    let len = os.machine().memory().read_u32_le(base).unwrap() as usize;
    assert_eq!(len, rec.outputs.len());
    let bytes = os.machine().memory().read(base + 4, len).unwrap();
    assert_eq!(bytes, b"cba");
}

#[test]
fn bytecode_pal_hello_world() {
    // The Figure 5 PAL, as measured bytecode.
    let mut os = test_os(11);
    let slb = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::progs::hello_world()),
        SlbOptions::default(),
    )
    .unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    assert_eq!(rec.outputs, b"Hello, world");
}

#[test]
fn bytecode_pal_reads_inputs_from_input_page() {
    // The trial-division kernel reads n/lo/hi from the input region.
    let prog = flicker_palvm::assemble(
        "
        ldw r1, [r14+0]
        ldw r2, [r14+4]
        ldw r3, [r14+8]
    loop:
        jlt r2, r3, body
        halt
    body:
        modu r5, r1, r2
        jnz r5, next
        mov r0, r2
        hcall 1
    next:
        movi r6, 1
        add r2, r2, r6
        jmp loop
    ",
    )
    .unwrap();
    let mut inputs = Vec::new();
    inputs.extend_from_slice(&91u32.to_le_bytes());
    inputs.extend_from_slice(&2u32.to_le_bytes());
    inputs.extend_from_slice(&20u32.to_le_bytes());

    let mut os = test_os(12);
    let slb = SlbImage::build(PalPayload::Bytecode(prog), SlbOptions::default()).unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::with_inputs(inputs)).unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    let divisors: Vec<u32> = rec
        .outputs
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(divisors, vec![7, 13]);
}

#[test]
fn time_limit_converts_to_fuel_for_bytecode() {
    // The §5.1.2 timing restriction: a 1 ms budget at 50M insns/s is
    // 50 000 instructions; an infinite loop hits it and the OS resumes.
    let prog = flicker_palvm::assemble("loop: jmp loop").unwrap();
    let mut os = test_os(18);
    // The verifier proves termination and would reject this loop; the
    // escape hatch lets the test exercise the timing backstop.
    let slb = SlbImage::build_unverified(
        PalPayload::Bytecode(prog),
        SlbOptions {
            time_limit: Some(Duration::from_millis(1)),
            ..Default::default()
        },
    )
    .unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert!(rec.pal_result.as_ref().unwrap_err().contains("fuel"));
    assert!(os.machine().cpus().bsp().interrupts_enabled, "OS resumed");
}

#[test]
fn time_limit_flags_overlong_native_pal() {
    struct SlowPal;
    impl NativePal for SlowPal {
        fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
            ctx.charge_cpu(Duration::from_secs(5));
            ctx.write_output(b"done anyway")
        }
    }
    let mut os = test_os(19);
    let slb = native_slb_with_options(
        b"slow-pal",
        SlowPal,
        SlbOptions {
            time_limit: Some(Duration::from_secs(1)),
            ..Default::default()
        },
    );
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    let err = rec.pal_result.unwrap_err();
    assert!(err.contains("time limit"), "{err}");
}

fn native_slb_with_options(
    identity: &[u8],
    pal: impl NativePal + 'static,
    options: SlbOptions,
) -> SlbImage {
    SlbImage::build(
        PalPayload::Native {
            identity: identity.to_vec(),
            program: Arc::new(pal),
        },
        options,
    )
    .unwrap()
}

#[test]
fn runaway_bytecode_pal_is_bounded_by_fuel() {
    let prog = flicker_palvm::assemble("loop: jmp loop").unwrap();
    let mut os = test_os(13);
    // Unverified on purpose: fuel is the backstop for exactly the
    // programs the termination check cannot pass.
    let slb = SlbImage::build_unverified(
        PalPayload::Bytecode(prog),
        SlbOptions {
            fuel: Some(10_000),
            ..Default::default()
        },
    )
    .unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert!(rec.pal_result.as_ref().unwrap_err().contains("fuel"));
    assert!(os.machine().cpus().bsp().interrupts_enabled, "OS resumed");
}

#[test]
fn bytecode_rootkit_detector_end_to_end() {
    // The §6.1 detector as pure measured bytecode: hash a kernel region,
    // extend PCR 17, output the digest — then verify the full chain
    // including the PAL's own extend.
    let mut os = test_os(33);
    let (kbase, klen) = os.kernel_region();
    let mut inputs = Vec::new();
    inputs.extend_from_slice(&kbase.to_le_bytes());
    inputs.extend_from_slice(&(klen as u64).to_le_bytes());

    let slb = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::progs::kernel_hasher()),
        SlbOptions {
            os_protection: false, // it must read kernel memory
            ..Default::default()
        },
    )
    .unwrap();
    let params = SessionParams {
        inputs: inputs.clone(),
        nonce: [9u8; 20],
        ..Default::default()
    };
    let rec = run_session(&mut os, &slb, &params).unwrap();
    assert_eq!(rec.pal_result, Ok(()));

    let expected_hash = flicker_crypto::sha1::sha1(&os.kernel().measured_region());
    assert_eq!(rec.outputs, expected_hash);

    // Chain verification with the PAL-performed extend.
    let expected = flicker_core::expected_pcr17_final_with_extends(
        &ExpectedSession {
            slb: &slb,
            slb_base: params.slb_base,
            inputs: &inputs,
            outputs: &rec.outputs,
            nonce: params.nonce,
            used_hashing_stub: false,
        },
        &[expected_hash],
    );
    assert_eq!(rec.pcr17_final, expected);
}

#[test]
fn bytecode_detector_contained_when_os_protected() {
    // The same bytecode under OS protection cannot reach kernel memory:
    // the detector *requires* ring-0 flat segments, as the paper's does.
    let mut os = test_os(34);
    let (kbase, klen) = os.kernel_region();
    let mut inputs = Vec::new();
    inputs.extend_from_slice(&kbase.to_le_bytes());
    inputs.extend_from_slice(&(klen as u64).to_le_bytes());
    let slb = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::progs::kernel_hasher()),
        SlbOptions::default(), // OS protection ON
    )
    .unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::with_inputs(inputs)).unwrap();
    assert!(rec.pal_result.is_err());
    assert!(rec.outputs.is_empty());
}

#[test]
fn large_pal_launches_via_stub_and_verifies() {
    // A PAL bigger than the 64 KB SLB window (paper §4.2: the preparatory
    // code extends the DEV and measures the extra region into PCR 17).
    let big_identity = vec![0xC3u8; 100 * 1024];
    let slb = native_slb(&big_identity, ReversePal);
    assert!(slb.is_large());

    let mut os = test_os(30);
    let params = SessionParams {
        inputs: b"large".to_vec(),
        use_hashing_stub: true,
        nonce: [5u8; 20],
        ..Default::default()
    };
    let rec = run_session(&mut os, &slb, &params).unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    assert_eq!(rec.outputs, b"egral");

    // The verifier's chain includes the overflow measurement.
    let expected = expected_pcr17_final(&ExpectedSession {
        slb: &slb,
        slb_base: params.slb_base,
        inputs: &params.inputs,
        outputs: &rec.outputs,
        nonce: params.nonce,
        used_hashing_stub: true,
    });
    assert_eq!(rec.pcr17_final, expected);

    // Overflow region DEV protection was released and its bytes cleansed.
    let overflow_base = params.slb_base + flicker_core::OVERFLOW_OFFSET;
    assert!(os.machine_mut().dma_read(overflow_base, 16).is_ok());
    assert_eq!(os.machine().dev().active_protections(), 0);
    let bytes = os.machine().memory().read(overflow_base, 4096).unwrap();
    assert!(bytes.iter().all(|&b| b == 0), "overflow region cleansed");
}

#[test]
fn large_pal_without_stub_refused() {
    let big_identity = vec![0xC3u8; 100 * 1024];
    let slb = native_slb(&big_identity, ReversePal);
    let mut os = test_os(31);
    assert!(run_session(&mut os, &slb, &SessionParams::default()).is_err());
}

#[test]
fn large_pal_measurement_covers_overflow_bytes() {
    // Two large PALs differing only in their overflow bytes must produce
    // different final PCR 17 values (the extension is not just the window).
    let id_a = vec![0x11u8; 100 * 1024];
    let mut id_b = id_a.clone();
    let n = id_b.len();
    id_b[n - 1] ^= 0xFF; // differs only in the overflow tail

    let slb_a = native_slb(&id_a, ReversePal);
    let slb_b = native_slb(&id_b, ReversePal);
    let params = SessionParams {
        use_hashing_stub: true,
        ..Default::default()
    };
    let mut os_a = test_os(32);
    let ra = run_session(&mut os_a, &slb_a, &params).unwrap();
    let mut os_b = test_os(32);
    let rb = run_session(&mut os_b, &slb_b, &params).unwrap();
    assert_ne!(ra.pcr17_final, rb.pcr17_final);
}

#[test]
fn pal_uses_the_memory_management_module() {
    // The Figure 6 "Memory Management" module in action: a PAL allocates
    // from a heap arena living in its own stack region, builds a result
    // there, and frees everything before exit.
    struct HeapPal;
    impl NativePal for HeapPal {
        fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
            let arena_base: u32 = 60 * 1024; // the SLB's stack/heap area
            let mut heap = flicker_core::PalHeap::new(4096);
            let a = heap
                .malloc(64)
                .map_err(|e| flicker_core::FlickerError::PalFault(e.to_string()))?;
            let b = heap
                .malloc(128)
                .map_err(|e| flicker_core::FlickerError::PalFault(e.to_string()))?;
            ctx.write_logical(arena_base + a, b"allocated-in-pal-heap")?;
            let back = ctx.read_logical(arena_base + a, 21)?;
            ctx.write_output(&back)?;
            heap.free(b).unwrap();
            heap.free(a).unwrap();
            assert_eq!(heap.free_bytes(), 4096);
            Ok(())
        }
    }
    let mut os = test_os(35);
    let slb = native_slb(b"heap-pal", HeapPal);
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    assert_eq!(rec.outputs, b"allocated-in-pal-heap");
    // And the arena (PAL memory) was cleansed at exit.
    let bytes = os
        .machine()
        .memory()
        .read(flicker_core::DEFAULT_SLB_BASE + 60 * 1024, 4096)
        .unwrap();
    assert!(bytes.iter().all(|&b| b == 0));
}

// ---------------------------------------------------------------------------
// Sealed handoff between sessions (§4.3.1).
// ---------------------------------------------------------------------------

/// Session 1: seals a secret to itself.
struct SealerPal {
    secret: Vec<u8>,
}
impl NativePal for SealerPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let blob = ctx.seal_to_self(&self.secret)?;
        ctx.write_output(blob.as_bytes())
    }
}

/// Session 2 (same PAL identity): unseals and proves knowledge by emitting
/// the SHA-1 of the secret.
struct UnsealerPal;
impl NativePal for UnsealerPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let blob = flicker_tpm::SealedBlob::from_bytes(ctx.inputs().to_vec());
        let secret = ctx.unseal(&blob)?;
        let digest = ctx.sha1(&secret);
        ctx.write_output(&digest)
    }
}

#[test]
fn sealed_state_crosses_sessions_of_same_pal() {
    let mut os = test_os(14);
    // Both sessions must present the same measured identity for PCR 17 to
    // match; the payload carries different behaviour for each phase, which
    // models one PAL binary with an input-selected code path.
    let slb1 = native_slb(
        b"seal-unseal-pal",
        SealerPal {
            secret: b"the CA private key".to_vec(),
        },
    );
    let r1 = run_session(&mut os, &slb1, &SessionParams::default()).unwrap();
    assert_eq!(r1.pal_result, Ok(()));
    let blob_bytes = r1.outputs.clone();

    let slb2 = native_slb(b"seal-unseal-pal", UnsealerPal);
    let r2 = run_session(&mut os, &slb2, &SessionParams::with_inputs(blob_bytes)).unwrap();
    assert_eq!(r2.pal_result, Ok(()));
    assert_eq!(
        r2.outputs,
        flicker_crypto::sha1::sha1(b"the CA private key")
    );
}

/// Seals its secret for a *different* future PAL whose post-SKINIT
/// PCR 17 is carried in this PAL's inputs.
struct SealerForPal {
    secret: Vec<u8>,
}
impl NativePal for SealerForPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let target: [u8; 20] = ctx.inputs().try_into().expect("20-byte PCR value");
        let blob = ctx.seal_for_pal(&self.secret, target)?;
        ctx.write_output(blob.as_bytes())
    }
}

#[test]
fn bytecode_pal_unseals_through_hcall_6() {
    // §4.3.1 handoff *into measured bytecode*: a native PAL seals a
    // secret to the bytecode PAL's predicted post-SKINIT PCR 17; the
    // bytecode PAL unseals it with hypercall 6 and — respecting the
    // secret-flow discipline the verifier enforces — emits only the
    // SHA-1 of the plaintext through the hash release point.
    let src = "
        mov r1, r14          ; blob = the whole input region
        mov r2, r12
        addi r3, r14, 0x800  ; plaintext scratch
        hcall 6              ; unseal; r0 = plaintext length
        mov r2, r0
        mov r1, r3
        addi r3, r14, 0x700  ; digest scratch (disjoint from plaintext)
        hcall 2              ; sha1(plaintext) -> digest (release point)
        mov r1, r3
        movi r2, 20
        hcall 5              ; output the digest
        halt";
    let prog = flicker_palvm::assemble(src).unwrap();
    // The unsealer must pass the real builder: this is the production
    // path, not an adversarial one.
    let unsealer = SlbImage::build(PalPayload::Bytecode(prog), SlbOptions::default()).unwrap();
    let target_pcr17 = unsealer.expected_pcr17_after_skinit(DEFAULT_SLB_BASE);

    let mut os = test_os(36);
    let secret = b"bytecode-owned secret".to_vec();
    let sealer = native_slb(
        b"provisioning-pal",
        SealerForPal {
            secret: secret.clone(),
        },
    );
    let r1 = run_session(
        &mut os,
        &sealer,
        &SessionParams::with_inputs(target_pcr17.to_vec()),
    )
    .unwrap();
    assert_eq!(r1.pal_result, Ok(()));

    let r2 = run_session(&mut os, &unsealer, &SessionParams::with_inputs(r1.outputs)).unwrap();
    assert_eq!(r2.pal_result, Ok(()));
    assert_eq!(r2.outputs, flicker_crypto::sha1::sha1(&secret));
}

#[test]
fn wrong_bytecode_pal_cannot_unseal_through_hcall_6() {
    // The same handoff, but the running bytecode differs from the one the
    // secret was sealed to: PCR 17 differs, TPM_Unseal refuses, and the
    // hypercall surfaces the failure as a PAL fault with no output.
    let src = "
        mov r1, r14
        mov r2, r12
        addi r3, r14, 0x800
        hcall 6
        halt";
    let imposter = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::assemble(src).unwrap()),
        SlbOptions::default(),
    )
    .unwrap();
    // Seal against a different program's measurement.
    let legit = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::progs::hello_world()),
        SlbOptions::default(),
    )
    .unwrap();
    let target_pcr17 = legit.expected_pcr17_after_skinit(DEFAULT_SLB_BASE);

    let mut os = test_os(37);
    let sealer = native_slb(
        b"provisioning-pal",
        SealerForPal {
            secret: b"not for you".to_vec(),
        },
    );
    let r1 = run_session(
        &mut os,
        &sealer,
        &SessionParams::with_inputs(target_pcr17.to_vec()),
    )
    .unwrap();

    let r2 = run_session(&mut os, &imposter, &SessionParams::with_inputs(r1.outputs)).unwrap();
    let err = r2.pal_result.unwrap_err();
    assert!(err.contains("WRONGPCRVAL") || err.contains("PCR"), "{err}");
    assert!(r2.outputs.is_empty());
}

#[test]
fn different_pal_cannot_unseal_handoff() {
    let mut os = test_os(15);
    let slb1 = native_slb(
        b"seal-unseal-pal",
        SealerPal {
            secret: b"secret".to_vec(),
        },
    );
    let r1 = run_session(&mut os, &slb1, &SessionParams::default()).unwrap();

    // An *imposter* PAL with a different identity tries to unseal.
    let evil = native_slb(b"evil-pal", UnsealerPal);
    let r2 = run_session(&mut os, &evil, &SessionParams::with_inputs(r1.outputs)).unwrap();
    let err = r2.pal_result.unwrap_err();
    assert!(err.contains("WRONGPCRVAL") || err.contains("PCR"), "{err}");
    assert!(r2.outputs.is_empty());
}

// ---------------------------------------------------------------------------
// Remote attestation end-to-end (§4.4.1).
// ---------------------------------------------------------------------------

#[test]
fn remote_attestation_end_to_end() {
    let mut rng = XorShiftRng::new(99);
    let mut privacy_ca = PrivacyCa::new(512, &mut rng);
    let mut os = test_os(16);
    os.provision_attestation(&mut privacy_ca, "dc5750").unwrap();
    let cert = os.aik_certificate().unwrap().clone();

    // Verifier sends a nonce; challenger runs the PAL under Flicker.
    let nonce = [0xAB; 20];
    let slb = native_slb(b"attested-pal", ReversePal);
    let params = SessionParams {
        inputs: b"password-check".to_vec(),
        nonce,
        ..Default::default()
    };
    let rec = run_session(&mut os, &slb, &params).unwrap();

    // tqd produces the quote after the session, under the untrusted OS.
    let quote = os.tqd_quote(nonce, &PcrSelection::pcr17()).unwrap();

    // Verifier checks everything.
    let verifier = Verifier::new(privacy_ca.public_key().clone());
    let expected = ExpectedSession {
        slb: &slb,
        slb_base: params.slb_base,
        inputs: &params.inputs,
        outputs: &rec.outputs,
        nonce,
        used_hashing_stub: false,
    };
    verifier.verify(&cert, &quote, &expected).unwrap();

    // A lying challenger claiming different outputs fails.
    let lied = ExpectedSession {
        outputs: b"forged-results",
        ..expected.clone()
    };
    assert!(verifier.verify(&cert, &quote, &lied).is_err());

    // A stale quote (wrong nonce) fails.
    let replayed = ExpectedSession {
        nonce: [0xCD; 20],
        ..expected.clone()
    };
    assert!(verifier.verify(&cert, &quote, &replayed).is_err());
}

// ---------------------------------------------------------------------------
// Secure channel across two sessions (§4.4.2).
// ---------------------------------------------------------------------------

struct ChannelSetupPal;
impl NativePal for ChannelSetupPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let setup = generate_channel_keypair(ctx)?;
        ctx.write_output(&setup.to_bytes())
    }
}

struct ChannelReceiverPal;
impl NativePal for ChannelReceiverPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        // Inputs: blob_len || blob || ciphertext.
        let inputs = ctx.inputs().to_vec();
        let blob_len = u32::from_be_bytes(inputs[0..4].try_into().unwrap()) as usize;
        let blob = flicker_tpm::SealedBlob::from_bytes(inputs[4..4 + blob_len].to_vec());
        let ciphertext = &inputs[4 + blob_len..];
        let plaintext = open_channel(ctx, &blob, ciphertext)?;
        // Prove receipt without disclosing the secret.
        let digest = ctx.sha1(&plaintext);
        ctx.write_output(&digest)
    }
}

#[test]
fn secure_channel_two_sessions() {
    let mut os = test_os(17);
    let slb1 = native_slb(b"channel-pal", ChannelSetupPal);
    let r1 = run_session(&mut os, &slb1, &SessionParams::default()).unwrap();
    assert_eq!(r1.pal_result, Ok(()));
    let setup = ChannelSetup::from_bytes(&r1.outputs).unwrap();

    // Remote party encrypts a secret under the attested channel key.
    let remote = RemoteParty::new(setup.public_key.clone());
    let mut rng = XorShiftRng::new(5);
    let ct = remote.encrypt(b"hunter2-and-a-nonce", &mut rng).unwrap();

    // Second session of the same PAL decrypts it.
    let mut inputs = Vec::new();
    inputs.extend_from_slice(&(setup.sealed_private_key.len() as u32).to_be_bytes());
    inputs.extend_from_slice(setup.sealed_private_key.as_bytes());
    inputs.extend_from_slice(&ct);

    let slb2 = native_slb(b"channel-pal", ChannelReceiverPal);
    let r2 = run_session(&mut os, &slb2, &SessionParams::with_inputs(inputs)).unwrap();
    assert_eq!(r2.pal_result, Ok(()));
    assert_eq!(
        r2.outputs,
        flicker_crypto::sha1::sha1(b"hunter2-and-a-nonce")
    );
}

// ----- output-page and session-result regression tests -----------------------

use flicker_core::{
    DEFAULT_SLB_BASE, OUTPUTS_MAX, OUTPUTS_OFFSET, OVERFLOW_OFFSET, PHASE_SPAN_NAMES,
};

/// Writes `self.0` bytes of 0xAB output.
struct FillOutputPal(usize);
impl NativePal for FillOutputPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        ctx.write_output(&vec![0xAB; self.0])
    }
}

#[test]
fn maximal_output_pal_stays_inside_output_page() {
    let mut os = test_os(30);
    // Sentinel directly after the output page: the byte a 4-byte length
    // header plus a full-page output used to clobber.
    let sentinel_addr = DEFAULT_SLB_BASE + OVERFLOW_OFFSET;
    os.machine_mut()
        .memory_mut()
        .write(sentinel_addr, &[0xCD; 8])
        .unwrap();

    let slb = native_slb(b"fill-output-pal", FillOutputPal(OUTPUTS_MAX));
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    assert_eq!(rec.outputs.len(), OUTPUTS_MAX);

    let mem = os.machine().memory();
    let out_base = DEFAULT_SLB_BASE + OUTPUTS_OFFSET;
    assert_eq!(mem.read_u32_le(out_base).unwrap() as usize, OUTPUTS_MAX);
    assert_eq!(
        mem.read(out_base + 4, OUTPUTS_MAX).unwrap(),
        &rec.outputs[..]
    );
    // Length header + maximal output exactly fill the page...
    assert_eq!(out_base + 4 + OUTPUTS_MAX as u64, sentinel_addr);
    // ...and the byte after the page is untouched.
    assert_eq!(mem.read(sentinel_addr, 8).unwrap(), &[0xCD; 8]);
}

#[test]
fn over_capacity_output_is_refused() {
    let mut os = test_os(31);
    let slb = native_slb(b"overflow-pal", FillOutputPal(OUTPUTS_MAX + 1));
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    let err = rec.pal_result.unwrap_err();
    assert!(err.contains("output"), "unexpected fault text: {err}");
    assert!(rec.outputs.is_empty());
}

/// Burns more virtual time than any sane limit, then tries to exfiltrate.
struct RunawayPal;
impl NativePal for RunawayPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        ctx.charge_cpu(Duration::from_millis(50));
        ctx.write_output(b"EXFILTRATED-SECRET")
    }
}

#[test]
fn timed_out_native_pal_gets_no_outputs() {
    let mut os = test_os(32);
    // First, a well-behaved session dirties the output page so stale bytes
    // would be visible if cleanup failed to erase it.
    let slb = native_slb(b"reverse-pal", ReversePal);
    run_session(
        &mut os,
        &slb,
        &SessionParams::with_inputs(b"previous-session-output".to_vec()),
    )
    .unwrap();

    let slb = SlbImage::build(
        PalPayload::Native {
            identity: b"runaway-pal".to_vec(),
            program: Arc::new(RunawayPal),
        },
        SlbOptions {
            time_limit: Some(Duration::from_millis(1)),
            ..Default::default()
        },
    )
    .unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();

    let err = rec.pal_result.unwrap_err();
    assert!(err.contains("time limit"), "unexpected fault text: {err}");
    assert!(
        rec.outputs.is_empty(),
        "timed-out outputs must be discarded"
    );
    // The output page holds a zero length and no stale bytes from either
    // the runaway PAL or the previous session.
    let mem = os.machine().memory();
    let out_base = DEFAULT_SLB_BASE + OUTPUTS_OFFSET;
    assert_eq!(mem.read_u32_le(out_base).unwrap(), 0);
    assert_eq!(
        mem.read(out_base + 4, 0x1000 - 4).unwrap(),
        &[0u8; 0x1000 - 4][..]
    );
}

#[test]
fn failed_non_stub_staging_leaves_overflow_region_alone() {
    use flicker_core::{HASHING_STUB_SIZE, SLB_MAX};
    use flicker_faults::{Fault, FaultInjector, FaultPlan};

    // A direct-launch image long enough to trip the stub-path overflow
    // arithmetic (total > SLB_MAX - HASHING_STUB_SIZE) while still fitting
    // the measured window (not large).
    let identity = vec![0x5A; SLB_MAX - HASHING_STUB_SIZE];
    let slb = native_slb(&identity, ReversePal);
    assert!(!slb.is_large());

    let mut os = test_os(33);
    // OS-owned memory above the parameter pages; staging never wrote here,
    // so a failed session must not scrub it.
    let sentinel_addr = DEFAULT_SLB_BASE + OVERFLOW_OFFSET;
    os.machine_mut()
        .memory_mut()
        .write(sentinel_addr, &[0xEE; 16])
        .unwrap();
    // Fail the second staging store (the inputs page write).
    os.machine_mut()
        .set_fault_injector(FaultInjector::new(&FaultPlan::one(Fault::MemWriteFault {
            skip: 1,
        })));

    let err = run_session(&mut os, &slb, &SessionParams::with_inputs(b"in".to_vec())).unwrap_err();
    assert!(format!("{err}").contains("machine"), "{err}");
    assert_eq!(
        os.machine().memory().read(sentinel_addr, 16).unwrap(),
        &[0xEE; 16],
        "non-stub scrub must not reach the overflow region"
    );
}

/// Hashes its inputs (one logged `sha1` op) and emits the digest.
struct HashPal;
impl NativePal for HashPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let inputs = ctx.inputs().to_vec();
        let digest = ctx.sha1(&inputs);
        ctx.write_output(&digest)
    }
}

#[test]
fn traced_session_has_one_span_per_phase_summing_to_total() {
    let mut os = test_os(34);
    let trace = flicker_trace::Trace::default();
    os.set_tracer(trace.clone());

    let slb = native_slb(b"hash-pal", HashPal);
    let rec = run_session(
        &mut os,
        &slb,
        &SessionParams::with_inputs(b"span me".to_vec()),
    )
    .unwrap();
    assert_eq!(rec.pal_result, Ok(()));

    let mut sum = Duration::ZERO;
    for name in PHASE_SPAN_NAMES {
        let spans = trace.spans_named(name);
        assert_eq!(spans.len(), 1, "exactly one {name} span");
        sum += spans[0].duration.expect("span closed");
    }
    assert_eq!(sum, rec.timings.total, "phases must account for the total");

    // Phase spans agree with the record's own timings.
    let t = &rec.timings;
    for (name, expect) in [
        ("phase.suspend", t.suspend),
        ("phase.skinit", t.skinit),
        ("phase.stub_measure", t.stub_measure),
        ("phase.pal", t.pal),
        ("phase.cleanup", t.cleanup),
        ("phase.resume", t.resume),
    ] {
        assert_eq!(trace.spans_named(name)[0].duration, Some(expect), "{name}");
    }

    // The PAL's logged op landed in the trace and in the typed op events.
    assert_eq!(trace.histogram("sha1").unwrap().count(), 1);
    assert_eq!(rec.ops.iter().filter(|e| e.name == "sha1").count(), 1);
    assert_eq!(rec.op_log().len(), rec.ops.len());

    // A second traced session appends another set of spans.
    run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert_eq!(trace.spans_named("phase.pal").len(), 2);

    // Native payloads have nothing to statically verify: no verify span,
    // no verdict counters.
    assert!(trace.spans_named(flicker_core::VERIFY_SPAN_NAME).is_empty());
    assert_eq!(trace.counter(flicker_core::VERIFY_ACCEPT_COUNTER), 0);
}

#[test]
fn traced_bytecode_session_records_the_verifier_verdict() {
    use flicker_core::{
        ANALYZE_SPAN_NAME, CT_ACCEPT_COUNTER, CT_REJECT_COUNTER, VERIFY_ACCEPT_COUNTER,
        VERIFY_REJECT_COUNTER, VERIFY_SPAN_NAME,
    };

    let mut os = test_os(35);
    let trace = flicker_trace::Trace::default();
    os.set_tracer(trace.clone());

    // A verified program: accept counter, one verify span, one analyze
    // span (hello_world handles no secrets, so it is also ct-clean).
    let slb = SlbImage::build(
        PalPayload::Bytecode(flicker_palvm::progs::hello_world()),
        SlbOptions::default(),
    )
    .unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    assert_eq!(trace.spans_named(VERIFY_SPAN_NAME).len(), 1);
    assert_eq!(trace.spans_named(ANALYZE_SPAN_NAME).len(), 1);
    assert_eq!(trace.counter(VERIFY_ACCEPT_COUNTER), 1);
    assert_eq!(trace.counter(VERIFY_REJECT_COUNTER), 0);
    assert_eq!(trace.counter(CT_ACCEPT_COUNTER), 1);
    assert_eq!(trace.counter(CT_REJECT_COUNTER), 0);

    // An unverifiable program smuggled past the builder: the rejection is
    // on the record even though the session still runs (and the run-time
    // defences contain it). An unbounded loop is a safety finding, not a
    // timing-channel one, so the ct counters still call it clean.
    let bad = SlbImage::build_unverified(
        PalPayload::Bytecode(flicker_palvm::assemble("loop: jmp loop").unwrap()),
        SlbOptions {
            fuel: Some(10_000),
            ..Default::default()
        },
    )
    .unwrap();
    let rec = run_session(&mut os, &bad, &SessionParams::default()).unwrap();
    assert!(rec.pal_result.is_err());
    assert_eq!(trace.spans_named(VERIFY_SPAN_NAME).len(), 2);
    assert_eq!(trace.counter(VERIFY_ACCEPT_COUNTER), 1);
    assert_eq!(trace.counter(VERIFY_REJECT_COUNTER), 1);
    assert_eq!(trace.counter(CT_ACCEPT_COUNTER), 2);
    assert_eq!(trace.counter(CT_REJECT_COUNTER), 0);

    // A secret-leaking program smuggled past the builder lands on the
    // ct-reject counter: the timing-channel verdict is separately visible.
    let leaky = SlbImage::build_unverified(
        PalPayload::Bytecode(flicker_palvm::progs::password_gate_leaky()),
        SlbOptions::default(),
    )
    .unwrap();
    run_session(&mut os, &leaky, &SessionParams::default()).unwrap();
    assert_eq!(trace.spans_named(ANALYZE_SPAN_NAME).len(), 3);
    assert_eq!(trace.counter(CT_ACCEPT_COUNTER), 2);
    assert_eq!(trace.counter(CT_REJECT_COUNTER), 1);
}

#[test]
fn traced_session_event_stream_audits_clean() {
    let mut os = test_os(36);
    let trace = flicker_trace::Trace::default();
    os.set_tracer(trace.clone());

    // A seal session then an unseal session: the unseal exercises the
    // auditor's strictest rule (TPM_Unseal only inside a measured PAL).
    let slb1 = native_slb(
        b"audited-pal",
        SealerPal {
            secret: b"flight-recorded secret".to_vec(),
        },
    );
    let r1 = run_session(&mut os, &slb1, &SessionParams::default()).unwrap();
    assert_eq!(r1.pal_result, Ok(()));
    let slb2 = native_slb(b"audited-pal", UnsealerPal);
    let r2 = run_session(&mut os, &slb2, &SessionParams::with_inputs(r1.outputs)).unwrap();
    assert_eq!(r2.pal_result, Ok(()));

    let events = trace.events();
    let names: Vec<_> = events.iter().map(|e| e.kind.name()).collect();
    assert_eq!(names.iter().filter(|n| **n == "session_start").count(), 2);
    assert_eq!(names.iter().filter(|n| **n == "session_end").count(), 2);
    assert!(matches!(
        events[0].kind,
        flicker_trace::EventKind::SessionStart { id: 1 }
    ));
    assert_eq!(
        names.iter().filter(|n| **n == "phase_start").count(),
        names.iter().filter(|n| **n == "phase_end").count(),
        "every phase start has a matching end"
    );
    assert!(
        names.contains(&"tpm_command"),
        "TPM traffic is on the record"
    );

    // The real driver's stream satisfies every Figure-2 / §4 invariant.
    assert_eq!(flicker_trace::audit::audit_events(&events), vec![]);
}
