//! Property-based tests for Flicker core: SLB builder invariants, the
//! measurement chain, and a fuzz harness proving that *arbitrary* bytecode
//! PALs stay contained by the OS-Protection module.

use flicker_core::{
    expected_pcr17_final, io_measurement, run_session, ExpectedSession, PalPayload, SessionParams,
    SlbImage, SlbOptions, DEFAULT_SLB_BASE, REGION_LEN,
};
use flicker_os::{Os, OsConfig};
use flicker_palvm::{Insn, Opcode, Program, INSN_LEN};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

struct Nop;
impl flicker_core::NativePal for Nop {
    fn run(&self, _: &mut flicker_core::PalContext<'_>) -> flicker_core::FlickerResult<()> {
        Ok(())
    }
}

fn native(identity: Vec<u8>) -> PalPayload {
    PalPayload::Native {
        identity,
        program: Arc::new(Nop),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SLB builder's header is always consistent with the image, and
    /// the measurement is deterministic and base-sensitive.
    #[test]
    fn slb_builder_invariants(
        identity in proptest::collection::vec(any::<u8>(), 1..2048),
        base_a in (1u64..256).prop_map(|p| p * 4096),
        base_b in (1u64..256).prop_map(|p| p * 4096),
    ) {
        let slb = SlbImage::build(native(identity.clone()), SlbOptions::default()).unwrap();
        let len = u16::from_le_bytes(slb.bytes()[0..2].try_into().unwrap()) as usize;
        prop_assert_eq!(len, slb.len());
        let entry = u16::from_le_bytes(slb.bytes()[2..4].try_into().unwrap()) as usize;
        prop_assert!(entry < len);
        prop_assert_eq!(&slb.bytes()[slb.pal_offset()..], &identity[..]);

        prop_assert_eq!(slb.measurement(base_a), slb.measurement(base_a));
        if base_a != base_b {
            prop_assert_ne!(slb.measurement(base_a), slb.measurement(base_b));
        }
    }

    /// `io_measurement` separates every (inputs, outputs) framing.
    #[test]
    fn io_measurement_framing(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let joined = io_measurement(&a, &b);
        // Moving one byte across the boundary changes the measurement.
        if !a.is_empty() {
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            b2.insert(0, a2.pop().unwrap());
            prop_assert_ne!(io_measurement(&a2, &b2), joined);
        }
    }

    /// The expected-PCR17 chain is injective over each component (sampled).
    #[test]
    fn chain_component_sensitivity(
        id_a in proptest::collection::vec(any::<u8>(), 1..64),
        id_b in proptest::collection::vec(any::<u8>(), 1..64),
        nonce in any::<[u8; 20]>(),
    ) {
        prop_assume!(id_a != id_b);
        let slb_a = SlbImage::build(native(id_a), SlbOptions::default()).unwrap();
        let slb_b = SlbImage::build(native(id_b), SlbOptions::default()).unwrap();
        let mk = |slb: &SlbImage| {
            expected_pcr17_final(&ExpectedSession {
                slb,
                slb_base: DEFAULT_SLB_BASE,
                inputs: b"i",
                outputs: b"o",
                nonce,
                used_hashing_stub: false,
            })
        };
        prop_assert_ne!(mk(&slb_a), mk(&slb_b));
    }
}

// ---------------------------------------------------------------------------
// Bytecode fuzzing: arbitrary programs cannot escape the PAL region.
// ---------------------------------------------------------------------------

thread_local! {
    static FUZZ_OS: RefCell<Os> = RefCell::new(Os::boot(OsConfig::fast_for_tests(231)));
}

/// Strategy for one arbitrary-but-decodable instruction.
fn arb_insn(max_pc: u32) -> impl Strategy<Value = Insn> {
    (0u8..=24, 0u8..16, 0u8..16, 0u8..16, any::<u32>()).prop_map(move |(op, rd, rs1, rs2, imm)| {
        let op = Opcode::from_u8(op).expect("valid opcode range");
        // Keep branch targets inside the program so runs are not all
        // instant PcOutOfRange faults.
        let imm = match op {
            Opcode::Jmp | Opcode::Jz | Opcode::Jnz | Opcode::Jlt | Opcode::Call => imm % max_pc,
            _ => imm,
        };
        Insn {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    })
}

fn encode(insns: &[Insn]) -> Program {
    let mut code = Vec::with_capacity(insns.len() * INSN_LEN);
    for i in insns {
        code.extend_from_slice(&i.encode());
    }
    Program {
        code,
        labels: BTreeMap::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fuzz: ANY bytecode program, run under the OS-Protection module,
    /// leaves all memory outside the OS-allocated region untouched, and
    /// the platform always comes back (interrupts on, no active launch,
    /// no leaked DEV protections).
    #[test]
    fn arbitrary_bytecode_is_contained(
        insns in proptest::collection::vec(arb_insn(64), 1..64),
        inputs in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        FUZZ_OS.with(|cell| {
            let mut os = cell.borrow_mut();
            let prog = encode(&insns);
            // Fuzzed programs rarely pass the static verifier; the whole
            // point here is run-time containment of arbitrary bytecode.
            let slb = SlbImage::build_unverified(
                PalPayload::Bytecode(prog),
                SlbOptions {
                    fuel: Some(200_000),
                    ..Default::default()
                },
            )
            .unwrap();

            // Plant sentinels just outside the allocated region.
            let before = DEFAULT_SLB_BASE - 16;
            let after = DEFAULT_SLB_BASE + REGION_LEN as u64;
            os.machine_mut().memory_mut().write(before, b"BEFORE-SENTINEL!").unwrap();
            os.machine_mut().memory_mut().write(after, b"AFTER-SENTINEL!!").unwrap();
            let kernel_snapshot = {
                let (kbase, klen) = os.kernel_region();
                os.machine_mut().memory().read(kbase, klen.min(4096)).unwrap().to_vec()
            };

            // Run; the PAL may fault or halt — both are fine.
            let rec = run_session(&mut os, &slb, &SessionParams::with_inputs(inputs)).unwrap();
            let _ = rec.pal_result;

            // Containment.
            prop_assert_eq!(
                os.machine_mut().memory().read(before, 16).unwrap(),
                b"BEFORE-SENTINEL!"
            );
            prop_assert_eq!(
                os.machine_mut().memory().read(after, 16).unwrap(),
                b"AFTER-SENTINEL!!"
            );
            let (kbase, _) = os.kernel_region();
            prop_assert_eq!(
                os.machine_mut().memory().read(kbase, kernel_snapshot.len()).unwrap(),
                &kernel_snapshot[..]
            );

            // Platform restored.
            prop_assert!(os.machine().cpus().bsp().interrupts_enabled);
            prop_assert!(os.machine().active_skinit().is_none());
            prop_assert_eq!(os.machine().dev().active_protections(), 0);
            Ok(())
        })?;
    }
}
