//! Adversary-model tests (paper §3.1): a malicious OS that controls
//! ring 0, invokes SKINIT at will, replays ciphertexts, and commands
//! DMA-capable devices — and malicious PALs trying to escape their region.

use flicker_core::{
    expected_pcr17_final, run_session, ExpectedSession, FlickerError, FlickerResult, NativePal,
    PalContext, PalPayload, ReplayProtectedStorage, SessionParams, SlbImage, SlbOptions, Verifier,
    TERMINATOR,
};
use flicker_crypto::rng::XorShiftRng;
use flicker_crypto::sha1::sha1;
use flicker_os::{Os, OsConfig};
use flicker_tpm::{PcrSelection, PrivacyCa, SealedBlob};
use std::sync::Arc;

fn test_os(seed: u8) -> Os {
    Os::boot(OsConfig::fast_for_tests(seed))
}

fn native_slb_with(
    identity: &[u8],
    pal: impl NativePal + 'static,
    options: SlbOptions,
) -> SlbImage {
    SlbImage::build(
        PalPayload::Native {
            identity: identity.to_vec(),
            program: Arc::new(pal),
        },
        options,
    )
    .unwrap()
}

fn native_slb(identity: &[u8], pal: impl NativePal + 'static) -> SlbImage {
    native_slb_with(identity, pal, SlbOptions::default())
}

// ---------------------------------------------------------------------------
// Attack 1: the OS forges PCR 17 without running the PAL.
// ---------------------------------------------------------------------------

#[test]
fn os_cannot_forge_pcr17_by_software_extends() {
    let mut os = test_os(21);
    let slb = native_slb(b"victim-pal", EchoPal);
    let slb_base = flicker_core::DEFAULT_SLB_BASE;

    // The malicious OS knows the PAL's measurement and tries to reproduce
    // the post-session PCR 17 with plain software extends (no SKINIT).
    let measurement = slb.measurement(slb_base);
    os.machine_mut()
        .tpm_op(|t| t.pcr_extend(17, &measurement))
        .unwrap();
    let io = flicker_core::io_measurement(b"", b"forged");
    os.machine_mut().tpm_op(|t| t.pcr_extend(17, &io)).unwrap();
    os.machine_mut()
        .tpm_op(|t| t.pcr_extend(17, &[0u8; 20]))
        .unwrap();
    os.machine_mut()
        .tpm_op(|t| t.pcr_extend(17, &TERMINATOR))
        .unwrap();

    let forged = os.machine().tpm().pcrs().read(17).unwrap();
    let honest = expected_pcr17_final(&ExpectedSession {
        slb: &slb,
        slb_base,
        inputs: b"",
        outputs: b"forged",
        nonce: [0u8; 20],
        used_hashing_stub: false,
    });
    // The chain roots differ: -1 (reboot) vs 0 (locality-4 reset), and
    // software cannot perform the reset (tested at the TPM layer), so the
    // forgery cannot collide.
    assert_ne!(forged, honest);
}

#[test]
fn os_running_evil_pal_yields_detectable_measurement() {
    // §3.1: "the adversary ... can invoke the SKINIT instruction with
    // arguments of its choosing". It can — but the measurement pins it.
    let mut rng = XorShiftRng::new(77);
    let mut privacy_ca = PrivacyCa::new(512, &mut rng);
    let mut os = test_os(22);
    os.provision_attestation(&mut privacy_ca, "victim-host")
        .unwrap();
    let cert = os.aik_certificate().unwrap().clone();

    let honest_slb = native_slb(b"honest-pal", EchoPal);
    let evil_slb = native_slb(b"evil-lookalike", EchoPal);

    let nonce = [0x11; 20];
    let params = SessionParams {
        nonce,
        ..Default::default()
    };
    let rec = run_session(&mut os, &evil_slb, &params).unwrap();
    let quote = os.tqd_quote(nonce, &PcrSelection::pcr17()).unwrap();

    // The OS claims it ran the honest PAL. The verifier is not fooled.
    let verifier = Verifier::new(privacy_ca.public_key().clone());
    let claim = ExpectedSession {
        slb: &honest_slb,
        slb_base: params.slb_base,
        inputs: &[],
        outputs: &rec.outputs,
        nonce,
        used_hashing_stub: false,
    };
    assert!(matches!(
        verifier.verify(&cert, &quote, &claim),
        Err(FlickerError::Attestation(_))
    ));
}

// ---------------------------------------------------------------------------
// Attack 2: DMA into the SLB during the session.
// ---------------------------------------------------------------------------

#[test]
fn dma_into_slb_is_blocked_during_session_only() {
    // We cannot interleave a device access mid-session through the public
    // driver (the session call is atomic), so probe the DEV state by
    // running the same checks the device path uses, inside a PAL.
    struct DevCheckPal;
    impl NativePal for DevCheckPal {
        fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
            // The DEV is machine state a PAL cannot interrogate; this PAL
            // just proves a session ran between the two DMA probes below.
            ctx.write_output(b"ran")
        }
    }
    let mut os = test_os(23);
    let slb = native_slb(b"dev-check", DevCheckPal);
    let base = flicker_core::DEFAULT_SLB_BASE;

    // Before: DMA to the future SLB address succeeds.
    os.machine_mut().dma_write(base, &[0u8; 4]).unwrap();
    run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    // After: protection released again.
    os.machine_mut().dma_write(base, &[0u8; 4]).unwrap();
    // During: covered by the machine-level test
    // `dev_blocks_dma_during_session_everywhere_in_64k`; here we assert the
    // session left zero stale protections.
    assert_eq!(os.machine().dev().active_protections(), 0);
}

// ---------------------------------------------------------------------------
// Attack 3: malicious PAL scans physical memory.
// ---------------------------------------------------------------------------

/// Writes a "kernel secret" into physical memory outside the SLB region,
/// then runs a scanner PAL that tries to read it.
fn plant_secret(os: &mut Os, addr: u64) {
    os.machine_mut()
        .memory_mut()
        .write(addr, b"KERNEL-SECRET-0123")
        .unwrap();
}

#[test]
fn unprotected_pal_can_read_all_of_memory() {
    // Without the OS-Protection module the PAL runs ring 0 with flat
    // segments: it CAN read the kernel secret (the danger §5.1.2 names).
    let secret_addr = 0x30_0000u64;
    let prog = flicker_palvm::progs::memory_scanner(secret_addr as u32, 18);
    let mut os = test_os(24);
    plant_secret(&mut os, secret_addr);
    // `build_unverified`: the static verifier would reject this scanner,
    // and the point of the test is the *run-time* danger.
    let slb = SlbImage::build_unverified(
        PalPayload::Bytecode(prog),
        SlbOptions {
            os_protection: false,
            ..Default::default()
        },
    )
    .unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    assert_eq!(rec.outputs, b"KERNEL-SECRET-0123");
}

#[test]
fn os_protection_contains_the_scanner() {
    // With the OS-Protection module, the same scanner faults on its first
    // out-of-segment access and exfiltrates nothing.
    let secret_addr = 0x30_0000u64;
    let prog = flicker_palvm::progs::memory_scanner(secret_addr as u32, 18);
    let mut os = test_os(25);
    plant_secret(&mut os, secret_addr);
    // Past the verifier via the escape hatch; the OS-Protection module is
    // the defence in depth this test exercises.
    let slb =
        SlbImage::build_unverified(PalPayload::Bytecode(prog), SlbOptions::default()).unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::default()).unwrap();
    let err = rec.pal_result.unwrap_err();
    assert!(err.contains("memory fault"), "{err}");
    assert!(rec.outputs.is_empty());
    // And the OS still resumed fine.
    assert!(os.machine().cpus().bsp().interrupts_enabled);
}

#[test]
fn os_protection_still_allows_own_region() {
    // The contained PAL can use its own memory: scan the input page.
    let prog = flicker_palvm::progs::memory_scanner(flicker_core::slb::INPUTS_OFFSET as u32, 4);
    let mut os = test_os(26);
    let slb = SlbImage::build(PalPayload::Bytecode(prog), SlbOptions::default()).unwrap();
    let rec = run_session(&mut os, &slb, &SessionParams::with_inputs(b"ping".to_vec())).unwrap();
    assert_eq!(rec.pal_result, Ok(()));
    assert_eq!(rec.outputs, b"ping");
}

// ---------------------------------------------------------------------------
// Attack 4: secrets must not survive in memory after the session.
// ---------------------------------------------------------------------------

struct SecretWriterPal;
impl NativePal for SecretWriterPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        // Stash a secret in PAL memory (inside the SLB region, ring 3,
        // logical offset in the stack area) and in the input page.
        ctx.write_logical(61 * 1024, b"IN-MEMORY-SECRET")?;
        Ok(())
    }
}

#[test]
fn cleanup_erases_pal_memory_before_resume() {
    let mut os = test_os(27);
    let slb = native_slb(b"secretive-pal", SecretWriterPal);
    let params = SessionParams::with_inputs(b"SECRET-INPUT".to_vec());
    run_session(&mut os, &slb, &params).unwrap();

    // The malicious OS now scans the whole region.
    let region = os
        .machine()
        .memory()
        .read(params.slb_base, flicker_core::SLB_MAX + 0x1000)
        .unwrap();
    assert!(
        !region
            .windows(16)
            .any(|w| w == b"IN-MEMORY-SECRET".as_slice()),
        "PAL memory must be cleansed"
    );
    assert!(
        !region.windows(12).any(|w| w == b"SECRET-INPUT".as_slice()),
        "input page must be cleansed"
    );
}

// ---------------------------------------------------------------------------
// Attack 5: sealed-storage replay (§4.3.2).
// ---------------------------------------------------------------------------

const NV_INDEX: u32 = 0x0001_2000;

struct PasswordDbPal {
    action: DbAction,
}

enum DbAction {
    /// Define the NV counter space and seal version 1 of the database.
    Init { db: Vec<u8> },
    /// Unseal (input blob), update, reseal.
    Update { new_db: Vec<u8> },
    /// Unseal (input blob) and emit the db hash.
    Read,
    /// Unseal with a crash between increment and ciphertext output.
    UpdateCrash { new_db: Vec<u8> },
}

impl NativePal for PasswordDbPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let store = ReplayProtectedStorage::new(NV_INDEX);
        match &self.action {
            DbAction::Init { db } => {
                store.setup(ctx, &[0u8; 20])?;
                let blob = store.seal(ctx, db)?;
                ctx.write_output(blob.as_bytes())
            }
            DbAction::Update { new_db } => {
                let old = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let _current = store.unseal(ctx, &old)?;
                let blob = store.seal(ctx, new_db)?;
                ctx.write_output(blob.as_bytes())
            }
            DbAction::Read => {
                let blob = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let db = store.unseal(ctx, &blob)?;
                let digest = ctx.sha1(&db);
                ctx.write_output(&digest)
            }
            DbAction::UpdateCrash { new_db } => {
                let old = SealedBlob::from_bytes(ctx.inputs().to_vec());
                let _current = store.unseal(ctx, &old)?;
                let blob = store.seal_then_crash(ctx, new_db)?;
                ctx.write_output(blob.as_bytes())
            }
        }
    }
}

fn db_session(os: &mut Os, action: DbAction, inputs: Vec<u8>) -> Result<Vec<u8>, String> {
    let slb = native_slb(b"password-db-pal", PasswordDbPal { action });
    let rec = run_session(os, &slb, &SessionParams::with_inputs(inputs)).unwrap();
    rec.pal_result.map(|()| rec.outputs)
}

#[test]
fn replay_of_stale_password_database_detected() {
    let mut os = test_os(28);
    // v1: database with the old (publicised) password.
    let v1 = db_session(
        &mut os,
        DbAction::Init {
            db: b"alice:oldpw".to_vec(),
        },
        Vec::new(),
    )
    .unwrap();
    // v2: password changed.
    let v2 = db_session(
        &mut os,
        DbAction::Update {
            new_db: b"alice:newpw".to_vec(),
        },
        v1.clone(),
    )
    .unwrap();

    // Reading v2 works and shows the new password db.
    let out = db_session(&mut os, DbAction::Read, v2.clone()).unwrap();
    assert_eq!(out, sha1(b"alice:newpw"));

    // The malicious OS replays v1: Figure 4's version check fires.
    let err = db_session(&mut os, DbAction::Read, v1).unwrap_err();
    assert!(err.contains("replay detected"), "{err}");
}

#[test]
fn crash_between_seal_and_commit_recovers_without_data_loss() {
    // The §4.3.2 caveat, fixed: a crash between producing the ciphertext
    // and committing the counter used to leave the counter ahead of every
    // blob — all data permanently unreadable. With the lazy commit the
    // counter only moves when a new blob is first unsealed, so a crashed
    // update strands nothing and no state is ever lost.
    let mut os = test_os(29);
    let v1 = db_session(
        &mut os,
        DbAction::Init {
            db: b"db-v1".to_vec(),
        },
        Vec::new(),
    )
    .unwrap();
    let v2_uncommitted = db_session(
        &mut os,
        DbAction::UpdateCrash {
            new_db: b"db-v2".to_vec(),
        },
        v1.clone(),
    )
    .unwrap();

    // The previous blob is still readable — the crashed update did not
    // strand the store.
    let out = db_session(&mut os, DbAction::Read, v1.clone()).unwrap();
    assert_eq!(out, sha1(b"db-v1"));

    // The uncommitted blob also unseals; doing so commits its version.
    let out = db_session(&mut os, DbAction::Read, v2_uncommitted.clone()).unwrap();
    assert_eq!(out, sha1(b"db-v2"));

    // The store keeps working after recovery...
    let v3 = db_session(
        &mut os,
        DbAction::Update {
            new_db: b"db-v3".to_vec(),
        },
        v2_uncommitted,
    )
    .unwrap();
    let out = db_session(&mut os, DbAction::Read, v3).unwrap();
    assert_eq!(out, sha1(b"db-v3"));

    // ...and the grace window has closed: the stale blob is now a replay.
    let err = db_session(&mut os, DbAction::Read, v1).unwrap_err();
    assert!(err.contains("replay detected"), "{err}");
}

#[test]
fn nv_counter_inaccessible_outside_the_pal() {
    // After the session, PCR 17 holds the terminator chain, so the
    // PCR-gated NV space refuses the OS.
    let mut os = test_os(30);
    db_session(&mut os, DbAction::Init { db: b"db".to_vec() }, Vec::new()).unwrap();
    let res = os.machine_mut().tpm_op(|t| t.nv_read(NV_INDEX));
    assert!(
        matches!(res, Err(flicker_tpm::TpmError::NvPcrMismatch(_))),
        "{res:?}"
    );
}

struct EchoPal;
impl NativePal for EchoPal {
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()> {
        let data = ctx.inputs().to_vec();
        ctx.write_output(&data)
    }
}
