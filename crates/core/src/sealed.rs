//! Replay-protected sealed storage (paper §4.3.2, Figure 4).
//!
//! TPM sealing alone lets the untrusted OS mount *replay* attacks: it can
//! feed a PAL an older ciphertext (the stale password database of the
//! paper's example). Figure 4's construction defeats this with a secure
//! counter:
//!
//! ```text
//! Seal(d):   IncrementCounter(); j ← ReadCounter();
//!            c ← TPM_Seal(d ‖ j, PCR list); output c
//! Unseal(c): d ‖ j′ ← TPM_Unseal(c); j ← ReadCounter();
//!            if j′ ≠ j output ⊥ else output d
//! ```
//!
//! The counter lives in TPM NV storage gated on the PAL's own PCR 17 value
//! (paper: "Setting the PCR requirements to match those specified during
//! the TPM Seal command creates an environment where a counter value
//! stored in non-volatile storage is only available to the desired PAL").

use crate::error::{FlickerError, FlickerResult};
use crate::pal::PalContext;
use flicker_tpm::{AuthData, NvPcrPolicy, PcrSelection, SealedBlob};

/// Size of the NV space backing the counter (a big-endian u64).
const COUNTER_SIZE: usize = 8;

/// A replay-protected store rooted in one NV index.
#[derive(Debug, Clone, Copy)]
pub struct ReplayProtectedStorage {
    nv_index: u32,
}

impl ReplayProtectedStorage {
    /// Binds the store to an NV index (must be set up first).
    pub fn new(nv_index: u32) -> Self {
        ReplayProtectedStorage { nv_index }
    }

    /// One-time setup, run *inside* the owning PAL's session: defines the
    /// NV space gated to the PAL's current PCR 17 (so only this PAL, in a
    /// Flicker session, can touch the counter) and zeroes it.
    ///
    /// `owner_auth` is the 20-byte TPM Owner Authorization Data, delivered
    /// to the PAL over a secure channel per the paper.
    pub fn setup(&self, ctx: &mut PalContext<'_>, owner_auth: &AuthData) -> FlickerResult<()> {
        let selection = PcrSelection::pcr17();
        let index = self.nv_index;
        let auth = *owner_auth;
        ctx.tpm_op(move |t| -> flicker_tpm::TpmResult<()> {
            let digest = t.pcrs().composite_hash(&selection)?;
            t.nv_define_space(
                index,
                COUNTER_SIZE,
                Some(NvPcrPolicy { selection, digest }),
                &auth,
            )?;
            t.nv_write(index, 0, &0u64.to_be_bytes())
        })?;
        Ok(())
    }

    fn read_counter(&self, ctx: &mut PalContext<'_>) -> FlickerResult<u64> {
        let index = self.nv_index;
        let bytes = ctx.tpm_op(move |t| t.nv_read(index))?;
        let arr: [u8; COUNTER_SIZE] = bytes
            .try_into()
            .map_err(|_| FlickerError::Protocol("counter space has wrong size"))?;
        Ok(u64::from_be_bytes(arr))
    }

    fn increment_counter(&self, ctx: &mut PalContext<'_>) -> FlickerResult<u64> {
        let next = self.read_counter(ctx)? + 1;
        let index = self.nv_index;
        ctx.tpm_op(move |t| t.nv_write(index, 0, &next.to_be_bytes()))?;
        Ok(next)
    }

    /// Figure 4's `Seal(d)`.
    pub fn seal(&self, ctx: &mut PalContext<'_>, data: &[u8]) -> FlickerResult<SealedBlob> {
        let version = self.increment_counter(ctx)?;
        let mut payload = Vec::with_capacity(data.len() + 8);
        payload.extend_from_slice(data);
        payload.extend_from_slice(&version.to_be_bytes());
        ctx.seal_to_self(&payload)
    }

    /// Figure 4's `Seal(d)` with a simulated power failure *after* the
    /// counter increment but *before* the ciphertext is returned — the
    /// §4.3.2 caveat ("the secure counter can become out-of-sync with the
    /// latest sealed-storage ciphertext"). The data is gone; the increment
    /// persists.
    pub fn seal_then_crash(&self, ctx: &mut PalContext<'_>, data: &[u8]) -> FlickerResult<()> {
        let _ = self.increment_counter(ctx)?;
        let mut payload = Vec::with_capacity(data.len() + 8);
        payload.extend_from_slice(data);
        payload.extend_from_slice(&version_never_escapes());
        let _lost_ciphertext = ctx.seal_to_self(&payload)?;
        Ok(())
    }

    /// Figure 4's `Unseal(c)`: returns [`FlickerError::ReplayDetected`]
    /// when the ciphertext's version is not the counter's current value —
    /// either a replayed stale blob or a crash-induced desync.
    pub fn unseal(&self, ctx: &mut PalContext<'_>, blob: &SealedBlob) -> FlickerResult<Vec<u8>> {
        let payload = ctx.unseal(blob)?;
        if payload.len() < 8 {
            return Err(FlickerError::Protocol("sealed payload too short"));
        }
        let (data, ver) = payload.split_at(payload.len() - 8);
        let sealed_version = u64::from_be_bytes(ver.try_into().expect("8 bytes"));
        let counter = self.read_counter(ctx)?;
        if sealed_version != counter {
            return Err(FlickerError::ReplayDetected {
                sealed_version,
                counter,
            });
        }
        Ok(data.to_vec())
    }
}

fn version_never_escapes() -> [u8; 8] {
    // The crashed seal's version bytes; the value is irrelevant because the
    // ciphertext is dropped on the floor.
    [0xFF; 8]
}
