//! Replay-protected sealed storage (paper §4.3.2, Figure 4).
//!
//! TPM sealing alone lets the untrusted OS mount *replay* attacks: it can
//! feed a PAL an older ciphertext (the stale password database of the
//! paper's example). Figure 4's construction defeats this with a secure
//! counter:
//!
//! ```text
//! Seal(d):   IncrementCounter(); j ← ReadCounter();
//!            c ← TPM_Seal(d ‖ j, PCR list); output c
//! Unseal(c): d ‖ j′ ← TPM_Unseal(c); j ← ReadCounter();
//!            if j′ ≠ j output ⊥ else output d
//! ```
//!
//! The counter lives in TPM NV storage gated on the PAL's own PCR 17 value
//! (paper: "Setting the PCR requirements to match those specified during
//! the TPM Seal command creates an environment where a counter value
//! stored in non-volatile storage is only available to the desired PAL").
//!
//! # Crash consistency (the §4.3.2 caveat, fixed)
//!
//! Figure 4 as written increments *first* and seals *second*, so a crash —
//! or a mere seal failure — between the two leaves the counter ahead of
//! every existing ciphertext: all data is permanently unreadable. The
//! paper acknowledges this ("the secure counter can become out-of-sync
//! with the latest sealed-storage ciphertext"). Worse, *any* eager
//! increment has the dual failure: if the new ciphertext never reaches the
//! OS's stable storage (power cut before the output page is read, a
//! faulted write), the counter has moved past every blob that still
//! exists. This implementation therefore commits *lazily*:
//!
//! 1. **Seal** produces the ciphertext under `committed + 1` and does
//!    *not* move the counter. A crash anywhere — before, during, or after
//!    the seal, including losing the ciphertext itself — leaves the
//!    committed version and its blob intact.
//! 2. **Unseal** accepts the committed version (the current blob) *or*
//!    `committed + 1` (a newer blob whose first use this is). Seeing the
//!    latter commits it — into the *inactive* slot of a two-slot
//!    ping-pong record, each slot checksummed so a torn NV write can
//!    never destroy the last committed value — and from that moment every
//!    older blob is rejected as a replay.
//!
//! The one-version grace window is the price of crash recovery without
//! write-ahead stable storage: until a new blob is first used, the
//! previous one remains valid, and whichever the OS presents first wins
//! that fork. Once any blob unseals, the window closes behind it. What the
//! construction guarantees in exchange: no reachable crash point leaves
//! the store permanently unreadable.

use crate::error::{FlickerError, FlickerResult};
use crate::pal::PalContext;
use flicker_tpm::{AuthData, NvPcrPolicy, PcrSelection, SealedBlob};

/// Each slot: version (8 bytes BE) ‖ checksum (8 bytes BE).
const SLOT_SIZE: usize = 16;
/// The NV space holds two slots (ping-pong commit record).
const NV_SIZE: usize = 2 * SLOT_SIZE;
/// Checksum whitening constant: `check = version ^ CHECK_MAGIC`, so an
/// all-zero (torn or never-written) slot is invalid.
const CHECK_MAGIC: u64 = 0x5EA1_C0DE_D5EA_1C0D;

fn encode_slot(version: u64) -> [u8; SLOT_SIZE] {
    let mut out = [0u8; SLOT_SIZE];
    out[..8].copy_from_slice(&version.to_be_bytes());
    out[8..].copy_from_slice(&(version ^ CHECK_MAGIC).to_be_bytes());
    out
}

fn decode_slot(bytes: &[u8]) -> Option<u64> {
    let version = u64::from_be_bytes(bytes[..8].try_into().ok()?);
    let check = u64::from_be_bytes(bytes[8..SLOT_SIZE].try_into().ok()?);
    (version ^ CHECK_MAGIC == check).then_some(version)
}

/// A replay-protected store rooted in one NV index.
#[derive(Debug, Clone, Copy)]
pub struct ReplayProtectedStorage {
    nv_index: u32,
}

impl ReplayProtectedStorage {
    /// Binds the store to an NV index (must be set up first).
    pub fn new(nv_index: u32) -> Self {
        ReplayProtectedStorage { nv_index }
    }

    /// One-time setup, run *inside* the owning PAL's session: defines the
    /// NV space gated to the PAL's current PCR 17 (so only this PAL, in a
    /// Flicker session, can touch the counter) and commits version 0 into
    /// slot 0. Slot 1 starts all-zero, which the checksum leaves invalid.
    ///
    /// `owner_auth` is the 20-byte TPM Owner Authorization Data, delivered
    /// to the PAL over a secure channel per the paper.
    pub fn setup(&self, ctx: &mut PalContext<'_>, owner_auth: &AuthData) -> FlickerResult<()> {
        let selection = PcrSelection::pcr17();
        let index = self.nv_index;
        let auth = *owner_auth;
        ctx.tpm_op(move |t| -> flicker_tpm::TpmResult<()> {
            let digest = t.pcrs().composite_hash(&selection)?;
            t.nv_define_space(
                index,
                NV_SIZE,
                Some(NvPcrPolicy { selection, digest }),
                &auth,
            )
        })?;
        ctx.tpm_op_retrying(move |t| t.nv_write(index, 0, &encode_slot(0)))?;
        Ok(())
    }

    /// Reads the commit record: `(committed_version, slot_holding_it)`.
    /// A torn slot (bad checksum) is ignored; the other slot's value
    /// stands. Both slots invalid means the record was never set up (or
    /// both writes tore — impossible for single-slot commits).
    fn read_state(&self, ctx: &mut PalContext<'_>) -> FlickerResult<(u64, usize)> {
        let index = self.nv_index;
        let bytes = ctx.tpm_op_retrying(move |t| t.nv_read(index))?;
        if bytes.len() != NV_SIZE {
            return Err(FlickerError::Protocol("counter space has wrong size"));
        }
        let slot0 = decode_slot(&bytes[..SLOT_SIZE]);
        let slot1 = decode_slot(&bytes[SLOT_SIZE..]);
        match (slot0, slot1) {
            (Some(a), Some(b)) if b > a => Ok((b, 1)),
            (Some(a), _) => Ok((a, 0)),
            (None, Some(b)) => Ok((b, 1)),
            (None, None) => Err(FlickerError::Protocol("counter record unreadable")),
        }
    }

    /// Commits `version` into `slot` (the one *not* holding the current
    /// committed value, so a torn write can only hurt the new record).
    fn write_commit(
        &self,
        ctx: &mut PalContext<'_>,
        slot: usize,
        version: u64,
    ) -> FlickerResult<()> {
        let index = self.nv_index;
        ctx.tpm_op_retrying(move |t| t.nv_write(index, slot * SLOT_SIZE, &encode_slot(version)))?;
        Ok(())
    }

    /// The committed counter value (diagnostics and tests).
    pub fn committed_version(&self, ctx: &mut PalContext<'_>) -> FlickerResult<u64> {
        Ok(self.read_state(ctx)?.0)
    }

    /// Figure 4's `Seal(d)`, with a lazy commit: the ciphertext is
    /// produced under `committed + 1` and the counter does *not* move
    /// until the new blob is first unsealed. A failure at any point —
    /// including loss of the returned ciphertext before it reaches the
    /// OS's stable storage — leaves the committed blob readable.
    pub fn seal(&self, ctx: &mut PalContext<'_>, data: &[u8]) -> FlickerResult<SealedBlob> {
        let (committed, _slot) = self.read_state(ctx)?;
        ctx.seal_to_self(&seal_payload(data, committed + 1))
    }

    /// [`ReplayProtectedStorage::seal`] followed by a crash before any
    /// commit could happen — the §4.3.2 window. With the lazy-commit
    /// protocol this is *the same operation as `seal`*: the counter never
    /// moves until first use, so there is no seal/commit gap for a crash
    /// to land in. Kept as a named entry point so tests state the
    /// scenario they exercise.
    pub fn seal_then_crash(
        &self,
        ctx: &mut PalContext<'_>,
        data: &[u8],
    ) -> FlickerResult<SealedBlob> {
        self.seal(ctx, data)
    }

    /// Figure 4's `Unseal(c)`: returns [`FlickerError::ReplayDetected`]
    /// when the ciphertext's version is neither the committed counter
    /// value nor the one uncommitted version ahead of it. Seeing the
    /// uncommitted version commits it (crash recovery).
    pub fn unseal(&self, ctx: &mut PalContext<'_>, blob: &SealedBlob) -> FlickerResult<Vec<u8>> {
        let payload = ctx.unseal(blob)?;
        if payload.len() < 8 {
            return Err(FlickerError::Protocol("sealed payload too short"));
        }
        let (data, ver) = payload.split_at(payload.len() - 8);
        let sealed_version = u64::from_be_bytes(ver.try_into().expect("8 bytes"));
        let (committed, slot) = self.read_state(ctx)?;
        if sealed_version == committed + 1 {
            // The blob outran its commit (crash between seal and commit):
            // adopt its version and carry on.
            self.write_commit(ctx, 1 - slot, sealed_version)?;
        } else if sealed_version != committed {
            return Err(FlickerError::ReplayDetected {
                sealed_version,
                counter: committed,
            });
        }
        Ok(data.to_vec())
    }
}

fn seal_payload(data: &[u8], version: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(data.len() + 8);
    payload.extend_from_slice(data);
    payload.extend_from_slice(&version.to_be_bytes());
    payload
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip_and_torn_invalidity() {
        for v in [0u64, 1, 7, u64::MAX - 1] {
            let enc = encode_slot(v);
            assert_eq!(decode_slot(&enc), Some(v));
            // Any torn prefix of the record is invalid.
            for keep in 0..SLOT_SIZE {
                let mut torn = [0u8; SLOT_SIZE];
                torn[..keep].copy_from_slice(&enc[..keep]);
                assert_eq!(decode_slot(&torn), None, "v={v} keep={keep}");
            }
        }
    }

    #[test]
    fn all_zero_slot_is_invalid() {
        assert_eq!(decode_slot(&[0u8; SLOT_SIZE]), None);
    }
}
