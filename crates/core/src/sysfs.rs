//! The flicker-module's sysfs interface (paper §4.2).
//!
//! "In the sysfs, the flicker-module makes four entries available:
//! `control`, `inputs`, `outputs`, and `slb`. Applications interact with
//! the flicker-module via these filesystem entries. An application first
//! writes to the slb entry an uninitialized SLB containing its PAL code
//! ... writes any inputs ... initiates the Flicker session by writing to
//! the control entry ... can simply use open and read to obtain the PAL's
//! results."
//!
//! This module reproduces that byte-oriented ABI over the session driver,
//! so application code can be written exactly the way the paper's
//! userspace was.

use crate::error::{FlickerError, FlickerResult};
use crate::session::{run_session, SessionParams, SessionRecord};
use crate::slb::SlbImage;
use flicker_os::Os;

/// Well-known sysfs directory of the flicker-module (documentation value;
/// this simulation addresses entries through [`FlickerSysfs`] directly).
pub const SYSFS_DIR: &str = "/sys/kernel/flicker";

/// The four entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entry {
    /// Write: the uninitialized SLB.
    Slb,
    /// Write: PAL input bytes.
    Inputs,
    /// Write `"go"` (optionally `"go <hex nonce>"`): run the session.
    Control,
    /// Read: PAL output bytes from the last session.
    Outputs,
}

/// Userspace-facing state of the flicker-module.
pub struct FlickerSysfs {
    pending_slb: Option<SlbImage>,
    pending_inputs: Vec<u8>,
    last_outputs: Vec<u8>,
    last_record: Option<SessionRecord>,
    use_hashing_stub: bool,
}

impl Default for FlickerSysfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FlickerSysfs {
    /// A freshly loaded flicker-module.
    pub fn new() -> Self {
        FlickerSysfs {
            pending_slb: None,
            pending_inputs: Vec::new(),
            last_outputs: Vec::new(),
            last_record: None,
            use_hashing_stub: false,
        }
    }

    /// Configures the §7.2 hashing-stub launch path for subsequent
    /// sessions (a module parameter in spirit).
    pub fn set_hashing_stub(&mut self, on: bool) {
        self.use_hashing_stub = on;
    }

    /// `echo <slb> > /sys/kernel/flicker/slb`.
    ///
    /// The simulation transfers a built [`SlbImage`] rather than raw bytes
    /// because native PAL behaviour cannot cross a byte boundary; bytecode
    /// PALs round-trip losslessly.
    pub fn write_slb(&mut self, slb: SlbImage) {
        self.pending_slb = Some(slb);
    }

    /// `echo <data> > /sys/kernel/flicker/inputs`.
    pub fn write_inputs(&mut self, data: &[u8]) -> FlickerResult<()> {
        if data.len() > crate::slb::INPUTS_MAX {
            return Err(FlickerError::SlbBuild("inputs exceed the input region"));
        }
        self.pending_inputs = data.to_vec();
        Ok(())
    }

    /// `echo go > /sys/kernel/flicker/control` — runs the Flicker session.
    ///
    /// Accepted commands: `"go"`, or `"go <40-hex-digit nonce>"` to bind a
    /// verifier nonce into the session.
    pub fn write_control(&mut self, os: &mut Os, command: &str) -> FlickerResult<()> {
        let mut parts = command.split_whitespace();
        let (Some("go"), nonce_part) = (parts.next(), parts.next()) else {
            return Err(FlickerError::Protocol("unknown control command"));
        };
        let nonce = match nonce_part {
            None => [0u8; 20],
            Some(hex) => {
                let bytes = flicker_crypto::hex::decode(hex)
                    .map_err(|_| FlickerError::Protocol("bad nonce hex"))?;
                bytes
                    .try_into()
                    .map_err(|_| FlickerError::Protocol("nonce must be 20 bytes"))?
            }
        };
        let slb = self
            .pending_slb
            .as_ref()
            .ok_or(FlickerError::Protocol("no SLB written"))?
            .clone();
        let params = SessionParams {
            inputs: std::mem::take(&mut self.pending_inputs),
            nonce,
            use_hashing_stub: self.use_hashing_stub,
            ..Default::default()
        };
        let record = run_session(os, &slb, &params)?;
        self.last_outputs = record.outputs.clone();
        self.last_record = Some(record);
        Ok(())
    }

    /// `cat /sys/kernel/flicker/outputs`.
    pub fn read_outputs(&self) -> &[u8] {
        &self.last_outputs
    }

    /// The full record of the last session (the tqd and verifiers want the
    /// PCR values and timings, not just the output bytes).
    pub fn last_record(&self) -> Option<&SessionRecord> {
        self.last_record.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slb::{PalPayload, SlbOptions};
    use flicker_os::OsConfig;

    fn hello_slb() -> SlbImage {
        SlbImage::build(
            PalPayload::Bytecode(flicker_palvm::progs::hello_world()),
            SlbOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn paper_workflow_write_slb_inputs_control_read_outputs() {
        let mut os = Os::boot(OsConfig::fast_for_tests(95));
        let mut fs = FlickerSysfs::new();
        fs.write_slb(hello_slb());
        fs.write_inputs(b"ignored by hello world").unwrap();
        fs.write_control(&mut os, "go").unwrap();
        assert_eq!(fs.read_outputs(), b"Hello, world");
        assert!(fs.last_record().unwrap().pal_result.is_ok());
    }

    #[test]
    fn control_without_slb_fails() {
        let mut os = Os::boot(OsConfig::fast_for_tests(96));
        let mut fs = FlickerSysfs::new();
        assert!(matches!(
            fs.write_control(&mut os, "go"),
            Err(FlickerError::Protocol(_))
        ));
    }

    #[test]
    fn unknown_command_rejected() {
        let mut os = Os::boot(OsConfig::fast_for_tests(97));
        let mut fs = FlickerSysfs::new();
        fs.write_slb(hello_slb());
        assert!(fs.write_control(&mut os, "launch").is_err());
        assert!(fs.write_control(&mut os, "").is_err());
    }

    #[test]
    fn nonce_flows_into_the_session() {
        let mut os = Os::boot(OsConfig::fast_for_tests(98));
        let mut fs = FlickerSysfs::new();
        fs.write_slb(hello_slb());
        let nonce_hex = "aa".repeat(20);
        fs.write_control(&mut os, &format!("go {nonce_hex}"))
            .unwrap();
        let rec = fs.last_record().unwrap();
        // The nonce participates in the terminal chain: recompute.
        let expected = crate::attest::expected_pcr17_final(&crate::attest::ExpectedSession {
            slb: &hello_slb(),
            slb_base: crate::session::DEFAULT_SLB_BASE,
            inputs: &[],
            outputs: &rec.outputs,
            nonce: [0xAA; 20],
            used_hashing_stub: false,
        });
        assert_eq!(rec.pcr17_final, expected);
    }

    #[test]
    fn bad_nonce_rejected() {
        let mut os = Os::boot(OsConfig::fast_for_tests(99));
        let mut fs = FlickerSysfs::new();
        fs.write_slb(hello_slb());
        assert!(fs.write_control(&mut os, "go zz").is_err());
        assert!(fs.write_control(&mut os, "go abcd").is_err(), "too short");
    }

    #[test]
    fn inputs_cleared_after_session() {
        let mut os = Os::boot(OsConfig::fast_for_tests(100));
        let mut fs = FlickerSysfs::new();
        fs.write_slb(hello_slb());
        fs.write_inputs(b"one-shot").unwrap();
        fs.write_control(&mut os, "go").unwrap();
        // Second session without rewriting inputs: empty inputs.
        fs.write_control(&mut os, "go").unwrap();
        assert_eq!(fs.read_outputs(), b"Hello, world");
    }

    #[test]
    fn oversized_inputs_rejected_at_write() {
        let mut fs = FlickerSysfs::new();
        assert!(fs.write_inputs(&vec![0u8; 0x1000]).is_err());
    }
}
