//! The Secure Loader Block: layout, builder, and measurement prediction.
//!
//! Reproduces Figure 3 of the paper. An SLB is at most 64 KB; its first two
//! 16-bit words are its length and entry point (paper §2.4). The SLB Core
//! occupies the front (skeleton GDT/TSS that the flicker-module patches,
//! init/exit code); the PAL follows, ending by 60 KB; the last 4 KB is
//! stack space. Parameters live *above* the measured 64 KB window:
//!
//! ```text
//! slb_base + 0x00000 .. 0x10000   the measured SLB (DEV-protected)
//! slb_base + 0x10000 .. 0x11000   PAL inputs ‖ saved kernel state
//! slb_base + 0x11000 .. 0x12000   PAL outputs ("the second 4-KB page
//!                                  above the 64-KB SLB", §5.1.1)
//! ```

use crate::error::{FlickerError, FlickerResult};
use flicker_crypto::sha1::sha1;
use flicker_palvm::Program;
use flicker_tpm::PcrBank;
use std::sync::Arc;

/// Maximum SLB size (64 KB).
pub const SLB_MAX: usize = 64 * 1024;
/// PAL code must end by this offset (Figure 3: "End of PAL (Start + 60KB)").
pub const PAL_END: usize = 60 * 1024;
/// Stack region size at the top of the SLB.
pub const STACK_SIZE: usize = 4 * 1024;
/// Offset of the input page relative to `slb_base`.
pub const INPUTS_OFFSET: u64 = 0x10000;
/// Offset within the input page where saved kernel state is stashed.
pub const SAVED_STATE_OFFSET: u64 = 0x10000 + 0xE00;
/// Offset of the output page relative to `slb_base`.
pub const OUTPUTS_OFFSET: u64 = 0x11000;
/// Capacity of the input region (up to the saved-state stash).
pub const INPUTS_MAX: usize = 0xE00;
/// Capacity of the output region: the 4 KB output page minus the 4-byte
/// little-endian length header the session driver writes at its front. A
/// PAL that filled all 0x1000 bytes would otherwise push the last 4 bytes
/// past the page into the overflow region.
pub const OUTPUTS_MAX: usize = 0x1000 - 4;

/// Offset (from `slb_base`) of the overflow region used by large PALs:
/// directly above the two parameter pages (paper §4.2: DEV protection "can
/// be extended to larger memory regions" by preparatory code that also
/// measures them into PCR 17).
pub const OVERFLOW_OFFSET: u64 = 0x12000;
/// Maximum total image size for a large PAL (the overflow region's cap;
/// generous, and bounded only by the DEV/measurement cost model).
pub const LARGE_PAL_MAX: usize = 192 * 1024;

/// Size of the SLB Core's fixed region (header + skeleton GDT/TSS + code).
/// The paper's SLB Core is 94 LoC / 312 B (Figure 6); we reserve a round
/// 512 B including header and patch slots.
pub const SLB_CORE_SIZE: usize = 512;

/// Offset of the flicker-module's patch slot (the GDT base fields computed
/// from `slb_base` once the kernel allocates the SLB — paper §4.2
/// "Initialize the SLB").
pub const PATCH_SLOT_OFFSET: usize = 16;

/// The measured SLB-core code bytes (a stand-in for the 312-byte x86 SLB
/// Core; versioned so measurement changes if the "code" changes).
const SLB_CORE_CODE: &[u8] = b"FLICKER-SLB-CORE v1.0; init:gdt,tss,cs/ds/ss,call-pal; \
exit:cleanse,extend17(io,nonce,cap),callgate,paging,resume; (c) reproduction";

/// How the PAL's behaviour is expressed.
#[derive(Clone)]
pub enum PalPayload {
    /// PalVM bytecode: the measured bytes fully determine behaviour.
    Bytecode(Program),
    /// A native Rust PAL: `identity` bytes are measured, and the behaviour
    /// is the `program` trait object. The identity-to-behaviour binding is
    /// by construction here (a simulation concession; bytecode PALs do not
    /// need it — see DESIGN.md).
    Native {
        /// Measured identity manifest (name, version, parameters).
        identity: Vec<u8>,
        /// The behaviour.
        program: Arc<dyn crate::pal::NativePal>,
    },
}

impl PalPayload {
    /// The bytes that go into the measured SLB.
    pub fn measured_bytes(&self) -> &[u8] {
        match self {
            PalPayload::Bytecode(p) => &p.code,
            PalPayload::Native { identity, .. } => identity,
        }
    }
}

impl core::fmt::Debug for PalPayload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PalPayload::Bytecode(p) => write!(f, "PalPayload::Bytecode({} insns)", p.len()),
            PalPayload::Native { identity, .. } => write!(
                f,
                "PalPayload::Native({:?})",
                String::from_utf8_lossy(identity)
            ),
        }
    }
}

/// Options for SLB construction.
#[derive(Debug, Clone)]
pub struct SlbOptions {
    /// Run the PAL in ring 3 with segment limits (the OS-Protection module
    /// of paper §5.1.2). Without it, the PAL runs in ring 0 with flat
    /// segments and can touch all physical memory.
    pub os_protection: bool,
    /// Limit on PAL-executed instructions (the SLB Core's timing
    /// restriction hook); `None` = the driver default.
    pub fuel: Option<u64>,
    /// Wall-time bound on PAL execution (the §5.1.2 "techniques to limit
    /// a PAL's execution time using timer interrupts"). For bytecode PALs
    /// this converts to an instruction budget at the modelled execution
    /// rate; a native PAL that exceeds it is reported as faulted after
    /// the fact (native code cannot be preempted in this simulation).
    pub time_limit: Option<std::time::Duration>,
}

impl Default for SlbOptions {
    fn default() -> Self {
        SlbOptions {
            os_protection: true,
            fuel: None,
            time_limit: None,
        }
    }
}

/// A built SLB ready to hand to the flicker-module.
#[derive(Debug, Clone)]
pub struct SlbImage {
    bytes: Vec<u8>,
    payload: PalPayload,
    /// Offset of the PAL payload within the image.
    pal_offset: usize,
    /// Construction options (consumed by the session driver).
    pub options: SlbOptions,
}

impl SlbImage {
    /// Builds an SLB from a PAL payload.
    ///
    /// Bytecode payloads are statically verified first (memory bounds,
    /// termination, hypercall discipline, stack hygiene — see
    /// `flicker-verifier`); a rejected program never reaches SKINIT.
    /// Native payloads carry only an identity manifest, so there is
    /// nothing to analyze — their containment is the OS-Protection
    /// module's job at run time.
    ///
    /// Layout: `[len:u16][entry:u16][patch slot][SLB core code][PAL]`.
    pub fn build(payload: PalPayload, options: SlbOptions) -> FlickerResult<Self> {
        if let PalPayload::Bytecode(prog) = &payload {
            let verdict = flicker_verifier::verify_program(prog);
            if !verdict.is_ok() {
                return Err(FlickerError::Verification(
                    verdict.errors.iter().map(|e| e.to_string()).collect(),
                ));
            }
        }
        Self::build_unverified(payload, options)
    }

    /// Builds an SLB *without* static verification — the escape hatch the
    /// adversarial tests use to get known-bad bytecode past the builder
    /// and demonstrate that the run-time defences (segment limits, fuel)
    /// contain it anyway. Production callers should use [`SlbImage::build`].
    pub fn build_unverified(payload: PalPayload, options: SlbOptions) -> FlickerResult<Self> {
        let pal_bytes = payload.measured_bytes();
        let pal_offset = SLB_CORE_SIZE;
        let total = pal_offset + pal_bytes.len();
        if total > LARGE_PAL_MAX {
            return Err(FlickerError::SlbBuild("PAL exceeds the large-PAL cap"));
        }
        if pal_bytes.is_empty() {
            return Err(FlickerError::SlbBuild("empty PAL"));
        }

        let mut bytes = vec![0u8; total];
        // The header's length field is what SKINIT measures directly; for a
        // large PAL only the first 60 KB fits the measured window and the
        // remainder is covered by the preparatory (stub) code's DEV
        // extension + PCR 17 measurement (paper §4.2).
        let header_len = total.min(PAL_END) as u16;
        bytes[0..2].copy_from_slice(&header_len.to_le_bytes());
        // Entry point: the SLB Core's init code, directly after the header
        // and patch slot.
        let entry = (PATCH_SLOT_OFFSET + 8) as u16;
        bytes[2..4].copy_from_slice(&entry.to_le_bytes());
        // Patch slot zeroed at build time; the flicker-module writes
        // slb_base here before SKINIT.
        let core_code_region = &mut bytes[PATCH_SLOT_OFFSET + 8..SLB_CORE_SIZE];
        let n = SLB_CORE_CODE.len().min(core_code_region.len());
        core_code_region[..n].copy_from_slice(&SLB_CORE_CODE[..n]);
        bytes[pal_offset..].copy_from_slice(pal_bytes);

        Ok(SlbImage {
            bytes,
            payload,
            pal_offset,
            options,
        })
    }

    /// The unpatched image bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total image length.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if empty (never, for a built image).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The PAL payload.
    pub fn payload(&self) -> &PalPayload {
        &self.payload
    }

    /// Offset of the PAL within the image.
    pub fn pal_offset(&self) -> usize {
        self.pal_offset
    }

    /// Bytes of the image beyond the 60 KB in-window code region — the part
    /// a large PAL places in the overflow region (zero for ordinary PALs).
    pub fn overflow_len(&self) -> usize {
        self.bytes.len().saturating_sub(PAL_END)
    }

    /// True if this image needs the large-PAL launch path.
    pub fn is_large(&self) -> bool {
        self.overflow_len() > 0
    }

    /// The image as it will be measured once loaded at `slb_base` — i.e.
    /// with the flicker-module's address patch applied (paper §4.2: the
    /// skeleton GDT/TSS entries depend on the allocation address, so the
    /// measured bytes do too).
    pub fn patched_bytes(&self, slb_base: u64) -> Vec<u8> {
        let mut out = self.bytes.clone();
        out[PATCH_SLOT_OFFSET..PATCH_SLOT_OFFSET + 8].copy_from_slice(&slb_base.to_le_bytes());
        out
    }

    /// SHA-1 of the patched image: the measurement `SKINIT` will extend
    /// into PCR 17.
    pub fn measurement(&self, slb_base: u64) -> [u8; 20] {
        sha1(&self.patched_bytes(slb_base))
    }

    /// The PCR 17 value immediately after `SKINIT` launches this SLB at
    /// `slb_base`: `H(0^20 ‖ H(SLB))` (paper §4.3.1 / §4.4.1).
    pub fn expected_pcr17_after_skinit(&self, slb_base: u64) -> [u8; 20] {
        PcrBank::predict_skinit_pcr17(&self.measurement(slb_base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pal::NativePal;
    use crate::pal::PalContext;

    struct Nop;
    impl NativePal for Nop {
        fn run(&self, _ctx: &mut PalContext<'_>) -> FlickerResult<()> {
            Ok(())
        }
    }

    fn native(identity: &[u8]) -> PalPayload {
        PalPayload::Native {
            identity: identity.to_vec(),
            program: Arc::new(Nop),
        }
    }

    #[test]
    fn builds_with_header_and_entry() {
        let slb = SlbImage::build(native(b"pal-v1"), SlbOptions::default()).unwrap();
        let len = u16::from_le_bytes(slb.bytes()[0..2].try_into().unwrap()) as usize;
        assert_eq!(len, slb.len());
        let entry = u16::from_le_bytes(slb.bytes()[2..4].try_into().unwrap()) as usize;
        assert!(entry < len);
        assert_eq!(slb.pal_offset(), SLB_CORE_SIZE);
        assert_eq!(&slb.bytes()[SLB_CORE_SIZE..], b"pal-v1");
    }

    #[test]
    fn size_classes() {
        // Fits in the window: not large.
        let ok = vec![0xAA; PAL_END - SLB_CORE_SIZE];
        let slb = SlbImage::build(native(&ok), SlbOptions::default()).unwrap();
        assert!(!slb.is_large());
        assert_eq!(slb.overflow_len(), 0);
        // Exceeds the window: large, with the right overflow size.
        let big = vec![0xAA; PAL_END];
        let slb = SlbImage::build(native(&big), SlbOptions::default()).unwrap();
        assert!(slb.is_large());
        assert_eq!(slb.overflow_len(), SLB_CORE_SIZE);
        // Beyond the cap: rejected.
        let huge = vec![0xAA; LARGE_PAL_MAX];
        assert!(matches!(
            SlbImage::build(native(&huge), SlbOptions::default()),
            Err(FlickerError::SlbBuild(_))
        ));
    }

    #[test]
    fn rejects_empty_pal() {
        assert!(matches!(
            SlbImage::build(native(b""), SlbOptions::default()),
            Err(FlickerError::SlbBuild(_))
        ));
    }

    #[test]
    fn measurement_depends_on_pal_and_base() {
        let a = SlbImage::build(native(b"pal-A"), SlbOptions::default()).unwrap();
        let b = SlbImage::build(native(b"pal-B"), SlbOptions::default()).unwrap();
        assert_ne!(a.measurement(0x10_0000), b.measurement(0x10_0000));
        // The address patch is part of the measured bytes.
        assert_ne!(a.measurement(0x10_0000), a.measurement(0x20_0000));
        // Deterministic.
        assert_eq!(a.measurement(0x10_0000), a.measurement(0x10_0000));
    }

    #[test]
    fn patch_slot_is_only_difference() {
        let slb = SlbImage::build(native(b"pal"), SlbOptions::default()).unwrap();
        let p1 = slb.patched_bytes(0x10_0000);
        let p2 = slb.patched_bytes(0x20_0000);
        let diffs: Vec<usize> = (0..p1.len()).filter(|&i| p1[i] != p2[i]).collect();
        assert!(!diffs.is_empty());
        assert!(diffs
            .iter()
            .all(|&i| (PATCH_SLOT_OFFSET..PATCH_SLOT_OFFSET + 8).contains(&i)));
    }

    #[test]
    fn slb_core_code_is_in_the_image() {
        let slb = SlbImage::build(native(b"pal"), SlbOptions::default()).unwrap();
        let hay = slb.bytes();
        assert!(hay.windows(20).any(|w| w == &SLB_CORE_CODE[..20]));
    }

    #[test]
    fn bytecode_payload_measures_program_bytes() {
        let prog = flicker_palvm::progs::hello_world();
        let code = prog.code.clone();
        let slb = SlbImage::build(PalPayload::Bytecode(prog), SlbOptions::default()).unwrap();
        assert_eq!(&slb.bytes()[slb.pal_offset()..], &code[..]);
    }

    #[test]
    fn build_rejects_unverifiable_bytecode() {
        // The kernel-memory scanner is provably out of the parameter
        // window; `build` must refuse it with per-check diagnostics.
        let prog = flicker_palvm::progs::memory_scanner(0x30_0000, 64);
        let err =
            SlbImage::build(PalPayload::Bytecode(prog.clone()), SlbOptions::default()).unwrap_err();
        match err {
            FlickerError::Verification(diags) => {
                assert!(!diags.is_empty());
                assert!(
                    diags.iter().any(|d| d.contains("memory-bounds")),
                    "{diags:?}"
                );
            }
            other => panic!("expected Verification, got {other:?}"),
        }
        // The escape hatch still builds it, for the adversarial tests.
        SlbImage::build_unverified(PalPayload::Bytecode(prog), SlbOptions::default()).unwrap();
    }

    #[test]
    fn build_accepts_verified_bytecode() {
        for prog in [
            flicker_palvm::progs::hello_world(),
            flicker_palvm::progs::trial_division(),
            flicker_palvm::progs::kernel_hasher(),
        ] {
            SlbImage::build(PalPayload::Bytecode(prog), SlbOptions::default()).unwrap();
        }
    }

    #[test]
    fn verifier_config_matches_slb_layout() {
        // The verifier's model of the parameter window must agree with
        // the real layout, or its proofs say nothing about this SLB.
        let cfg = flicker_verifier::VerifierConfig::default();
        assert_eq!(u64::from(cfg.inputs_base), INPUTS_OFFSET);
        assert_eq!(u64::from(cfg.outputs_base), OUTPUTS_OFFSET);
        assert_eq!(cfg.inputs_max as usize, INPUTS_MAX);
        assert_eq!(cfg.outputs_max as usize, OUTPUTS_MAX);
        assert_eq!(u64::from(cfg.window_end), OVERFLOW_OFFSET);
        assert_eq!(cfg.call_stack_max, flicker_palvm::CALL_STACK_MAX as u32);
    }

    #[test]
    fn layout_constants_match_figure3() {
        // Inputs page directly above the 64 KB window; outputs the page
        // after ("second 4-KB page above the 64-KB SLB").
        assert_eq!(INPUTS_OFFSET, 0x10000);
        assert_eq!(OUTPUTS_OFFSET, 0x11000);
        assert_eq!(SLB_MAX, 0x10000);
        const { assert!(PAL_END + STACK_SIZE <= SLB_MAX) };
        // Length header + maximal output must fit the single output page.
        const { assert!(4 + OUTPUTS_MAX <= 0x1000) };
        const { assert!(OUTPUTS_OFFSET + 0x1000 == OVERFLOW_OFFSET) };
    }
}
