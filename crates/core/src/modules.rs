//! The PAL module inventory (paper Figure 6).
//!
//! Flicker's TCB argument is quantitative: the mandatory SLB Core is 94
//! lines, and each optional module a PAL links adds a known amount. This
//! module records the paper's inventory and maps each entry to the part of
//! this reproduction that implements it, so the `module_inventory` bench
//! target can regenerate the figure side by side.

/// One row of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleInfo {
    /// Module name as in the paper.
    pub name: &'static str,
    /// The paper's one-line description.
    pub properties: &'static str,
    /// Lines of code reported by the paper.
    pub paper_loc: u32,
    /// Binary size in KB reported by the paper.
    pub paper_size_kb: f64,
    /// Whether every PAL must include it.
    pub mandatory: bool,
    /// Where this reproduction implements the same functionality.
    pub repro_path: &'static str,
}

/// The Figure 6 inventory.
pub fn paper_inventory() -> Vec<ModuleInfo> {
    vec![
        ModuleInfo {
            name: "SLB Core",
            properties: "Prepare environment, execute PAL, clean environment, resume OS",
            paper_loc: 94,
            paper_size_kb: 0.312,
            mandatory: true,
            repro_path: "flicker-core::session (SLB-Core phases) + flicker-core::slb",
        },
        ModuleInfo {
            name: "OS Protection",
            properties: "Memory protection, ring 3 PAL execution",
            paper_loc: 5,
            paper_size_kb: 0.046,
            mandatory: false,
            repro_path: "flicker-core::pal (segment-limited ring-3 PalContext)",
        },
        ModuleInfo {
            name: "TPM Driver",
            properties: "Communication with the TPM",
            paper_loc: 216,
            paper_size_kb: 0.825,
            mandatory: false,
            repro_path: "flicker-core::pal::PalContext::tpm_op (+ flicker-tpm command layer)",
        },
        ModuleInfo {
            name: "TPM Utilities",
            properties: "Performs TPM operations, e.g., Seal, Unseal, GetRand, PCR Extend",
            paper_loc: 889,
            paper_size_kb: 9.427,
            mandatory: false,
            repro_path: "flicker-core::pal seal/unseal/extend helpers + flicker-tpm::auth",
        },
        ModuleInfo {
            name: "Crypto",
            properties: "General purpose cryptographic operations, RSA, SHA-1, SHA-512 etc.",
            paper_loc: 2262,
            paper_size_kb: 31.380,
            mandatory: false,
            repro_path: "flicker-crypto (all modules)",
        },
        ModuleInfo {
            name: "Memory Management",
            properties: "Implementation of malloc/free/realloc",
            paper_loc: 657,
            paper_size_kb: 12.511,
            mandatory: false,
            repro_path: "flicker-core::heap::PalHeap",
        },
        ModuleInfo {
            name: "Secure Channel",
            properties: "Generates a keypair, seals private key, returns public key",
            paper_loc: 292,
            paper_size_kb: 2.021,
            mandatory: false,
            repro_path: "flicker-core::secure_channel",
        },
    ]
}

/// The paper's headline TCB bound: "as few as 250 lines".
pub const MINIMAL_TCB_LOC_BOUND: u32 = 250;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_figure6() {
        let inv = paper_inventory();
        assert_eq!(inv.len(), 7);
        let slb_core = &inv[0];
        assert_eq!(slb_core.paper_loc, 94);
        assert!(slb_core.mandatory);
        assert!(inv[1..].iter().all(|m| !m.mandatory));
        let total_loc: u32 = inv.iter().map(|m| m.paper_loc).sum();
        assert_eq!(total_loc, 94 + 5 + 216 + 889 + 2262 + 657 + 292);
    }

    #[test]
    fn minimal_tcb_under_250_lines() {
        // The abstract's claim: SLB Core (mandatory) + OS Protection +
        // (part of) the TPM driver fit in 250 lines; in particular the
        // mandatory core alone is well under it.
        let inv = paper_inventory();
        let mandatory: u32 = inv
            .iter()
            .filter(|m| m.mandatory)
            .map(|m| m.paper_loc)
            .sum();
        assert!(mandatory < MINIMAL_TCB_LOC_BOUND);
        // Core + OS protection + a minimal detector-style PAL stays under too.
        assert!(mandatory + 5 + 100 < MINIMAL_TCB_LOC_BOUND);
    }
}
