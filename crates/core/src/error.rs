//! Flicker-core error types.

use flicker_machine::MachineError;
use flicker_tpm::TpmError;

/// Result alias for Flicker operations.
pub type FlickerResult<T> = Result<T, FlickerError>;

/// Errors raised by the Flicker infrastructure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlickerError {
    /// SLB construction constraint violated (sizes, layout).
    SlbBuild(&'static str),
    /// The machine rejected or faulted an operation.
    Machine(MachineError),
    /// The TPM rejected an operation.
    Tpm(TpmError),
    /// The PAL faulted (memory violation, VM fault, explicit abort).
    PalFault(String),
    /// PAL output exceeded the output region.
    OutputOverflow {
        /// Bytes the PAL tried to emit.
        len: usize,
        /// Region capacity.
        capacity: usize,
    },
    /// An attestation failed verification.
    Attestation(&'static str),
    /// Replay-protected storage detected a stale or desynchronized
    /// ciphertext (paper Figure 4's ⊥ outcome).
    ReplayDetected {
        /// Counter value inside the unsealed data.
        sealed_version: u64,
        /// Current secure-counter value.
        counter: u64,
    },
    /// A protocol message was malformed.
    Protocol(&'static str),
    /// The static verifier rejected a bytecode PAL at SLB build time;
    /// each string is one diagnostic (`[check] insn …: reason`).
    Verification(Vec<String>),
}

impl From<MachineError> for FlickerError {
    fn from(e: MachineError) -> Self {
        FlickerError::Machine(e)
    }
}

impl From<TpmError> for FlickerError {
    fn from(e: TpmError) -> Self {
        FlickerError::Tpm(e)
    }
}

impl core::fmt::Display for FlickerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlickerError::SlbBuild(s) => write!(f, "SLB build error: {s}"),
            FlickerError::Machine(e) => write!(f, "machine: {e}"),
            FlickerError::Tpm(e) => write!(f, "tpm: {e}"),
            FlickerError::PalFault(s) => write!(f, "PAL fault: {s}"),
            FlickerError::OutputOverflow { len, capacity } => {
                write!(
                    f,
                    "PAL output of {len} bytes exceeds {capacity}-byte region"
                )
            }
            FlickerError::Attestation(s) => write!(f, "attestation failed: {s}"),
            FlickerError::ReplayDetected {
                sealed_version,
                counter,
            } => write!(
                f,
                "replay detected: sealed version {sealed_version}, counter {counter}"
            ),
            FlickerError::Protocol(s) => write!(f, "protocol error: {s}"),
            FlickerError::Verification(diags) => {
                write!(f, "PAL failed static verification ({} error", diags.len())?;
                if diags.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for FlickerError {}
