//! The Memory Management module: `malloc`/`free`/`realloc` over a fixed
//! buffer.
//!
//! Paper Figure 6 lists a 657-LoC "Memory Management" module: "a small
//! version of malloc/free/realloc for use by applications. The memory
//! region used as the heap is simply a large global buffer." This is that
//! allocator: a first-fit free-list over a caller-supplied arena, with
//! coalescing on free. PALs that need dynamic allocation link it in; ones
//! that do not keep it out of their TCB.

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// No free block large enough.
    OutOfMemory,
    /// `free`/`realloc` of a pointer that is not a live allocation.
    InvalidPointer(u32),
}

impl core::fmt::Display for HeapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HeapError::OutOfMemory => write!(f, "PAL heap exhausted"),
            HeapError::InvalidPointer(p) => write!(f, "invalid heap pointer {p:#x}"),
        }
    }
}

impl std::error::Error for HeapError {}

const ALIGN: u32 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    offset: u32,
    len: u32,
    free: bool,
}

/// A first-fit allocator over a PAL-owned arena.
///
/// Pointers are offsets into the arena; the arena bytes themselves live in
/// the PAL's memory region (the "large global buffer").
#[derive(Debug, Clone)]
pub struct PalHeap {
    capacity: u32,
    blocks: Vec<Block>,
}

impl PalHeap {
    /// An empty heap over `capacity` bytes.
    pub fn new(capacity: u32) -> Self {
        PalHeap {
            capacity,
            blocks: vec![Block {
                offset: 0,
                len: capacity,
                free: true,
            }],
        }
    }

    fn round_up(len: u32) -> u32 {
        len.div_ceil(ALIGN) * ALIGN
    }

    /// Allocates `len` bytes; returns the arena offset.
    pub fn malloc(&mut self, len: u32) -> Result<u32, HeapError> {
        let len = Self::round_up(len.max(1));
        let idx = self
            .blocks
            .iter()
            .position(|b| b.free && b.len >= len)
            .ok_or(HeapError::OutOfMemory)?;
        let block = self.blocks[idx];
        if block.len > len {
            // Split.
            self.blocks[idx] = Block {
                offset: block.offset,
                len,
                free: false,
            };
            self.blocks.insert(
                idx + 1,
                Block {
                    offset: block.offset + len,
                    len: block.len - len,
                    free: true,
                },
            );
        } else {
            self.blocks[idx].free = false;
        }
        Ok(block.offset)
    }

    /// Frees an allocation, coalescing with free neighbours.
    pub fn free(&mut self, ptr: u32) -> Result<(), HeapError> {
        let idx = self
            .blocks
            .iter()
            .position(|b| b.offset == ptr && !b.free)
            .ok_or(HeapError::InvalidPointer(ptr))?;
        self.blocks[idx].free = true;
        // Coalesce with the next block.
        if idx + 1 < self.blocks.len() && self.blocks[idx + 1].free {
            self.blocks[idx].len += self.blocks[idx + 1].len;
            self.blocks.remove(idx + 1);
        }
        // Coalesce with the previous block.
        if idx > 0 && self.blocks[idx - 1].free {
            self.blocks[idx - 1].len += self.blocks[idx].len;
            self.blocks.remove(idx);
        }
        Ok(())
    }

    /// Resizes an allocation, possibly moving it. Returns the new offset.
    pub fn realloc(&mut self, ptr: u32, new_len: u32) -> Result<u32, HeapError> {
        let idx = self
            .blocks
            .iter()
            .position(|b| b.offset == ptr && !b.free)
            .ok_or(HeapError::InvalidPointer(ptr))?;
        let old = self.blocks[idx];
        let want = Self::round_up(new_len.max(1));
        if want <= old.len {
            return Ok(ptr); // shrink in place (no split for simplicity)
        }
        // Allocate-new / free-old; data copying is the caller's concern
        // since the bytes live in PAL memory.
        let new_ptr = self.malloc(new_len)?;
        self.free(ptr).expect("old pointer was live");
        Ok(new_ptr)
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u32 {
        self.blocks.iter().filter(|b| b.free).map(|b| b.len).sum()
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.blocks.iter().filter(|b| !b.free).count()
    }

    /// Arena capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn malloc_free_round_trip() {
        let mut h = PalHeap::new(1024);
        let a = h.malloc(100).unwrap();
        let b = h.malloc(200).unwrap();
        assert_ne!(a, b);
        assert_eq!(h.live_allocations(), 2);
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.free_bytes(), 1024);
        assert_eq!(h.blocks.len(), 1, "fully coalesced");
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut h = PalHeap::new(4096);
        let ptrs: Vec<(u32, u32)> = (1..20u32)
            .map(|i| (h.malloc(i * 7).unwrap(), i * 7))
            .collect();
        for (i, &(p1, l1)) in ptrs.iter().enumerate() {
            for &(p2, l2) in &ptrs[i + 1..] {
                assert!(p1 + PalHeap::round_up(l1) <= p2 || p2 + PalHeap::round_up(l2) <= p1);
            }
        }
    }

    #[test]
    fn out_of_memory() {
        let mut h = PalHeap::new(128);
        assert_eq!(h.malloc(256), Err(HeapError::OutOfMemory));
        let _ = h.malloc(64).unwrap();
        let _ = h.malloc(64).unwrap();
        assert_eq!(h.malloc(1), Err(HeapError::OutOfMemory));
    }

    #[test]
    fn double_free_rejected() {
        let mut h = PalHeap::new(128);
        let p = h.malloc(16).unwrap();
        h.free(p).unwrap();
        assert_eq!(h.free(p), Err(HeapError::InvalidPointer(p)));
    }

    #[test]
    fn free_of_garbage_rejected() {
        let mut h = PalHeap::new(128);
        let _ = h.malloc(16).unwrap();
        assert_eq!(h.free(3), Err(HeapError::InvalidPointer(3)));
    }

    #[test]
    fn freed_space_is_reused() {
        let mut h = PalHeap::new(128);
        let a = h.malloc(64).unwrap();
        let _b = h.malloc(64).unwrap();
        h.free(a).unwrap();
        let c = h.malloc(32).unwrap();
        assert_eq!(c, a, "first-fit reuses the hole");
    }

    #[test]
    fn realloc_grow_moves_when_needed() {
        let mut h = PalHeap::new(1024);
        let a = h.malloc(64).unwrap();
        let _b = h.malloc(64).unwrap(); // blocks in-place growth
        let a2 = h.realloc(a, 128).unwrap();
        assert_ne!(a, a2);
        assert_eq!(h.live_allocations(), 2);
    }

    #[test]
    fn realloc_shrink_in_place() {
        let mut h = PalHeap::new(1024);
        let a = h.malloc(128).unwrap();
        assert_eq!(h.realloc(a, 64).unwrap(), a);
    }

    #[test]
    fn alignment_maintained() {
        let mut h = PalHeap::new(1024);
        for len in [1u32, 3, 7, 9, 15, 17] {
            let p = h.malloc(len).unwrap();
            assert_eq!(p % ALIGN, 0, "allocation of {len} at {p}");
        }
    }

    proptest! {
        /// Random malloc/free sequences never corrupt the block list:
        /// blocks stay sorted, contiguous, and sum to capacity.
        #[test]
        fn prop_block_list_invariants(ops in proptest::collection::vec(any::<(bool, u8)>(), 1..200)) {
            let mut h = PalHeap::new(4096);
            let mut live: Vec<u32> = Vec::new();
            for (is_alloc, size) in ops {
                if is_alloc || live.is_empty() {
                    if let Ok(p) = h.malloc(size as u32 + 1) {
                        live.push(p);
                    }
                } else {
                    let p = live.swap_remove((size as usize) % live.len());
                    h.free(p).unwrap();
                }
                // Invariants.
                let mut cursor = 0u32;
                for b in &h.blocks {
                    prop_assert_eq!(b.offset, cursor);
                    prop_assert!(b.len > 0);
                    cursor += b.len;
                }
                prop_assert_eq!(cursor, 4096);
                prop_assert_eq!(h.live_allocations(), live.len());
            }
        }
    }
}
