//! The Flicker session driver: flicker-module + SLB Core.
//!
//! Implements the full timeline of paper Figure 2:
//!
//! ```text
//! accept SLB & inputs → initialize (patch) SLB → suspend OS → SKINIT
//!   → SLB Core init → execute PAL → cleanup (erase secrets)
//!   → extend PCR 17 (I/O, nonce, terminator) → resume OS → return outputs
//! ```
//!
//! The *flicker-module* half (everything outside the SKINIT window) is
//! untrusted: it moves bytes and flips switches, and nothing in the
//! attestation story depends on it behaving. The *SLB Core* half (from
//! SKINIT to resume) is the measured 250-line TCB; its observable actions
//! here are exactly the ones the paper's §4.2 describes.

use crate::attest::{io_measurement, TERMINATOR};
use crate::error::{FlickerError, FlickerResult};
use crate::pal::{vm_regs, PalContext, VmBusAdapter};
use crate::slb::{
    PalPayload, SlbImage, INPUTS_MAX, INPUTS_OFFSET, OUTPUTS_OFFSET, OVERFLOW_OFFSET,
    SAVED_STATE_OFFSET, SLB_MAX,
};
use flicker_machine::{SimClock, Stopwatch};
use flicker_os::Os;
use flicker_palvm::NUM_REGS;
use flicker_trace::{EventKind, OpEvent, SpanId, Trace};
use std::time::Duration;

/// Default physical address where the flicker-module allocates SLBs (fixed
/// by convention so verifiers can predict the patched measurement).
pub const DEFAULT_SLB_BASE: u64 = 0x10_0000;

/// Extent of the OS-allocated region: the 64 KB SLB plus the two parameter
/// pages.
pub const REGION_LEN: u32 = (SLB_MAX + 0x2000) as u32;

/// Size of the §7.2 hashing-stub SLB (measured value from the paper).
pub const HASHING_STUB_SIZE: usize = 4736;

/// Default instruction budget for bytecode PALs.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// Modelled PalVM execution rate on the paper's hardware, used to convert
/// an `SlbOptions::time_limit` into an instruction budget (a simple
/// interpreter on a 2.2 GHz core executes ~50 M bytecode insns/s).
pub const VM_INSNS_PER_SEC: u64 = 50_000_000;

/// Modelled flicker-module overhead on each side of the session (state
/// save/restore, sysfs traffic).
const SUSPEND_COST: Duration = Duration::from_micros(500);
const RESUME_COST: Duration = Duration::from_micros(500);
/// Modelled SLB Core initialization (GDT/TSS load, segment setup).
const SLBCORE_INIT_COST: Duration = Duration::from_micros(20);

/// Parameters of one Flicker session.
#[derive(Debug, Clone)]
pub struct SessionParams {
    /// Where the flicker-module allocates the SLB.
    pub slb_base: u64,
    /// PAL inputs (copied to the input page).
    pub inputs: Vec<u8>,
    /// Verifier-supplied nonce, extended into PCR 17 with the results
    /// (paper §4.4.1); all-zero when no remote party is involved.
    pub nonce: [u8; 20],
    /// Launch through the 4 736-byte hashing-stub SLB (§7.2 optimisation).
    pub use_hashing_stub: bool,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            slb_base: DEFAULT_SLB_BASE,
            inputs: Vec::new(),
            nonce: [0u8; 20],
            use_hashing_stub: false,
        }
    }
}

impl SessionParams {
    /// Parameters with the given inputs, defaults otherwise.
    pub fn with_inputs(inputs: Vec<u8>) -> Self {
        SessionParams {
            inputs,
            ..Default::default()
        }
    }
}

/// Per-phase virtual-time breakdown (the paper's Table 1 / Figure 9 rows).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionTimings {
    /// Suspend OS (flicker-module).
    pub suspend: Duration,
    /// The `SKINIT` instruction itself.
    pub skinit: Duration,
    /// Hashing-stub measurement of the full window (zero without the stub).
    pub stub_measure: Duration,
    /// PAL execution (application logic including its TPM ops).
    pub pal: Duration,
    /// Cleanup + terminal PCR extends.
    pub cleanup: Duration,
    /// Resume OS.
    pub resume: Duration,
    /// End-to-end session time.
    pub total: Duration,
}

/// Everything a completed session yields.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// PAL outputs (also written to the output page for the OS).
    pub outputs: Vec<u8>,
    /// `Ok` or the PAL's fault, stringified. A faulting PAL still gets
    /// cleanup, terminal extends, and OS resume.
    pub pal_result: Result<(), String>,
    /// SHA-1 of the measured SLB (what SKINIT hashed).
    pub slb_measurement: [u8; 20],
    /// PCR 17 right after `SKINIT` (and stub measurement, if used).
    pub pcr17_entry: [u8; 20],
    /// PCR 17 after the terminal extends — what a quote will show.
    pub pcr17_final: [u8; 20],
    /// Phase timings on the virtual clock.
    pub timings: SessionTimings,
    /// Per-operation timing events from the PAL's context (TPM commands
    /// and charged crypto helpers, in execution order).
    pub ops: Vec<OpEvent>,
}

impl SessionRecord {
    /// The op events as `(operation, simulated duration)` tuples — the
    /// historical shape of this record's log, kept as a view for harness
    /// code that only cares about name + duration.
    pub fn op_log(&self) -> Vec<(&'static str, Duration)> {
        self.ops.iter().map(|e| (e.name, e.duration)).collect()
    }
}

/// The Figure-2 phase names under which [`run_session`] opens one trace
/// span each (in timeline order) when a tracer is installed on the OS.
/// `phase.verify` only appears for bytecode payloads (there is nothing to
/// statically verify about a native PAL's identity manifest).
pub const PHASE_SPAN_NAMES: [&str; 6] = [
    "phase.suspend",
    "phase.skinit",
    "phase.stub_measure",
    "phase.pal",
    "phase.cleanup",
    "phase.resume",
];

/// Span name for the pre-launch static-verification phase.
pub const VERIFY_SPAN_NAME: &str = "phase.verify";
/// Counter bumped when a bytecode payload passes the static verifier.
pub const VERIFY_ACCEPT_COUNTER: &str = "verify.accept";
/// Counter bumped when a bytecode payload fails the static verifier
/// (possible only via `SlbImage::build_unverified`; the session still
/// runs — the run-time defences are the backstop — but the rejection is
/// on the record).
pub const VERIFY_REJECT_COUNTER: &str = "verify.reject";

/// Span name for the constant-time / secret-flow analysis phase (the
/// `ct-*` checks run as part of verification; this span attributes their
/// verdict separately so dashboards can distinguish a memory-safety
/// rejection from a timing-channel one).
pub const ANALYZE_SPAN_NAME: &str = "phase.analyze";
/// Counter bumped when a bytecode payload has no `ct-*` findings.
pub const CT_ACCEPT_COUNTER: &str = "verify.ct_accept";
/// Counter bumped when a bytecode payload has `ct-*` findings (again,
/// reachable only via `SlbImage::build_unverified`).
pub const CT_REJECT_COUNTER: &str = "verify.ct_reject";

/// Counter accumulating bytecode instructions retired inside `phase.pal`
/// (== fuel consumed; the profiler rides the interpreter's hook seam).
/// Per-opcode breakdowns land beside it as `vm.op.<mnemonic>` counters.
pub const VM_INSNS_COUNTER: &str = "vm.insns";
/// Counter accumulating taken loop back-edges across bytecode PAL runs
/// (the hot-loop signal for the profile plane).
pub const VM_LOOP_ITERS_COUNTER: &str = "vm.loop_iters";

fn phase_start(tracer: &Option<Trace>, clock: &SimClock, name: &'static str) -> Option<SpanId> {
    tracer.as_ref().map(|t| {
        t.event(
            clock.now(),
            EventKind::PhaseStart {
                name: name.to_string(),
            },
        );
        t.span_start(name, clock.now())
    })
}

fn phase_end(tracer: &Option<Trace>, clock: &SimClock, name: &'static str, id: Option<SpanId>) {
    if let (Some(t), Some(id)) = (tracer.as_ref(), id) {
        t.span_end(id, clock.now());
        t.event(
            clock.now(),
            EventKind::PhaseEnd {
                name: name.to_string(),
            },
        );
    }
}

/// The deterministic hashing-stub bytes (stands in for the paper's
/// hash+extend stub PAL: "a cryptographic hash function and enough TPM
/// support to perform a PCR Extend", 4 736 bytes).
pub fn hashing_stub_bytes() -> Vec<u8> {
    let mut bytes = vec![0u8; HASHING_STUB_SIZE];
    bytes[0..2].copy_from_slice(&(HASHING_STUB_SIZE as u16).to_le_bytes());
    bytes[2..4].copy_from_slice(&4u16.to_le_bytes());
    let marker =
        b"FLICKER-HASHING-STUB v1.0: sha1(full 64KB window) -> extend PCR17; then jump to PAL";
    bytes[4..4 + marker.len()].copy_from_slice(marker);
    // Fill the remainder with a fixed pattern (the "code").
    for (i, b) in bytes.iter_mut().enumerate().skip(4 + marker.len()) {
        *b = (i % 251) as u8;
    }
    bytes
}

/// RAII recovery for a suspended OS.
///
/// Created immediately after a successful `suspend_for_session`; disarmed
/// only when the session has resumed the OS itself. If `run_session`
/// returns early through any error path in between, the drop restores the
/// platform to a safe, usable state: scrub the SLB region, cap PCR 17 with
/// the terminator (so the aborted session's measurement chain can never
/// release a sealed secret), resume the OS — or, after a power loss,
/// reboot the machine outright.
struct ResumeGuard<'a> {
    os: &'a mut Os,
    slb_base: u64,
    overflow_len: usize,
    armed: bool,
}

impl ResumeGuard<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for ResumeGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if self.os.machine().power_lost() {
            // Power died mid-session. RAM — and every secret staged in
            // it — is already gone, and PCR 17 resets to -1 at reboot, so
            // nothing can unseal against the dead session's half-built
            // chain. All that is left is to bring the platform back up.
            self.os.reboot_after_power_loss();
            return;
        }
        let machine = self.os.machine_mut();
        // Scrub everything the session staged or the PAL dirtied: the SLB
        // window, both parameter pages, and any overflow region.
        let _ = machine.memory_mut().zeroize(self.slb_base, SLB_MAX);
        let _ = machine
            .memory_mut()
            .zeroize(self.slb_base + INPUTS_OFFSET, 0x2000);
        if self.overflow_len > 0 {
            let _ = machine
                .memory_mut()
                .zeroize(self.slb_base + OVERFLOW_OFFSET, self.overflow_len);
        }
        if machine.active_skinit().is_some() {
            let _ = machine.tpm_op_retrying(|t| t.pcr_extend(17, &TERMINATOR));
            let _ = machine.resume_os();
        } else {
            // SKINIT never ran (or was refused): the APs are still parked
            // from the suspend; bring them back directly.
            machine.cpus_mut().restart_aps();
        }
        let _ = self.os.resume_after_session();
    }
}

/// Runs one complete Flicker session for `slb` on `os`.
///
/// Returns an error only for infrastructure failures (bad SLB placement,
/// machine refusal, injected platform faults); PAL-level faults are
/// reported inside the [`SessionRecord`] because the SLB Core always
/// regains control and resumes the OS. Whenever an error *is* returned,
/// the platform has already been restored: the OS is running again (or
/// rebooted, after a power loss), no suspend state is leaked, the SLB
/// region is scrubbed, and PCR 17 is capped.
pub fn run_session(
    os: &mut Os,
    slb: &SlbImage,
    params: &SessionParams,
) -> FlickerResult<SessionRecord> {
    if params.inputs.len() > INPUTS_MAX {
        return Err(FlickerError::SlbBuild("inputs exceed the input region"));
    }
    if slb.is_large() && !params.use_hashing_stub {
        // SKINIT's header length field cannot describe more than 64 KB;
        // larger PALs need the preparatory (stub) code that extends the
        // DEV and measures the extra region (paper §4.2).
        return Err(FlickerError::SlbBuild(
            "large PALs require the hashing-stub launch path",
        ));
    }
    let clock = os.clock();
    let tracer = os.machine().tracer().cloned();
    let total_sw = Stopwatch::start(&clock);
    let slb_base = params.slb_base;
    let session_id = tracer.as_ref().map(|t| {
        let id = t.next_session_id();
        t.event(clock.now(), EventKind::SessionStart { id });
        id
    });

    // ----- Static verification (observability) ------------------------------
    // `SlbImage::build` already gates on the verifier; re-running it here
    // puts the verdict in the session trace, so a sweep over recorded
    // sessions can assert "no verified PAL ever faulted" — and so images
    // smuggled in through `build_unverified` are visibly on the record.
    if let PalPayload::Bytecode(prog) = slb.payload() {
        let span = phase_start(&tracer, &clock, VERIFY_SPAN_NAME);
        let verdict = flicker_verifier::verify_program(prog);
        if let Some(t) = tracer.as_ref() {
            t.counter_add(
                if verdict.is_ok() {
                    VERIFY_ACCEPT_COUNTER
                } else {
                    VERIFY_REJECT_COUNTER
                },
                1,
            );
        }
        phase_end(&tracer, &clock, VERIFY_SPAN_NAME, span);
        // The ct verdict is a subset of the findings above; a separate
        // span + counter pair keeps timing-channel rejections visible
        // without re-running the analysis.
        let span = phase_start(&tracer, &clock, ANALYZE_SPAN_NAME);
        if let Some(t) = tracer.as_ref() {
            t.counter_add(
                if verdict.ct_clean() {
                    CT_ACCEPT_COUNTER
                } else {
                    CT_REJECT_COUNTER
                },
                1,
            );
        }
        phase_end(&tracer, &clock, ANALYZE_SPAN_NAME, span);
    }

    // ----- Accept SLB + inputs; initialize (patch) the SLB ------------------
    // (flicker-module, untrusted). The OS is still running here, so a
    // failure only needs the staged bytes scrubbed, not a resume.
    let patched = slb.patched_bytes(slb_base);
    let (measured_at_base, app_offset, overflow) =
        match stage_images(os, slb_base, &patched, params) {
            Ok(staged) => staged,
            Err(e) => {
                scrub_staging(os, slb_base, patched.len(), params.use_hashing_stub);
                return Err(e);
            }
        };

    // ----- Suspend OS ---------------------------------------------------------
    let sw = Stopwatch::start(&clock);
    let span = phase_start(&tracer, &clock, "phase.suspend");
    if let Err(e) = os.suspend_for_session() {
        scrub_staging(os, slb_base, patched.len(), params.use_hashing_stub);
        return Err(e.into());
    }
    // From here until the OS is back, every early return must restore the
    // platform; the guard's drop does exactly that.
    let mut guard = ResumeGuard {
        os,
        slb_base,
        overflow_len: overflow.len(),
        armed: true,
    };
    let saved_state = guard
        .os
        .saved_state()
        .expect("suspend_for_session stores state")
        .to_bytes();
    let machine = guard.os.machine_mut();
    machine
        .memory_mut()
        .write(slb_base + SAVED_STATE_OFFSET, &saved_state)?;
    machine.charge_cpu(SUSPEND_COST);
    machine.check_power()?;
    phase_end(&tracer, &clock, "phase.suspend", span);
    let t_suspend = sw.elapsed();

    // ----- SKINIT ---------------------------------------------------------------
    let sw = Stopwatch::start(&clock);
    let span = phase_start(&tracer, &clock, "phase.skinit");
    let launch = machine.skinit(0, slb_base)?;
    let slb_measurement = launch.measurement;
    debug_assert_eq!(
        slb_measurement,
        flicker_crypto::sha1::sha1(&measured_at_base)
    );
    machine.check_power()?;
    phase_end(&tracer, &clock, "phase.skinit", span);
    let t_skinit = sw.elapsed();

    // ----- Hashing stub (optional §7.2 path) --------------------------------------
    let sw = Stopwatch::start(&clock);
    let span = phase_start(&tracer, &clock, "phase.stub_measure");
    if params.use_hashing_stub {
        // The stub hashes the full 64 KB window on the main CPU and extends
        // the result into PCR 17.
        let window = machine.memory().read(slb_base, SLB_MAX)?.to_vec();
        // The stub's hashing *time* is always charged (the stub really runs
        // on the main CPU every session); the warm memo only skips the
        // redundant host-side recomputation for an unchanged window.
        let cost = machine.cpu_cost().sha1(window.len());
        machine.charge_cpu(cost);
        let window_hash = match machine.warm_mut().lookup_measurement(&window) {
            Some(h) => h,
            None => {
                let h = flicker_crypto::sha1::sha1(&window);
                machine.warm_mut().store_measurement(&window, h);
                h
            }
        };
        machine.tpm_op_retrying(|t| t.pcr_extend(17, &window_hash))?;
        if !overflow.is_empty() {
            // Large PAL: the preparatory code adds the overflow region to
            // the DEV and measures it into PCR 17 before any of it runs
            // (paper §4.2).
            machine.extend_protection(slb_base + OVERFLOW_OFFSET, overflow.len() as u64)?;
            let cost = machine.cpu_cost().sha1(overflow.len());
            machine.charge_cpu(cost);
            let overflow_hash = flicker_crypto::sha1::sha1(&overflow);
            machine.tpm_op_retrying(|t| t.pcr_extend(17, &overflow_hash))?;
        }
    }
    machine.check_power()?;
    phase_end(&tracer, &clock, "phase.stub_measure", span);
    let t_stub = sw.elapsed();

    // ----- SLB Core init + PAL execution ---------------------------------------
    let sw = Stopwatch::start(&clock);
    let span = phase_start(&tracer, &clock, "phase.pal");
    machine.charge_cpu(SLBCORE_INIT_COST);
    // The SLB Core records the entry measurement (PCR 17 after SKINIT and
    // any stub extends) before jumping to the PAL; charging the read here
    // keeps the per-phase durations summing to the session total.
    let pcr17_entry = machine.tpm_op_retrying(|t| t.pcr_read(17))?;
    // Verify the PAL actually sits at its launch offset before jumping to
    // it: the SLB Core's jump target is `slb_base + app_offset`, and if the
    // flicker-module staged the image anywhere else the core must abort
    // rather than execute whatever bytes happen to live there.
    let probe_len = patched.len().min(64);
    let at_offset = machine
        .memory()
        .read(slb_base + app_offset as u64, probe_len)?;
    if at_offset != &patched[..probe_len] {
        return Err(FlickerError::Protocol("PAL image not at its launch offset"));
    }
    let region_len = REGION_LEN.max((OVERFLOW_OFFSET as usize + overflow.len()) as u32);
    let mut ctx = PalContext::new(
        &mut *machine,
        slb_base,
        region_len,
        slb.options.os_protection,
        params.inputs.clone(),
    );
    // The §5.1.2 timing restriction: a wall-time bound becomes an
    // instruction budget for bytecode PALs.
    let fuel = slb.options.fuel.or_else(|| {
        slb.options
            .time_limit
            .map(|t| (t.as_secs_f64() * VM_INSNS_PER_SEC as f64) as u64)
    });
    let pal_start = clock.now();
    let mut pal_result = execute_payload(slb.payload(), &mut ctx, fuel, tracer.as_ref());
    let mut timed_out = false;
    if let (Ok(()), Some(limit)) = (&pal_result, slb.options.time_limit) {
        // Native PALs cannot be preempted; enforce the bound after the
        // fact so a runaway PAL is at least *reported*.
        if clock.now() - pal_start > limit {
            timed_out = true;
            pal_result = Err(format!(
                "PAL exceeded its time limit of {limit:?} (ran {:?})",
                clock.now() - pal_start
            ));
        }
    }
    let mut outputs = ctx.take_outputs();
    if timed_out {
        // A PAL that blew through its timing restriction (§5.1.2) gets no
        // output channel: publishing would let a runaway PAL exfiltrate
        // through a path the session already declared faulted.
        outputs.clear();
    }
    let ops = ctx.take_ops();
    machine.check_power()?;
    phase_end(&tracer, &clock, "phase.pal", span);
    let t_pal = sw.elapsed();

    // ----- Cleanup + terminal extends (SLB Core) ---------------------------------
    let sw = Stopwatch::start(&clock);
    let span = phase_start(&tracer, &clock, "phase.cleanup");
    // Erase every byte the PAL could have dirtied: the 64 KB window, the
    // input page, and the whole output page (so a short or discarded
    // output never leaves a previous session's bytes behind).
    machine.memory_mut().zeroize(slb_base, SLB_MAX)?;
    machine
        .memory_mut()
        .zeroize(slb_base + INPUTS_OFFSET, 0x1000)?;
    machine
        .memory_mut()
        .zeroize(slb_base + OUTPUTS_OFFSET, 0x1000)?;
    if !overflow.is_empty() {
        machine
            .memory_mut()
            .zeroize(slb_base + OVERFLOW_OFFSET, overflow.len())?;
    }
    // Publish outputs through the output page (length header ‖ bytes; both
    // bounded to the page by `OUTPUTS_MAX`).
    machine
        .memory_mut()
        .write_u32_le(slb_base + OUTPUTS_OFFSET, outputs.len() as u32)?;
    machine
        .memory_mut()
        .write(slb_base + OUTPUTS_OFFSET + 4, &outputs)?;
    // Terminal extends (paper §4.4.1): measurements of the inputs and
    // outputs, the verifier nonce, then the fixed public terminator that
    // revokes PAL secrets and closes the PAL's extension authority.
    let io = io_measurement(&params.inputs, &outputs);
    machine.tpm_op_retrying(|t| t.pcr_extend(17, &io))?;
    machine.tpm_op_retrying(|t| t.pcr_extend(17, &params.nonce))?;
    machine.tpm_op_retrying(|t| t.pcr_extend(17, &TERMINATOR))?;
    let pcr17_final = machine.tpm_op_retrying(|t| t.pcr_read(17))?;
    machine.check_power()?;
    phase_end(&tracer, &clock, "phase.cleanup", span);
    let t_cleanup = sw.elapsed();

    // ----- Resume OS ---------------------------------------------------------------
    let sw = Stopwatch::start(&clock);
    let span = phase_start(&tracer, &clock, "phase.resume");
    machine.resume_os()?;
    machine.charge_cpu(RESUME_COST);
    machine.check_power()?;
    guard.os.resume_after_session()?;
    guard.disarm();
    phase_end(&tracer, &clock, "phase.resume", span);
    let t_resume = sw.elapsed();
    if let (Some(t), Some(id)) = (tracer.as_ref(), session_id) {
        t.event(clock.now(), EventKind::SessionEnd { id });
    }

    Ok(SessionRecord {
        outputs,
        pal_result,
        slb_measurement,
        pcr17_entry,
        pcr17_final,
        timings: SessionTimings {
            suspend: t_suspend,
            skinit: t_skinit,
            stub_measure: t_stub,
            pal: t_pal,
            cleanup: t_cleanup,
            resume: t_resume,
            total: total_sw.elapsed(),
        },
        ops,
    })
}

/// Copies the SLB image (or hashing stub + image) and the inputs into the
/// session's physical region. Returns the bytes SKINIT will measure at
/// `slb_base`, the PAL's offset within the window, and any overflow bytes.
fn stage_images(
    os: &mut Os,
    slb_base: u64,
    patched: &[u8],
    params: &SessionParams,
) -> FlickerResult<(Vec<u8>, usize, Vec<u8>)> {
    let staged = if params.use_hashing_stub {
        let stub = hashing_stub_bytes();
        os.machine_mut().memory_mut().write(slb_base, &stub)?;
        // Zero the rest of the window, then place the app image above the
        // stub (still inside the DEV-protected, stub-measured 64 KB). A
        // large image continues in the overflow region above the parameter
        // pages.
        os.machine_mut()
            .memory_mut()
            .zeroize(slb_base + stub.len() as u64, SLB_MAX - stub.len())?;
        let in_window = patched.len().min(SLB_MAX - HASHING_STUB_SIZE);
        os.machine_mut()
            .memory_mut()
            .write(slb_base + HASHING_STUB_SIZE as u64, &patched[..in_window])?;
        let overflow = patched[in_window..].to_vec();
        if !overflow.is_empty() {
            os.machine_mut()
                .memory_mut()
                .write(slb_base + OVERFLOW_OFFSET, &overflow)?;
        }
        (stub, HASHING_STUB_SIZE, overflow)
    } else {
        os.machine_mut().memory_mut().write(slb_base, patched)?;
        (patched.to_vec(), 0, Vec::new())
    };
    os.machine_mut()
        .memory_mut()
        .write(slb_base + INPUTS_OFFSET, &params.inputs)?;
    Ok(staged)
}

/// Best-effort scrub of everything staging may have written. Used on the
/// pre-SKINIT failure paths, where the OS is still running and nothing
/// else needs restoring.
///
/// The overflow region is only in play on the hashing-stub path (that's
/// the launch mode that displaces the image by the stub size); a direct
/// launch never wrote there, and an image long enough to trip the size
/// arithmetic must not cause a scrub of memory the session never touched.
fn scrub_staging(os: &mut Os, slb_base: u64, image_len: usize, used_stub: bool) {
    let mem = os.machine_mut().memory_mut();
    let _ = mem.zeroize(slb_base, SLB_MAX);
    let _ = mem.zeroize(slb_base + INPUTS_OFFSET, 0x1000);
    if used_stub && image_len > SLB_MAX - HASHING_STUB_SIZE {
        let overflow_len = image_len - (SLB_MAX - HASHING_STUB_SIZE);
        let _ = mem.zeroize(slb_base + OVERFLOW_OFFSET, overflow_len);
    }
}

fn execute_payload(
    payload: &PalPayload,
    ctx: &mut PalContext<'_>,
    fuel: Option<u64>,
    tracer: Option<&Trace>,
) -> Result<(), String> {
    match payload {
        PalPayload::Native { program, .. } => {
            let program = program.clone();
            program.run(ctx).map_err(|e| e.to_string())
        }
        PalPayload::Bytecode(prog) => {
            let mut regs = [0u32; NUM_REGS];
            regs[vm_regs::INPUTS] = ctx.inputs_logical_addr();
            regs[vm_regs::OUTPUTS] = ctx.inputs_logical_addr() + 0x1000;
            regs[vm_regs::INPUT_LEN] = ctx.inputs().len() as u32;
            let mut bus = VmBusAdapter { ctx };
            let fuel = fuel.unwrap_or(DEFAULT_FUEL);
            match tracer {
                // With a recorder installed, run under the instruction
                // profiler and feed the retirement counts into the trace
                // — counts survive a fault, so even a PAL that runs out
                // of fuel shows where the budget went.
                Some(t) => {
                    let mut profiler = flicker_palvm::InsnProfiler::new();
                    let result = flicker_palvm::run_with_hook(
                        &prog.code,
                        &mut bus,
                        fuel,
                        regs,
                        &mut profiler,
                    );
                    for (name, n) in profiler.counter_pairs() {
                        t.counter_add(name, n);
                    }
                    let prof = profiler.finish();
                    t.counter_add(VM_INSNS_COUNTER, prof.executed);
                    t.counter_add(
                        VM_LOOP_ITERS_COUNTER,
                        prof.loops.iter().map(|l| l.iterations).sum(),
                    );
                    result.map(|_| ()).map_err(|e| e.to_string())
                }
                None => flicker_palvm::run_with_regs(&prog.code, &mut bus, fuel, regs)
                    .map(|_| ())
                    .map_err(|e| e.to_string()),
            }
        }
    }
}
