//! The Secure Channel module (paper §4.4.2 and Figure 6).
//!
//! "The PAL generates an asymmetric keypair within the protection of the
//! Flicker session and then transmits the public key to the remote party.
//! The private key is sealed for a future invocation of the same PAL ...
//! An attestation convinces the remote party that the PAL ran with
//! Flicker's protections and that the public key was a legitimate output
//! of the PAL. Finally, the remote party can use the PAL's public key to
//! create a secure channel to the PAL."
//!
//! The in-PAL halves ([`generate_channel_keypair`], [`open_channel`]) run
//! against a [`PalContext`]; the remote-party half ([`RemoteParty`]) runs
//! anywhere.

use crate::error::{FlickerError, FlickerResult};
use crate::pal::PalContext;
use flicker_crypto::pkcs1;
use flicker_crypto::rng::CryptoRng;
use flicker_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use flicker_tpm::SealedBlob;

/// Output of the key-generation session: what the PAL returns to the
/// untrusted world.
#[derive(Debug, Clone)]
pub struct ChannelSetup {
    /// The channel public key `K_PAL` (a PAL output, so covered by the
    /// attestation).
    pub public_key: RsaPublicKey,
    /// The private key, sealed so only this PAL in a future Flicker session
    /// can recover it (`sdata` in the paper's Figure 7).
    pub sealed_private_key: SealedBlob,
}

impl ChannelSetup {
    /// Serializes `public_key ‖ sealed blob` for the PAL output region.
    pub fn to_bytes(&self) -> Vec<u8> {
        let pk = self.public_key.to_bytes();
        let blob = self.sealed_private_key.as_bytes();
        let mut out = Vec::with_capacity(8 + pk.len() + blob.len());
        out.extend_from_slice(&(pk.len() as u32).to_be_bytes());
        out.extend_from_slice(&pk);
        out.extend_from_slice(&(blob.len() as u32).to_be_bytes());
        out.extend_from_slice(blob);
        out
    }

    /// Parses the [`Self::to_bytes`] form.
    pub fn from_bytes(bytes: &[u8]) -> FlickerResult<Self> {
        let take = |off: &mut usize| -> FlickerResult<Vec<u8>> {
            if bytes.len() < *off + 4 {
                return Err(FlickerError::Protocol("truncated channel setup"));
            }
            let len =
                u32::from_be_bytes(bytes[*off..*off + 4].try_into().expect("4 bytes")) as usize;
            *off += 4;
            if bytes.len() < *off + len {
                return Err(FlickerError::Protocol("truncated channel setup"));
            }
            let v = bytes[*off..*off + len].to_vec();
            *off += len;
            Ok(v)
        };
        let mut off = 0;
        let pk = take(&mut off)?;
        let blob = take(&mut off)?;
        if off != bytes.len() {
            return Err(FlickerError::Protocol("trailing bytes in channel setup"));
        }
        Ok(ChannelSetup {
            public_key: RsaPublicKey::from_bytes(&pk)
                .map_err(|_| FlickerError::Protocol("bad public key"))?,
            sealed_private_key: SealedBlob::from_bytes(blob),
        })
    }
}

/// First-session half: generate `K_PAL`, seal `K_PAL⁻¹` to this PAL's
/// PCR 17 value, and return both (the public key for the remote party, the
/// blob for the next session).
pub fn generate_channel_keypair(ctx: &mut PalContext<'_>) -> FlickerResult<ChannelSetup> {
    let (private, _stats) = ctx.rsa1024_keygen();
    let sealed_private_key = ctx.seal_to_self(&private.to_bytes())?;
    Ok(ChannelSetup {
        public_key: private.public_key().clone(),
        sealed_private_key,
    })
}

/// Second-session half: recover the channel private key. Fails with
/// `WrongPcrVal` inside [`FlickerError::Tpm`] if a different PAL (or the
/// bare OS) tries.
pub fn recover_channel_key(
    ctx: &mut PalContext<'_>,
    sealed_private_key: &SealedBlob,
) -> FlickerResult<RsaPrivateKey> {
    let bytes = ctx.unseal(sealed_private_key)?;
    RsaPrivateKey::from_bytes(&bytes)
        .map_err(|_| FlickerError::Protocol("sealed blob did not contain a private key"))
}

/// Second-session half, message form: unseal the key and decrypt one
/// PKCS#1 v1.5 message sent over the channel.
pub fn open_channel(
    ctx: &mut PalContext<'_>,
    sealed_private_key: &SealedBlob,
    ciphertext: &[u8],
) -> FlickerResult<Vec<u8>> {
    let key = recover_channel_key(ctx, sealed_private_key)?;
    ctx.rsa1024_decrypt(&key, ciphertext)
}

/// The remote party's side of the channel.
#[derive(Debug, Clone)]
pub struct RemoteParty {
    pal_public_key: RsaPublicKey,
}

impl RemoteParty {
    /// Trusts `pal_public_key` after verifying the attestation over the
    /// key-generation session (the caller does that with
    /// [`crate::attest::Verifier`]).
    pub fn new(pal_public_key: RsaPublicKey) -> Self {
        RemoteParty { pal_public_key }
    }

    /// Encrypts `msg` so only the PAL can read it (PKCS#1 v1.5, the
    /// "chosen-ciphertext-secure and nonmalleable" encryption of §6.3.1).
    pub fn encrypt<R: CryptoRng + ?Sized>(
        &self,
        msg: &[u8],
        rng: &mut R,
    ) -> FlickerResult<Vec<u8>> {
        pkcs1::encrypt(&self.pal_public_key, msg, rng)
            .map_err(|_| FlickerError::Protocol("message too long for channel key"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flicker_crypto::rng::XorShiftRng;

    #[test]
    fn channel_setup_serialization_round_trip() {
        let mut rng = XorShiftRng::new(90);
        let (key, _) = RsaPrivateKey::generate(512, &mut rng);
        let setup = ChannelSetup {
            public_key: key.public_key().clone(),
            sealed_private_key: SealedBlob::from_bytes(vec![1, 2, 3, 4]),
        };
        let back = ChannelSetup::from_bytes(&setup.to_bytes()).unwrap();
        assert_eq!(back.public_key, setup.public_key);
        assert_eq!(back.sealed_private_key, setup.sealed_private_key);
    }

    #[test]
    fn malformed_setup_rejected() {
        assert!(ChannelSetup::from_bytes(&[]).is_err());
        assert!(ChannelSetup::from_bytes(&[0, 0, 0, 99, 1]).is_err());
        let mut rng = XorShiftRng::new(91);
        let (key, _) = RsaPrivateKey::generate(512, &mut rng);
        let setup = ChannelSetup {
            public_key: key.public_key().clone(),
            sealed_private_key: SealedBlob::from_bytes(vec![1]),
        };
        let mut bytes = setup.to_bytes();
        bytes.push(0);
        assert!(ChannelSetup::from_bytes(&bytes).is_err());
    }
}
