//! Attestation: the PCR 17 measurement chain and the remote verifier.
//!
//! Paper §4.4.1: PCR 17 tells the whole story of a session. `SKINIT` sets
//! it to `H(0^20 ‖ H(SLB))`; the SLB Core then extends measurements of the
//! inputs and outputs, the verifier's nonce, and finally a fixed public
//! constant that (i) stops anyone attributing later extends to the PAL and
//! (ii) revokes access to secrets sealed to the in-session PCR value. A
//! verifier who knows the PAL and the I/O can recompute the expected final
//! value and compare it against a TPM quote.

use crate::error::{FlickerError, FlickerResult};
use crate::session::hashing_stub_bytes;
use crate::slb::{SlbImage, SLB_MAX};
use flicker_crypto::digest::Digest;
use flicker_crypto::rsa::RsaPublicKey;
use flicker_crypto::sha1::{sha1, Sha1};
use flicker_tpm::{AikCertificate, PcrBank, TpmQuote};

/// The fixed public constant the SLB Core extends last (paper §4.4.1's
/// "fixed public constant").
pub const TERMINATOR: [u8; 20] = [
    0x46, 0x4c, 0x49, 0x43, 0x4b, 0x45, 0x52, 0x2d, 0x45, 0x4e, 0x44, 0x2d, 0x4f, 0x46, 0x2d, 0x50,
    0x41, 0x4c, 0x21, 0x21,
]; // "FLICKER-END-OF-PAL!!"

/// Measurement of a session's inputs and outputs, as extended into PCR 17:
/// `SHA-1("flicker-io" ‖ len(in) ‖ in ‖ len(out) ‖ out)`.
pub fn io_measurement(inputs: &[u8], outputs: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(b"flicker-io");
    h.update(&(inputs.len() as u32).to_be_bytes());
    h.update(inputs);
    h.update(&(outputs.len() as u32).to_be_bytes());
    h.update(outputs);
    let d = h.finalize();
    let mut out = [0u8; 20];
    out.copy_from_slice(&d);
    out
}

fn extend(pcr: [u8; 20], m: &[u8; 20]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(&pcr);
    h.update(m);
    let d = h.finalize();
    let mut out = [0u8; 20];
    out.copy_from_slice(&d);
    out
}

/// What the verifier believes about a session, sufficient to recompute the
/// final PCR 17 value.
#[derive(Debug, Clone)]
pub struct ExpectedSession<'a> {
    /// The PAL's SLB (the verifier "must know the measurement of the PAL").
    pub slb: &'a SlbImage,
    /// The conventional load address.
    pub slb_base: u64,
    /// Input bytes the challenger claims were supplied.
    pub inputs: &'a [u8],
    /// Output bytes the challenger returned.
    pub outputs: &'a [u8],
    /// The verifier's own nonce.
    pub nonce: [u8; 20],
    /// Whether the §7.2 hashing-stub launch path was used.
    pub used_hashing_stub: bool,
}

/// The PCR 17 value right after launch: `SKINIT`'s measurement of the SLB,
/// plus the stub's full-window measurement when the §7.2 launch path is in
/// use.
pub fn launch_pcr17(s: &ExpectedSession<'_>) -> [u8; 20] {
    if s.used_hashing_stub {
        // SKINIT measured the stub; the stub then measured the full window
        // (stub ‖ patched app SLB ‖ zero fill) and, for a large PAL, the
        // overflow region above the parameter pages.
        let stub = hashing_stub_bytes();
        let app = s.slb.patched_bytes(s.slb_base);
        let in_window = app.len().min(SLB_MAX - stub.len());
        let mut window = vec![0u8; SLB_MAX];
        window[..stub.len()].copy_from_slice(&stub);
        window[stub.len()..stub.len() + in_window].copy_from_slice(&app[..in_window]);
        let after_skinit = PcrBank::predict_skinit_pcr17(&sha1(&stub));
        let mut pcr = extend(after_skinit, &sha1(&window));
        if in_window < app.len() {
            pcr = extend(pcr, &sha1(&app[in_window..]));
        }
        pcr
    } else {
        s.slb.expected_pcr17_after_skinit(s.slb_base)
    }
}

/// Recomputes the PCR 17 value a faithful session must end with.
pub fn expected_pcr17_final(s: &ExpectedSession<'_>) -> [u8; 20] {
    expected_pcr17_final_with_extends(s, &[])
}

/// Like [`expected_pcr17_final`], for PALs that perform their own PCR 17
/// extends during execution (e.g. the rootkit detector extending the
/// kernel hash, §6.1). `pal_extends` lists those measurements in order.
pub fn expected_pcr17_final_with_extends(
    s: &ExpectedSession<'_>,
    pal_extends: &[[u8; 20]],
) -> [u8; 20] {
    let mut pcr = launch_pcr17(s);
    for m in pal_extends {
        pcr = extend(pcr, m);
    }
    pcr = extend(pcr, &io_measurement(s.inputs, s.outputs));
    pcr = extend(pcr, &s.nonce);
    extend(pcr, &TERMINATOR)
}

/// The remote verifier (paper §4.4.1's challenger-side checks).
pub struct Verifier {
    privacy_ca_public: RsaPublicKey,
}

impl Verifier {
    /// A verifier trusting the given Privacy CA.
    pub fn new(privacy_ca_public: RsaPublicKey) -> Self {
        Verifier { privacy_ca_public }
    }

    /// Full attestation check:
    ///
    /// 1. the AIK certificate chains to the trusted Privacy CA;
    /// 2. the quote's signature verifies under that AIK and covers the
    ///    verifier's nonce;
    /// 3. the quoted PCR 17 equals the recomputed expectation — proving the
    ///    intended PAL ran under Flicker protection with exactly the
    ///    claimed inputs and outputs.
    pub fn verify(
        &self,
        cert: &AikCertificate,
        quote: &TpmQuote,
        expected: &ExpectedSession<'_>,
    ) -> FlickerResult<()> {
        self.verify_with_extends(cert, quote, expected, &[])
    }

    /// [`Verifier::verify`] for sessions whose PAL performed its own
    /// PCR 17 extends (supplied in order in `pal_extends`).
    pub fn verify_with_extends(
        &self,
        cert: &AikCertificate,
        quote: &TpmQuote,
        expected: &ExpectedSession<'_>,
        pal_extends: &[[u8; 20]],
    ) -> FlickerResult<()> {
        cert.verify(&self.privacy_ca_public)
            .map_err(|_| FlickerError::Attestation("AIK certificate invalid"))?;
        quote
            .verify(&cert.aik_public, &expected.nonce)
            .map_err(|_| FlickerError::Attestation("quote signature/nonce invalid"))?;
        let quoted = quote
            .pcr_value(17)
            .ok_or(FlickerError::Attestation("PCR 17 not quoted"))?;
        let want = expected_pcr17_final_with_extends(expected, pal_extends);
        if !flicker_crypto::ct_eq(quoted, &want) {
            return Err(FlickerError::Attestation("PCR 17 mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_measurement_is_injective_on_boundaries() {
        // Length framing prevents input/output boundary confusion.
        let a = io_measurement(b"ab", b"c");
        let b = io_measurement(b"a", b"bc");
        assert_ne!(a, b);
        let c = io_measurement(b"", b"abc");
        assert_ne!(b, c);
    }

    #[test]
    fn terminator_is_public_and_fixed() {
        assert_eq!(&TERMINATOR[..], b"FLICKER-END-OF-PAL!!");
    }

    #[test]
    fn expected_chain_changes_with_every_component() {
        use crate::slb::{PalPayload, SlbOptions};
        use std::sync::Arc;
        struct Nop;
        impl crate::pal::NativePal for Nop {
            fn run(&self, _: &mut crate::pal::PalContext<'_>) -> FlickerResult<()> {
                Ok(())
            }
        }
        let slb = SlbImage::build(
            PalPayload::Native {
                identity: b"pal".to_vec(),
                program: Arc::new(Nop),
            },
            SlbOptions::default(),
        )
        .unwrap();
        let base = ExpectedSession {
            slb: &slb,
            slb_base: 0x10_0000,
            inputs: b"in",
            outputs: b"out",
            nonce: [1; 20],
            used_hashing_stub: false,
        };
        let v0 = expected_pcr17_final(&base);

        let mut x = base.clone();
        x.inputs = b"in2";
        assert_ne!(expected_pcr17_final(&x), v0);

        let mut x = base.clone();
        x.outputs = b"out2";
        assert_ne!(expected_pcr17_final(&x), v0);

        let mut x = base.clone();
        x.nonce = [2; 20];
        assert_ne!(expected_pcr17_final(&x), v0);

        let mut x = base.clone();
        x.slb_base = 0x20_0000;
        assert_ne!(expected_pcr17_final(&x), v0);

        let mut x = base.clone();
        x.used_hashing_stub = true;
        assert_ne!(expected_pcr17_final(&x), v0);
    }
}
