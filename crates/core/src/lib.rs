//! Flicker: minimal-TCB isolated execution (the paper's core contribution).
//!
//! This crate is the reproduction of Flicker itself (paper §4–§5): the
//! infrastructure that pauses an untrusted OS, late-launches a measured
//! Piece of Application Logic (PAL) with hardware-enforced isolation, and
//! resumes the OS — leaving behind a PCR 17 value that attests to exactly
//! what ran, with which inputs, and what it produced.
//!
//! * [`slb`] — the Secure Loader Block: Figure 3's layout, the builder,
//!   and measurement prediction.
//! * [`session`] — the flicker-module + SLB Core: Figure 2's timeline,
//!   including the §7.2 hashing-stub launch optimisation.
//! * [`pal`] — the PAL trait and the mediated [`pal::PalContext`]
//!   (segmented memory, TPM driver/utilities, charged crypto).
//! * [`attest`] — the PCR 17 measurement chain and the remote verifier
//!   (§4.4.1).
//! * [`sealed`] — replay-protected sealed storage (§4.3.2, Figure 4).
//! * [`secure_channel`] — the §4.4.2 key-establishment protocol.
//! * [`heap`] — the malloc/free/realloc PAL module.
//! * [`modules`] — the Figure 6 TCB inventory.

pub mod attest;
pub mod error;
pub mod heap;
pub mod modules;
pub mod pal;
pub mod sealed;
pub mod secure_channel;
pub mod session;
pub mod slb;
pub mod sysfs;

pub use attest::{
    expected_pcr17_final, expected_pcr17_final_with_extends, io_measurement, launch_pcr17,
    ExpectedSession, Verifier, TERMINATOR,
};
pub use error::{FlickerError, FlickerResult};
pub use heap::{HeapError, PalHeap};
pub use pal::{NativePal, PalContext};
pub use sealed::ReplayProtectedStorage;
pub use secure_channel::{
    generate_channel_keypair, open_channel, recover_channel_key, ChannelSetup, RemoteParty,
};
pub use session::{
    hashing_stub_bytes, run_session, SessionParams, SessionRecord, SessionTimings,
    ANALYZE_SPAN_NAME, CT_ACCEPT_COUNTER, CT_REJECT_COUNTER, DEFAULT_SLB_BASE, HASHING_STUB_SIZE,
    PHASE_SPAN_NAMES, REGION_LEN, VERIFY_ACCEPT_COUNTER, VERIFY_REJECT_COUNTER, VERIFY_SPAN_NAME,
};
pub use slb::{
    PalPayload, SlbImage, SlbOptions, LARGE_PAL_MAX, OUTPUTS_MAX, OUTPUTS_OFFSET, OVERFLOW_OFFSET,
    SLB_MAX,
};
pub use sysfs::FlickerSysfs;
