//! PAL execution: the trait native PALs implement and the mediated
//! environment both native and bytecode PALs run in.
//!
//! Everything a PAL can touch flows through [`PalContext`]:
//!
//! * **Memory** — logical (segment-relative) accesses checked against the
//!   GDT descriptors the SLB Core installed. With the OS-Protection module
//!   (paper §5.1.2) those descriptors are ring-3 with base `slb_base` and a
//!   limit at the end of the OS-allocated region, so the PAL physically
//!   cannot name other memory. Without it, the PAL runs ring 0 with flat
//!   segments — full physical access, exactly the danger the module
//!   exists to contain.
//! * **TPM** — the TPM Driver + TPM Utilities modules (paper Figure 6):
//!   PCR extend/read, GetRandom, Seal/Unseal with OIAP authorization.
//! * **Time** — CPU work is charged to the virtual clock through the
//!   calibrated cost model, so the evaluation harness sees realistic
//!   durations for hashing, key generation, and RSA operations.

use crate::error::{FlickerError, FlickerResult};
use crate::slb::{INPUTS_OFFSET, OUTPUTS_MAX};
use flicker_crypto::rng::XorShiftRng;
use flicker_crypto::rsa::{KeygenStats, RsaPrivateKey};
use flicker_crypto::sha1::Sha1;
use flicker_machine::{
    pal_segments, Machine, RetryPolicy, SealKey, SegmentDescriptor, SegmentKind,
};
use flicker_tpm::{
    ClientSession, CommandAuth, PcrSelection, PcrValue, SealedBlob, Tpm, TpmError, TpmResult,
    WELL_KNOWN_AUTH,
};
use flicker_trace::OpEvent;
use std::time::Duration;

/// The behaviour of a native (Rust-implemented) PAL.
pub trait NativePal: Send + Sync {
    /// Runs the PAL's application-specific logic inside the session.
    fn run(&self, ctx: &mut PalContext<'_>) -> FlickerResult<()>;
}

/// VM start-up register conventions for bytecode PALs.
pub mod vm_regs {
    /// Register holding the logical address of the PAL input region.
    pub const INPUTS: usize = 14;
    /// Register holding the logical address of the PAL output region
    /// (outputs normally flow through hypercalls instead).
    pub const OUTPUTS: usize = 13;
    /// Register holding the input length in bytes.
    pub const INPUT_LEN: usize = 12;
}

/// The mediated execution environment of one Flicker session.
pub struct PalContext<'a> {
    machine: &'a mut Machine,
    code_seg: SegmentDescriptor,
    data_seg: SegmentDescriptor,
    ring: u8,
    slb_base: u64,
    inputs: Vec<u8>,
    outputs: Vec<u8>,
    rng: Option<XorShiftRng>,
    ops: Vec<OpEvent>,
}

impl<'a> PalContext<'a> {
    /// Builds the context the SLB Core hands to the PAL.
    ///
    /// `region_len` is the extent of the OS-allocated region (SLB plus
    /// parameter pages) used as the segment limit under OS protection.
    pub(crate) fn new(
        machine: &'a mut Machine,
        slb_base: u64,
        region_len: u32,
        os_protection: bool,
        inputs: Vec<u8>,
    ) -> Self {
        let (code_seg, data_seg, ring) = if os_protection {
            let (c, d) = pal_segments(slb_base, region_len, 3);
            (c, d, 3)
        } else {
            (
                SegmentDescriptor::flat(SegmentKind::Code, 0),
                SegmentDescriptor::flat(SegmentKind::Data, 0),
                0,
            )
        };
        PalContext {
            machine,
            code_seg,
            data_seg,
            ring,
            slb_base,
            inputs,
            outputs: Vec::new(),
            rng: None,
            ops: Vec::new(),
        }
    }

    // ----- parameters ------------------------------------------------------

    /// The PAL's input bytes (already copied in from the input page).
    pub fn inputs(&self) -> &[u8] {
        &self.inputs
    }

    /// Appends bytes to the PAL output (bounded by the 4 KB output page).
    pub fn write_output(&mut self, data: &[u8]) -> FlickerResult<()> {
        if self.outputs.len() + data.len() > OUTPUTS_MAX {
            return Err(FlickerError::OutputOverflow {
                len: self.outputs.len() + data.len(),
                capacity: OUTPUTS_MAX,
            });
        }
        self.outputs.extend_from_slice(data);
        Ok(())
    }

    /// The output accumulated so far.
    pub fn outputs(&self) -> &[u8] {
        &self.outputs
    }

    pub(crate) fn take_outputs(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.outputs)
    }

    /// Per-operation timing events for every charged TPM command and
    /// crypto helper, in execution order. This is the observability hook
    /// behind the Figure 9-style breakdowns in the evaluation harness.
    pub fn ops(&self) -> &[OpEvent] {
        &self.ops
    }

    /// The op events as `(operation, simulated duration)` tuples — the
    /// pre-trace view of [`PalContext::ops`], kept for harness code that
    /// only cares about name + duration.
    pub fn op_log(&self) -> Vec<(&'static str, Duration)> {
        self.ops.iter().map(|e| (e.name, e.duration)).collect()
    }

    pub(crate) fn take_ops(&mut self) -> Vec<OpEvent> {
        std::mem::take(&mut self.ops)
    }

    /// Runs a machine operation, recording its simulated duration in the
    /// op log under `name` (and in the platform trace's histogram of the
    /// same name, when one is installed).
    fn logged<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Machine) -> T) -> T {
        let start = self.machine.clock().now();
        let out = f(self.machine);
        let dt = self.machine.clock().now() - start;
        self.ops.push(OpEvent {
            name,
            at: start,
            duration: dt,
        });
        if let Some(t) = self.machine.tracer() {
            t.observe(name, dt);
        }
        out
    }

    /// The privilege ring the PAL executes in.
    pub fn ring(&self) -> u8 {
        self.ring
    }

    /// The logical address of the input region under the current segment
    /// setup (for bytecode PALs).
    pub fn inputs_logical_addr(&self) -> u32 {
        if self.ring == 3 {
            INPUTS_OFFSET as u32
        } else {
            (self.slb_base + INPUTS_OFFSET) as u32
        }
    }

    // ----- memory (segment-checked) ----------------------------------------

    /// Reads `len` bytes at logical (data-segment-relative) address
    /// `offset`.
    pub fn read_logical(&mut self, offset: u32, len: u32) -> FlickerResult<Vec<u8>> {
        let phys = self.data_seg.translate(offset, len, self.ring)?;
        Ok(self.machine.memory().read(phys, len as usize)?.to_vec())
    }

    /// Writes bytes at logical address `offset`.
    pub fn write_logical(&mut self, offset: u32, data: &[u8]) -> FlickerResult<()> {
        let phys = self
            .data_seg
            .translate(offset, data.len() as u32, self.ring)?;
        self.machine.memory_mut().write(phys, data)?;
        Ok(())
    }

    /// The installed code segment (diagnostics / SLB Core).
    pub fn code_segment(&self) -> SegmentDescriptor {
        self.code_seg
    }

    // ----- TPM driver + utilities (paper Figure 6) ---------------------------

    /// Extends PCR 17 with `measurement`.
    pub fn pcr17_extend(&mut self, measurement: &[u8; 20]) -> FlickerResult<PcrValue> {
        Ok(self.logged("pcr_extend", |m| {
            m.tpm_op_retrying(|t| t.pcr_extend(17, measurement))
        })?)
    }

    /// Reads a PCR.
    pub fn pcr_read(&mut self, index: u32) -> FlickerResult<PcrValue> {
        Ok(self.machine.tpm_op_retrying(|t| t.pcr_read(index))?)
    }

    /// `TPM_GetRandom` (charges the TPM latency).
    pub fn tpm_get_random(&mut self, n: usize) -> Vec<u8> {
        self.logged("get_random", |m| m.tpm_op(|t| t.get_random(n)))
    }

    fn rng(&mut self) -> &mut XorShiftRng {
        if self.rng.is_none() {
            // Seed a cheap local PRNG from the TPM once (the paper's SSH
            // PAL makes exactly one GetRandom call to seed a PRNG, §7.4.1).
            let seed_bytes = self.tpm_get_random(8);
            let seed = u64::from_be_bytes(seed_bytes.try_into().expect("8 bytes"));
            self.rng = Some(XorShiftRng::new(seed));
        }
        self.rng.as_mut().expect("just set")
    }

    /// Like [`PalContext::logged`], but for operations that need the whole
    /// context (e.g. the authorized warm-path helpers below).
    fn logged_self<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> T) -> T {
        let start = self.machine.clock().now();
        let out = f(self);
        let dt = self.machine.clock().now() - start;
        self.ops.push(OpEvent {
            name,
            at: start,
            duration: dt,
        });
        if let Some(t) = self.machine.tracer() {
            t.observe(name, dt);
        }
        out
    }

    /// Seed for a client-side odd-nonce generator, derived purely from
    /// session state: the handle is unique for the TPM's lifetime, the
    /// even nonce rolls with every accepted command, and the attempt index
    /// separates driver retries — so no odd nonce repeats on a session,
    /// and the PAL-visible randomness stream (`rng()`) is never consumed
    /// for auth traffic (warm and cold runs must stay byte-identical).
    fn auth_nonce_seed(session: &ClientSession, attempt: u32) -> u64 {
        let mut buf = Vec::with_capacity(28);
        buf.extend_from_slice(&session.handle().to_be_bytes());
        buf.extend_from_slice(session.nonce_even());
        buf.extend_from_slice(&attempt.to_be_bytes());
        let d = flicker_crypto::sha1::sha1(&buf);
        u64::from_be_bytes(d[..8].try_into().expect("8 bytes"))
    }

    /// Parks or closes `session` after a command. A continued (warm)
    /// session goes back in the machine's warm pool for the next command
    /// or PAL run. A one-shot session is unconditionally terminated: the
    /// TPM may not have consumed it (busy give-up, or a command that
    /// failed before authorization, e.g. `DecryptError` on a corrupt
    /// blob), and `TPM_Terminate_Handle` on an already-closed session is a
    /// free no-op.
    fn finish_session(&mut self, session: ClientSession, keep: bool) {
        if keep {
            self.machine.warm_mut().park_session(session);
        } else {
            let handle = session.handle();
            self.machine.tpm_op(|t| t.terminate_handle(handle));
        }
    }

    /// Runs an authorized TPM command with driver-side busy retry, under
    /// the machine's cached warm auth session when one is parked (else a
    /// fresh OIAP). Fresh odd nonce per attempt; the TPM's response
    /// authorization is absorbed after every non-busy attempt so a
    /// continued session stays nonce-synchronized; a stale warm session
    /// (evicted or flushed server-side) is invalidated and recovered once
    /// with a fresh session.
    fn authorized_retrying<T>(
        &mut self,
        pd: [u8; 20],
        f: impl Fn(&mut Tpm, &CommandAuth) -> TpmResult<T>,
    ) -> TpmResult<T> {
        let warm = self.machine.warm().enabled();
        let mut recovered = false;
        'session: loop {
            let (mut session, reused) = match self.machine.warm_mut().take_session() {
                Some(s) => (s, true),
                None => (self.machine.tpm_op(|t| t.oiap(WELL_KNOWN_AUTH)), false),
            };
            if warm {
                let saved = self.machine.tpm().timing().session_start;
                let now = self.machine.clock().now();
                if let Some(t) = self.machine.tracer() {
                    t.counter_add(if reused { "warm.hit" } else { "warm.miss" }, 1);
                    if reused {
                        // A parked session skipped a TPM_OIAP; record the
                        // avoided cost for the attribution report (never
                        // counted toward wall time).
                        t.charge(now, "warm_saved.oiap", saved);
                    }
                }
            }
            // Warm sessions are continued across commands; cold runs close
            // the session with the command (one-shot), which is what keeps
            // the TPM's table bounded under per-request workloads.
            let keep = warm;
            let policy = RetryPolicy::tpm_default();
            let mut attempt = 0u32;
            let mut retries = 0u32;
            loop {
                let mut r = XorShiftRng::new(Self::auth_nonce_seed(&session, attempt));
                attempt += 1;
                let auth = session.authorize(&pd, &mut r, keep);
                let (out, resp) = self.machine.tpm_op(|t| {
                    let out = f(t, &auth);
                    (out, t.take_response_auth())
                });
                // Absorb on every attempt that produced a response — a
                // command can fail *after* authorization (e.g. Unseal
                // against wrong PCRs) and the session still rolls.
                if let Some(resp) = &resp {
                    if session.absorb_response(&pd, &auth, resp).is_err() {
                        let handle = session.handle();
                        self.machine.tpm_op(|t| t.terminate_handle(handle));
                        return Err(TpmError::AuthFail);
                    }
                }
                match out {
                    Err(TpmError::Retry) => match policy.backoff(retries) {
                        Some(wait) => {
                            // Busy gate fires before the TPM looks at the
                            // session, so its nonce state is untouched;
                            // the next attempt still uses a fresh odd
                            // nonce via the attempt index.
                            retries += 1;
                            if let Some(t) = self.machine.tracer() {
                                t.counter_add("tpm.retry", 1);
                            }
                            self.machine.charge_backoff(wait);
                            if self.machine.power_lost() {
                                self.finish_session(session, keep);
                                return Err(TpmError::Retry);
                            }
                        }
                        None => {
                            self.finish_session(session, keep);
                            return Err(TpmError::Retry);
                        }
                    },
                    Err(e @ (TpmError::AuthFail | TpmError::InvalidAuthHandle(_))) => {
                        // The server half is gone. A reused warm session
                        // may simply have gone stale (evicted under table
                        // pressure, flushed by a reboot we did not cause):
                        // invalidate and recover once with a fresh session.
                        if reused && !recovered {
                            recovered = true;
                            if let Some(t) = self.machine.tracer() {
                                t.counter_add("warm.invalidate", 1);
                            }
                            continue 'session;
                        }
                        return Err(e);
                    }
                    other => {
                        // Success, or a post-authorization failure: a
                        // continued session is live and in sync (absorbed
                        // above); a one-shot session was consumed.
                        self.finish_session(session, keep);
                        return other;
                    }
                }
            }
        }
    }

    /// Shared seal path: warm seal-memo lookup (valid because the TPM's
    /// SIV nonce makes equal inputs seal to byte-identical blobs), then
    /// the authorized command on miss.
    fn seal_cached(
        &mut self,
        key: SealKey,
        pd: [u8; 20],
        cmd: impl Fn(&mut Tpm, &CommandAuth) -> TpmResult<SealedBlob>,
    ) -> FlickerResult<SealedBlob> {
        if self.machine.warm().enabled() {
            if let Some(blob) = self.machine.warm_mut().lookup_seal(&key) {
                let saved = self.machine.tpm().timing().seal;
                let now = self.machine.clock().now();
                if let Some(t) = self.machine.tracer() {
                    t.counter_add("warm.hit", 1);
                    // The memo hit skipped a TPM_Seal; record the avoided
                    // cost (attribution reports it separately from wall).
                    t.charge(now, "warm_saved.seal", saved);
                }
                // Keep the op-log shape: the skipped seal still appears,
                // with the (zero) time it actually took.
                return Ok(self.logged_self("seal", |_| blob));
            }
            if let Some(t) = self.machine.tracer() {
                t.counter_add("warm.miss", 1);
            }
        }
        let blob = self.logged_self("seal", |s| s.authorized_retrying(pd, &cmd))?;
        self.machine.warm_mut().store_seal(key, blob.clone());
        Ok(blob)
    }

    /// Seals `data` under the *current* value of PCR 17 — i.e. for a future
    /// session of this same PAL (paper §4.3.1).
    pub fn seal_to_self(&mut self, data: &[u8]) -> FlickerResult<SealedBlob> {
        let sel = PcrSelection::pcr17();
        let digest = self.machine.tpm_op(|t| t.pcrs().composite_hash(&sel))?;
        let pd = Tpm::param_digest(&[b"TPM_Seal", data, &sel.encode(), &digest]);
        let key = SealKey {
            data: data.to_vec(),
            selection: sel.encode(),
            digest_at_release: digest,
            blob_auth: WELL_KNOWN_AUTH,
        };
        let owned = data.to_vec();
        self.seal_cached(key, pd, move |t, auth| {
            t.seal(&owned, &sel, &WELL_KNOWN_AUTH, auth)
        })
    }

    /// Seals `data` so that only a PAL whose post-`SKINIT` PCR 17 equals
    /// `target_pcr17` can unseal it (a *different* future PAL, §4.3.1).
    pub fn seal_for_pal(
        &mut self,
        data: &[u8],
        target_pcr17: PcrValue,
    ) -> FlickerResult<SealedBlob> {
        let sel = PcrSelection::pcr17();
        let digest = flicker_tpm::seal::digest_at_release_for(&sel, &[target_pcr17]);
        let pd = Tpm::param_digest(&[b"TPM_Seal", data, &sel.encode(), &digest]);
        let key = SealKey {
            data: data.to_vec(),
            selection: sel.encode(),
            digest_at_release: digest,
            blob_auth: WELL_KNOWN_AUTH,
        };
        let owned = data.to_vec();
        self.seal_cached(key, pd, move |t, auth| {
            t.seal_for_future(&owned, &sel, &[target_pcr17], &WELL_KNOWN_AUTH, auth)
        })
    }

    /// Unseals a blob (succeeds only if PCR 17 currently matches the
    /// blob's release policy). Never cached: the PCR policy check must run
    /// against the TPM's *current* state.
    pub fn unseal(&mut self, blob: &SealedBlob) -> FlickerResult<Vec<u8>> {
        let pd = Tpm::param_digest(&[b"TPM_Unseal", blob.as_bytes()]);
        Ok(self.logged_self("unseal", |s| {
            s.authorized_retrying(pd, |t, auth| t.unseal(blob, auth))
        })?)
    }

    /// Raw TPM access with automatic clock charging, for operations the
    /// helpers above do not cover (NV storage, counters).
    pub fn tpm_op<T>(&mut self, f: impl FnOnce(&mut Tpm) -> T) -> T {
        self.machine.tpm_op(f)
    }

    /// Raw TPM access with driver-side `TPM_E_RETRY` retry and backoff
    /// (see [`flicker_machine::TPM_RETRY_BACKOFF`]). `f` runs once per
    /// attempt, so any authorization session must be built inside it.
    pub fn tpm_op_retrying<T>(&mut self, f: impl FnMut(&mut Tpm) -> TpmResult<T>) -> TpmResult<T> {
        self.machine.tpm_op_retrying(f)
    }

    // ----- CPU work (charged crypto helpers) ---------------------------------

    /// Charges arbitrary CPU time (application-specific work).
    pub fn charge_cpu(&mut self, d: Duration) {
        self.machine.charge_cpu(d);
    }

    /// SHA-1 with the hashing cost charged (Table 1's "Hash of Kernel").
    pub fn sha1(&mut self, data: &[u8]) -> [u8; 20] {
        self.logged("sha1", |m| {
            let cost = m.cpu_cost().sha1(data.len());
            m.charge_cpu(cost);
            flicker_crypto::sha1::sha1(data)
        })
    }

    /// HMAC-SHA1 with cost charged.
    pub fn hmac_sha1(&mut self, key: &[u8], data: &[u8]) -> Vec<u8> {
        let cost = self.machine.cpu_cost().sha1(data.len() + 128);
        self.machine.charge_cpu(cost);
        flicker_crypto::hmac::Hmac::<Sha1>::mac(key, data)
    }

    /// Generates an RSA-1024 keypair inside the PAL, seeded from the TPM,
    /// with the measured keygen cost charged (Figure 9a's 185.7 ms mean).
    pub fn rsa1024_keygen(&mut self) -> (RsaPrivateKey, KeygenStats) {
        // One TPM GetRandom to seed (the paper's PALs do the same).
        let _ = self.rng();
        let mut rng = self.rng.clone().expect("seeded");
        let out = self.logged("rsa1024_keygen", |m| {
            let (key, stats) = RsaPrivateKey::generate(1024, &mut rng);
            let cost = m.cpu_cost().rsa1024_keygen(&stats);
            m.charge_cpu(cost);
            (key, stats)
        });
        self.rng = Some(rng);
        out
    }

    /// PKCS#1 v1.5 decryption with the private-op cost charged (Figure 9b).
    pub fn rsa1024_decrypt(
        &mut self,
        key: &RsaPrivateKey,
        ciphertext: &[u8],
    ) -> FlickerResult<Vec<u8>> {
        self.logged("rsa1024_decrypt", |m| {
            let cost = m.cpu_cost().rsa1024_decrypt;
            m.charge_cpu(cost);
            flicker_crypto::pkcs1::decrypt(key, ciphertext)
                .map_err(|e| FlickerError::PalFault(format!("decrypt: {e}")))
        })
    }

    /// PKCS#1 v1.5 signature with the signing cost charged (§7.4.2).
    pub fn rsa1024_sign(&mut self, key: &RsaPrivateKey, msg: &[u8]) -> FlickerResult<Vec<u8>> {
        self.logged("rsa1024_sign", |m| {
            let cost = m.cpu_cost().rsa1024_sign;
            m.charge_cpu(cost);
            flicker_crypto::pkcs1::sign(key, msg)
                .map_err(|e| FlickerError::PalFault(format!("sign: {e}")))
        })
    }

    /// `md5crypt` with its cost charged (the SSH PAL's hash step).
    pub fn md5crypt(&mut self, password: &[u8], salt: &[u8]) -> String {
        self.logged("md5crypt", |m| {
            let cost = m.cpu_cost().md5crypt;
            m.charge_cpu(cost);
            flicker_crypto::md5crypt::md5crypt(password, salt)
        })
    }

    /// Symmetric processing cost helper (AES/RC4 bulk work).
    pub fn charge_symmetric(&mut self, len: usize) {
        let cost = self.machine.cpu_cost().symmetric(len);
        self.machine.charge_cpu(cost);
    }
}

/// Adapter running a PalVM program against a [`PalContext`].
pub(crate) struct VmBusAdapter<'c, 'm> {
    pub(crate) ctx: &'c mut PalContext<'m>,
}

impl flicker_palvm::VmBus for VmBusAdapter<'_, '_> {
    fn load_u8(&mut self, addr: u32) -> Result<u8, String> {
        self.ctx
            .read_logical(addr, 1)
            .map(|v| v[0])
            .map_err(|e| e.to_string())
    }

    fn store_u8(&mut self, addr: u32, v: u8) -> Result<(), String> {
        self.ctx
            .write_logical(addr, &[v])
            .map_err(|e| e.to_string())
    }

    fn hcall(&mut self, num: u32, regs: &mut [u32; flicker_palvm::NUM_REGS]) -> Result<(), String> {
        match num {
            // 0: emit one output byte from r0.
            0 => self
                .ctx
                .write_output(&[regs[0] as u8])
                .map_err(|e| e.to_string()),
            // 1: report a 32-bit word from r0 (little-endian).
            1 => self
                .ctx
                .write_output(&regs[0].to_le_bytes())
                .map_err(|e| e.to_string()),
            // 2: SHA-1 of logical memory [r1, r1+r2), digest written to
            //    logical r3 (the TPM-utilities hashing service; cost
            //    charged at the modelled CPU rate).
            2 => {
                let data = self
                    .ctx
                    .read_logical(regs[1], regs[2])
                    .map_err(|e| e.to_string())?;
                let digest = self.ctx.sha1(&data);
                self.ctx
                    .write_logical(regs[3], &digest)
                    .map_err(|e| e.to_string())
            }
            // 3: r0 <- 4 random bytes from the TPM.
            3 => {
                let bytes = self.ctx.tpm_get_random(4);
                regs[0] = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
                Ok(())
            }
            // 4: extend PCR 17 with the 20-byte digest at logical r1.
            4 => {
                let digest: [u8; 20] = self
                    .ctx
                    .read_logical(regs[1], 20)
                    .map_err(|e| e.to_string())?
                    .try_into()
                    .expect("20 bytes");
                self.ctx.pcr17_extend(&digest).map_err(|e| e.to_string())?;
                Ok(())
            }
            // 5: emit r2 bytes at logical r1 as PAL output.
            5 => {
                let data = self
                    .ctx
                    .read_logical(regs[1], regs[2])
                    .map_err(|e| e.to_string())?;
                self.ctx.write_output(&data).map_err(|e| e.to_string())
            }
            // 6: unseal the blob at logical [r1, r1+r2) (succeeds only
            //    when PCR 17 matches its release policy), write the
            //    plaintext at logical r3, and return its length in r0.
            //    The verifier treats the plaintext region as tainted:
            //    secret bytes may only leave through a release point.
            6 => {
                let blob_bytes = self
                    .ctx
                    .read_logical(regs[1], regs[2])
                    .map_err(|e| e.to_string())?;
                let blob = SealedBlob::from_bytes(blob_bytes);
                let plain = self.ctx.unseal(&blob).map_err(|e| e.to_string())?;
                self.ctx
                    .write_logical(regs[3], &plain)
                    .map_err(|e| e.to_string())?;
                regs[0] = plain.len() as u32;
                Ok(())
            }
            other => Err(format!("unknown hypercall {other}")),
        }
    }
}
