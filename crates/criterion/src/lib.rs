//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! this minimal, dependency-free implementation of the criterion API subset
//! the repo's benches use. Behaviour:
//!
//! * invoked with `--bench` (what `cargo bench` passes): each benchmark
//!   runs a short timed loop and prints its mean iteration time;
//! * invoked any other way (e.g. built-and-run by `cargo test`): each
//!   benchmark body runs exactly once, as a smoke test.

use std::time::{Duration, Instant};

/// How long the measurement loop runs per benchmark in `--bench` mode.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Iteration cap per benchmark in `--bench` mode.
const MAX_ITERS: u64 = 1_000;

/// Execution mode, decided once from argv.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full timed runs (`cargo bench`).
    Measure,
    /// One iteration per benchmark (`cargo test` smoke run).
    Smoke,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// Per-benchmark driver handed to the closure.
pub struct Bencher {
    mode: Mode,
    /// Mean iteration time recorded by [`Bencher::iter`].
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it once in smoke mode or in a bounded loop in
    /// measure mode. The closure's return value is discarded (it exists so
    /// the compiler cannot optimise the body away).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(f());
                self.iters = 1;
            }
            Mode::Measure => {
                // Warm-up.
                std::hint::black_box(f());
                let start = Instant::now();
                let mut iters = 0u64;
                while iters < MAX_ITERS && (iters == 0 || start.elapsed() < MEASURE_BUDGET) {
                    std::hint::black_box(f());
                    iters += 1;
                }
                self.mean = Some(start.elapsed() / iters.max(1) as u32);
                self.iters = iters;
            }
        }
    }
}

/// Throughput annotation (accepted and echoed, not analysed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The top-level benchmark harness.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: mode_from_args(),
        }
    }
}

fn run_one(mode: Mode, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode,
        mean: None,
        iters: 0,
    };
    f(&mut b);
    match (mode, b.mean) {
        (Mode::Measure, Some(mean)) => {
            println!("bench {label:<50} {mean:>12.2?}/iter ({} iters)", b.iters);
        }
        (Mode::Measure, None) => println!("bench {label:<50} (no iter call)"),
        (Mode::Smoke, _) => println!("bench {label:<50} ok (smoke)"),
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(self.mode, name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let mode = self.mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            mode,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    mode: Mode,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput (echoed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.mode, &label, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(self.mode, &label, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| 1u64 + 2));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("inner", |b| b.iter(|| vec![0u8; 64]));
        g.bench_with_input(BenchmarkId::from_parameter(16), &16usize, |b, &n| {
            b.iter(|| vec![0u8; n])
        });
        g.finish();
    }

    #[test]
    fn smoke_mode_runs_everything_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        sample_bench(&mut c);
    }

    #[test]
    fn measure_mode_reports_a_mean() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        sample_bench(&mut c);
    }
}
