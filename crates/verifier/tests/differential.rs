//! The differential soundness property for the constant-time discipline:
//! **verifier acceptance implies no runtime taint fault** (and, as
//! before, no safety fault). The static shadow set over-approximates the
//! runtime one, so a program the ct pass clears must run to completion
//! under `ShadowTaint` without tripping `VmFault::TaintFault`.
//!
//! Divergences are escalated loudly: the offending program is dumped as
//! a JSONL flight-recorder record under the target directory so the
//! exact repro (program bytes + seed) survives the test run.

use flicker_verifier::oracle::{
    check_program, differential_sweep, dump_divergences, generate_program, Outcome,
};
use proptest::prelude::*;

/// Writes the divergence record somewhere durable and returns the path
/// (best-effort: falls back to a temp dir if target/ isn't writable).
fn record(d: &flicker_verifier::oracle::Divergence) -> String {
    let dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("../../target"));
    let path = dir.join(format!("taint-divergence-{}.jsonl", d.seed));
    match dump_divergences(std::slice::from_ref(d), &path) {
        Ok(()) => path.display().to_string(),
        Err(_) => format!("(unwritable) {}", d.to_json_line()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// ≥ 500 generated programs (over and above the deterministic sweep
    /// below): acceptance implies a taint-clean, safety-clean run.
    #[test]
    fn accepted_programs_never_taint_fault(seed in any::<u64>()) {
        let code = generate_program(seed);
        let (outcome, verdict, divergence) = check_program(&code, seed);
        if outcome == Outcome::Diverged {
            let d = divergence.expect("diverged outcome carries a record");
            let path = record(&d);
            prop_assert!(
                false,
                "soundness divergence (recorded at {path}):\n{}\n{}",
                d.fault,
                verdict.report()
            );
        }
    }
}

/// The deterministic sweep the CI gate runs must be non-vacuous: a
/// healthy share of accepted programs (the property is exercised), some
/// ct rejections (the ct pass actually fires on this generator), and —
/// the property itself — zero divergences.
#[test]
fn deterministic_sweep_is_sound_and_non_vacuous() {
    let stats = differential_sweep(500, 0xF11C_4E2A);
    assert_eq!(stats.total, 500);
    assert!(
        stats.divergences.is_empty(),
        "{} divergence(s):\n{}",
        stats.divergences.len(),
        stats
            .divergences
            .iter()
            .map(|d| d.to_json_line())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        stats.accepted >= 50,
        "only {}/500 accepted — generator too hostile to exercise the property",
        stats.accepted
    );
    assert!(
        stats.ct_rejected >= 10,
        "only {}/500 ct-rejected — the ct pass never fires on this generator",
        stats.ct_rejected
    );
}

/// The five shipped application PALs run taint-clean under the runtime
/// monitor (the dynamic half of the claim `checks.rs` makes statically),
/// and the shipped leaky gate actually faults — the oracle detects at
/// runtime exactly what the static pass rejects.
#[test]
fn builtins_run_clean_under_the_monitor_and_the_leaky_gate_faults() {
    use flicker_palvm::progs;
    // hello_world and kernel_hasher/storage_auth/password_gate read
    // inputs the oracle bus pre-fills with a deterministic pattern; all
    // must finish without a taint fault (host refusals are fine).
    for (name, p) in [
        ("hello_world", progs::hello_world()),
        ("trial_division", progs::trial_division()),
        ("kernel_hasher", progs::kernel_hasher()),
        ("password_gate", progs::password_gate()),
        ("storage_auth", progs::storage_auth()),
    ] {
        match flicker_verifier::oracle::run_shadowed(&p.code, 1) {
            Ok(_) => {}
            Err(f) => assert!(
                flicker_verifier::oracle::allowed_fault(&f),
                "{name} hit a disallowed fault under the monitor: {f}"
            ),
        }
    }
    let leaky = progs::password_gate_leaky();
    let r = flicker_verifier::oracle::run_shadowed(&leaky.code, 1);
    assert!(
        matches!(r, Err(flicker_palvm::VmFault::TaintFault { .. })),
        "the leaky gate must taint-fault at runtime, got {r:?}"
    );
}
