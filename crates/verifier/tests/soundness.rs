//! The soundness property the verifier exists for: **acceptance implies
//! no safety fault at run time**. A program the verifier passes may still
//! run out of fuel, divide by zero, overflow the call stack, or have a
//! hypercall refused by the host — those are availability faults the
//! environment absorbs — but it must never raise a `MemoryFault`,
//! `PcOutOfRange`, `IllegalInstruction`, or `CallStackUnderflow` when run
//! under the session's start-up conventions on a window-enforcing bus.
//!
//! Two generators feed the property: a structured one composing fragments
//! the verifier *should* accept (so the property is exercised, not
//! vacuous), and a raw-bytes one where acceptance is rare but the few
//! survivors still must run clean.

use flicker_palvm::{run_with_regs, Insn, Opcode, VmBus, VmFault, INSN_LEN, NUM_REGS};
use flicker_verifier::{verify, VerifierConfig};
use proptest::prelude::*;

/// Faults an accepted program is *allowed* to raise: resource exhaustion
/// and host refusals, which the SLB Core turns into a failed (but safely
/// contained) session.
fn allowed(fault: &VmFault) -> bool {
    matches!(
        fault,
        VmFault::OutOfFuel
            | VmFault::DivideByZero(_)
            | VmFault::HcallFault { .. }
            | VmFault::CallStackOverflow(_)
    )
}

/// A bus enforcing exactly the memory window the verifier proves against:
/// loads anywhere in `[inputs_base, window_end)`, stores up to the usable
/// output bytes, everything else refused. Hypercalls mirror the
/// `VmBusAdapter` surface, with the registers the verifier treats as
/// unknown (`r0` after `hcall 3`/`hcall 6`) driven adversarially from a
/// deterministic stream.
struct WindowBus {
    cfg: VerifierConfig,
    ram: Vec<u8>,
    stream: u64,
}

impl WindowBus {
    fn new(inputs: &[u8], seed: u64) -> Self {
        let cfg = VerifierConfig::default();
        let mut ram = vec![0u8; (cfg.window_end - cfg.inputs_base) as usize];
        ram[..inputs.len()].copy_from_slice(inputs);
        WindowBus {
            cfg,
            ram,
            stream: seed | 1,
        }
    }

    /// xorshift64: the adversarial value stream for host-written registers.
    fn next(&mut self) -> u32 {
        self.stream ^= self.stream << 13;
        self.stream ^= self.stream >> 7;
        self.stream ^= self.stream << 17;
        self.stream as u32
    }

    fn load_index(&self, addr: u32) -> Result<usize, String> {
        if addr < self.cfg.inputs_base || addr >= self.cfg.window_end {
            return Err(format!("load outside window ({addr:#x})"));
        }
        Ok((addr - self.cfg.inputs_base) as usize)
    }

    fn store_index(&self, addr: u32) -> Result<usize, String> {
        let store_end = self.cfg.outputs_base + self.cfg.outputs_max;
        if addr < self.cfg.inputs_base || addr >= store_end {
            return Err(format!("store outside window ({addr:#x})"));
        }
        Ok((addr - self.cfg.inputs_base) as usize)
    }

    fn read_span(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, String> {
        let end = addr
            .checked_add(len)
            .ok_or_else(|| "span wraps the address space".to_string())?;
        let mut out = Vec::with_capacity(len as usize);
        for a in addr..end {
            out.push(self.ram[self.load_index(a)?]);
        }
        Ok(out)
    }

    fn write_span(&mut self, addr: u32, bytes: &[u8]) -> Result<(), String> {
        for (i, b) in bytes.iter().enumerate() {
            let idx = self.store_index(addr.wrapping_add(i as u32))?;
            self.ram[idx] = *b;
        }
        Ok(())
    }
}

impl VmBus for WindowBus {
    fn load_u8(&mut self, addr: u32) -> Result<u8, String> {
        let idx = self.load_index(addr)?;
        Ok(self.ram[idx])
    }

    fn store_u8(&mut self, addr: u32, v: u8) -> Result<(), String> {
        let idx = self.store_index(addr)?;
        self.ram[idx] = v;
        Ok(())
    }

    fn hcall(&mut self, num: u32, regs: &mut [u32; NUM_REGS]) -> Result<(), String> {
        match num {
            // Output a byte / word from r0: the host buffers it.
            0 | 1 => Ok(()),
            // sha1([r1, r1+r2)) -> [r3, r3+20).
            2 => {
                let data = self.read_span(regs[1], regs[2])?;
                let digest = flicker_crypto::sha1::sha1(&data);
                self.write_span(regs[3], &digest)
            }
            // TPM randomness -> r0 (verifier models r0 as unknown).
            3 => {
                regs[0] = self.next();
                Ok(())
            }
            // Extend PCR 17 with the digest at [r1, r1+20).
            4 => self.read_span(regs[1], 20).map(|_| ()),
            // Output the region [r1, r1+r2).
            5 => {
                if regs[2] > self.cfg.outputs_max {
                    return Err("output larger than the output page".to_string());
                }
                self.read_span(regs[1], regs[2]).map(|_| ())
            }
            // Unseal [r1, r1+r2) into [r3, ...); plaintext length -> r0.
            // The verifier treats the written r0 as unknown, so drive it
            // from the adversarial stream rather than the honest length.
            6 => {
                let blob = self.read_span(regs[1], regs[2])?;
                self.write_span(regs[3], &blob)?;
                regs[0] = self.next();
                Ok(())
            }
            _ => Err(format!("unknown hypercall {num}")),
        }
    }
}

/// Runs `code` exactly as the SLB Core would (r14/r13/r12 conventions,
/// zeroed scratch registers) and asserts the soundness contract.
fn assert_accepted_runs_safely(code: &[u8], seed: u64) -> Result<(), String> {
    let cfg = VerifierConfig::default();
    let inputs: Vec<u8> = (0..cfg.inputs_max)
        .map(|i| (i as u8).wrapping_mul(37))
        .collect();
    let mut bus = WindowBus::new(&inputs, seed);
    let mut regs = [0u32; NUM_REGS];
    regs[14] = cfg.inputs_base;
    regs[13] = cfg.outputs_base;
    regs[12] = inputs.len() as u32;
    match run_with_regs(code, &mut bus, 100_000, regs) {
        Ok(_) => Ok(()),
        Err(f) if allowed(&f) => Ok(()),
        Err(f) => Err(format!("verified program faulted: {f}")),
    }
}

/// Encodes a fragment of instructions from one raw descriptor. Fragments
/// stay inside the envelope the verifier accepts: arithmetic over
/// r0..r11, window-respecting memory relative to r14/r13, counted loops
/// with a provably decreasing counter, known hypercalls with their
/// argument registers written, and a skip-over call/ret pair.
fn push_fragment(code: &mut Vec<Insn>, d: (u8, u8, u8, u8, u32)) {
    let (kind, a, b, c, imm) = d;
    let insn = |op, rd, rs1, rs2, imm| Insn {
        op,
        rd,
        rs1,
        rs2,
        imm,
    };
    use Opcode::*;
    match kind % 7 {
        // Straight-line arithmetic (r0..r11; divide faults are allowed).
        0 => {
            const OPS: [Opcode; 12] =
                [Add, Sub, Mul, Divu, Modu, And, Or, Xor, Shl, Shr, Mov, Addi];
            let op = OPS[(b % 12) as usize];
            let (rd, rs1, rs2) = (a % 12, c % 12, (a ^ c) % 12);
            match op {
                Mov => code.push(insn(Mov, rd, rs1, 0, 0)),
                Addi => code.push(insn(Addi, rd, rs1, 0, imm % 4096)),
                _ => code.push(insn(op, rd, rs1, rs2, 0)),
            }
        }
        // Constant load.
        1 => code.push(insn(Movi, a % 12, 0, 0, imm)),
        // Loads from the input page (imm kept inside the window).
        2 => {
            let op = if b.is_multiple_of(2) { Ldb } else { Ldw };
            code.push(insn(op, a % 12, 14, 0, imm % (0xE00 - 4)));
        }
        // Stores: scratch into the input page, results into the output page.
        3 => {
            let (op, base, bound) = if b.is_multiple_of(2) {
                (Stw, 14u8, 0xE00 - 4)
            } else {
                (Stb, 13u8, 0x1000 - 8)
            };
            code.push(insn(op, 0, base, c % 12, imm % bound));
        }
        // A counted loop: movi counter, body, movi step, sub, jnz header.
        4 => {
            let counter = a % 6; // r0..r5
            let step = 6 + b % 3; // r6..r8, distinct from counter and body
            let here = code.len() as u32;
            code.push(insn(Movi, counter, 0, 0, 1 + imm % 24));
            code.push(insn(Add, 9, 10, 11, 0));
            code.push(insn(Movi, step, 0, 0, 1));
            code.push(insn(Sub, counter, counter, step, 0));
            code.push(insn(Jnz, 0, counter, 0, here + 1));
        }
        // Hypercalls with their argument registers freshly written.
        5 => match c % 4 {
            0 => {
                code.push(insn(Movi, 0, 0, 0, imm));
                code.push(insn(Hcall, 0, 0, 0, (b % 2) as u32)); // out byte/word
            }
            1 => {
                code.push(insn(Hcall, 0, 0, 0, 3)); // randomness -> r0
                code.push(insn(And, a % 12, 0, 0, 0));
            }
            2 => {
                // Hash a prefix of the inputs into scratch at r14+0x200.
                code.push(insn(Mov, 1, 14, 0, 0));
                code.push(insn(Movi, 2, 0, 0, 1 + imm % 64));
                code.push(insn(Addi, 3, 14, 0, 0x200));
                code.push(insn(Hcall, 0, 0, 0, 2));
            }
            _ => {
                // Extend PCR 17 with whatever sits at the input base.
                code.push(insn(Mov, 1, 14, 0, 0));
                code.push(insn(Hcall, 0, 0, 0, 4));
            }
        },
        // call f; jmp past; f: arith; ret.
        _ => {
            let here = code.len() as u32;
            code.push(insn(Call, 0, 0, 0, here + 2));
            code.push(insn(Jmp, 0, 0, 0, here + 4));
            code.push(insn(Add, 9, 10, 11, 0));
            code.push(insn(Ret, 0, 0, 0, 0));
        }
    }
}

fn insn(op: Opcode, rd: u8, rs1: u8, rs2: u8, imm: u32) -> Insn {
    Insn {
        op,
        rd,
        rs1,
        rs2,
        imm,
    }
}

fn encode(insns: &[Insn]) -> Vec<u8> {
    let mut code = Vec::with_capacity(insns.len() * INSN_LEN);
    for i in insns {
        code.extend_from_slice(&i.encode());
    }
    code
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Structured programs: most are accepted, and every accepted one
    /// must run without a safety fault.
    #[test]
    fn accepted_structured_programs_never_fault(
        frags in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u32>()),
            1..8,
        ),
        seed in any::<u64>(),
    ) {
        let mut insns = Vec::new();
        for d in &frags {
            push_fragment(&mut insns, *d);
        }
        insns.push(Insn { op: Opcode::Halt, rd: 0, rs1: 0, rs2: 0, imm: 0 });
        let code = encode(&insns);
        let verdict = verify(&code);
        prop_assume!(verdict.is_ok());
        if let Err(msg) = assert_accepted_runs_safely(&code, seed) {
            prop_assert!(false, "{msg}\n{}", verdict.report());
        }
    }

    /// Raw byte soup: acceptance is rare (decode alone rejects most), but
    /// the survivors still carry the full guarantee.
    #[test]
    fn accepted_random_bytes_never_fault(
        bytes in proptest::collection::vec(any::<u8>(), INSN_LEN..32 * INSN_LEN),
        seed in any::<u64>(),
    ) {
        let mut code = bytes;
        code.truncate(code.len() - code.len() % INSN_LEN);
        let verdict = verify(&code);
        // Rejection is the overwhelmingly common (and correct) outcome for
        // byte soup; the property only binds the rare survivors.
        if verdict.is_ok() {
            if let Err(msg) = assert_accepted_runs_safely(&code, seed) {
                prop_assert!(false, "{msg}\n{}", verdict.report());
            }
        }
    }
}

/// The structured generator must actually exercise the property: a fixed
/// sweep over descriptor space has to produce a healthy count of
/// verifier-accepted programs (guards against a vacuous proptest).
#[test]
fn structured_generator_is_not_vacuous() {
    let mut accepted = 0usize;
    let mut total = 0usize;
    for kind in 0..7u8 {
        for a in 0..4u8 {
            for c in 0..4u8 {
                let mut insns = Vec::new();
                push_fragment(&mut insns, (kind, a, a.wrapping_mul(3), c, 0x1234_5678));
                push_fragment(&mut insns, ((kind + 1) % 7, c, a, a ^ c, 77));
                insns.push(insn(Opcode::Halt, 0, 0, 0, 0));
                let code = encode(&insns);
                total += 1;
                if verify(&code).is_ok() {
                    accepted += 1;
                }
            }
        }
    }
    assert!(
        accepted * 2 >= total,
        "only {accepted}/{total} structured programs verified"
    );
}

/// End-to-end regression pin: the canned detector program both verifies
/// and runs clean on the window bus (the exact claim the apps crate
/// relies on when it ships bytecode PALs).
#[test]
fn kernel_hasher_verifies_and_runs_clean() {
    let prog = flicker_palvm::progs::kernel_hasher();
    let verdict = verify(&prog.code);
    assert!(verdict.is_ok(), "{}", verdict.report());
    assert_accepted_runs_safely(&prog.code, 7).unwrap();
}
