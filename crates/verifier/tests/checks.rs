//! Per-check rejection tests (one crafted program per check class) and
//! the "every shipped program verifies clean" acceptance test.

use flicker_palvm::{assemble, progs, Insn, Opcode};
use flicker_verifier::{verify, verify_program, CheckError, VerifierConfig};

fn classes(code: &[u8]) -> Vec<&'static str> {
    verify(code).errors.iter().map(|e| e.class()).collect()
}

// ----- check 1: decode soundness ------------------------------------------

#[test]
fn rejects_undecodable_instruction() {
    let mut code = assemble("movi r0, 1\nhalt").unwrap().code;
    code[0] = 0xC3; // not a PalVM opcode
    let v = verify(&code);
    assert!(!v.is_ok());
    assert!(matches!(v.errors[0], CheckError::Decode(_)));
}

#[test]
fn rejects_out_of_range_branch_target() {
    // Hand-encoded: the assembler itself now refuses this, so build the
    // bytes directly.
    let code: Vec<u8> = [
        Insn {
            op: Opcode::Jmp,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 1000,
        },
        Insn {
            op: Opcode::Halt,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        },
    ]
    .iter()
    .flat_map(|i| i.encode())
    .collect();
    assert!(classes(&code).contains(&"decode"));
}

#[test]
fn rejects_fall_through_off_the_end() {
    let p = assemble("movi r0, 1\nmovi r1, 2").unwrap();
    assert!(classes(&p.code).contains(&"decode"));
}

// ----- check 2: memory bounds ---------------------------------------------

#[test]
fn rejects_load_outside_the_window() {
    // The adversarial scanner aimed at kernel memory: provably out of
    // window.
    let p = progs::memory_scanner(0x30_0000, 64);
    let v = verify_program(&p);
    assert!(!v.is_ok());
    assert!(v
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::MemoryBounds(_))));
}

#[test]
fn rejects_store_below_the_window() {
    let p = assemble("movi r1, 16\nmovi r2, 7\nstb [r1+0], r2\nhalt").unwrap();
    assert!(classes(&p.code).contains(&"memory-bounds"));
}

#[test]
fn accepts_scanner_aimed_at_its_own_inputs() {
    // The same scanner constrained to the input page verifies: the
    // branch refinement caps the loop counter below the exact length.
    let cfg = VerifierConfig::default();
    let p = progs::memory_scanner(cfg.inputs_base, 4);
    let v = verify_program(&p);
    assert!(v.is_ok(), "{}", v.report());
}

// ----- check 3: termination ------------------------------------------------

#[test]
fn rejects_unbounded_loop() {
    let p = assemble("loop: jmp loop").unwrap();
    let v = verify_program(&p);
    assert!(
        v.errors
            .iter()
            .any(|e| matches!(e, CheckError::MayDiverge(_))),
        "{}",
        v.report()
    );
}

#[test]
fn rejects_loop_with_even_step() {
    // Counter stepping by 2 can hop over zero and spin forever.
    let p = assemble("movi r1, 5\nloop: movi r2, 2\nsub r1, r1, r2\njnz r1, loop\nhalt").unwrap();
    assert!(classes(&p.code).contains(&"termination"));
}

#[test]
fn rejects_recursion() {
    let p = assemble("f: call f\nhalt").unwrap();
    assert!(classes(&p.code).contains(&"termination"));
}

#[test]
fn accepts_counted_loop() {
    let p = assemble(
        "movi r1, 10\nmovi r2, 0\nloop: add r2, r2, r1\nmovi r3, 1\nsub r1, r1, r3\njnz r1, loop\nhalt",
    )
    .unwrap();
    let v = verify_program(&p);
    assert!(v.is_ok(), "{}", v.report());
}

// ----- check 4: hypercall discipline ---------------------------------------

#[test]
fn rejects_unknown_hypercall_number() {
    // Hand-encoded: the assembler refuses unknown numbers now.
    let code: Vec<u8> = [
        Insn {
            op: Opcode::Hcall,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 99,
        },
        Insn {
            op: Opcode::Halt,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        },
    ]
    .iter()
    .flat_map(|i| i.encode())
    .collect();
    assert!(classes(&code).contains(&"hypercall"));
}

#[test]
fn rejects_unwritten_argument_register() {
    // r0 is never written before the output hypercall on the taken path.
    let p = assemble("jz r5, out\nmovi r0, 1\nout: hcall 0\nhalt").unwrap();
    assert!(classes(&p.code).contains(&"hypercall"));
}

#[test]
fn rejects_unsealed_secret_flowing_to_output() {
    // Unseal into scratch, load a plaintext byte, emit it raw: the
    // classic exfiltration the discipline exists to stop.
    let src = "
        mov r1, r14          ; blob at inputs
        movi r2, 32          ; blob length
        addi r3, r14, 0x200  ; plaintext scratch
        hcall 6              ; unseal (taint source)
        ldb r0, [r3+0]
        hcall 0              ; leak a secret byte
        halt";
    let p = assemble(src).unwrap();
    assert!(classes(&p.code).contains(&"hypercall"));
}

#[test]
fn accepts_secret_released_through_hash() {
    // Unseal, hash the plaintext (release point), emit the digest only.
    let src = "
        mov r1, r14
        movi r2, 32
        addi r3, r14, 0x200
        hcall 6              ; unseal
        mov r1, r3
        movi r2, 32
        addi r3, r14, 0x400
        hcall 2              ; sha1(plaintext) -> digest (release)
        mov r1, r3
        movi r2, 20
        hcall 5              ; output the digest
        halt";
    let p = assemble(src).unwrap();
    let v = verify_program(&p);
    assert!(v.is_ok(), "{}", v.report());
}

// ----- check 6: constant-time discipline -----------------------------------

/// Common prologue: unseal 32 bytes of "secret" to `r14+0x200`.
const UNSEAL: &str = "
        mov r1, r14
        movi r2, 32
        addi r3, r14, 0x200
        hcall 6
";

#[test]
fn rejects_branch_on_secret() {
    let src = format!(
        "{UNSEAL}
        ldb r5, [r3+0]       ; secret byte
        jz r5, done          ; branch on it
        movi r6, 1
    done:
        halt"
    );
    let p = assemble(&src).unwrap();
    let v = verify_program(&p);
    assert!(
        v.errors
            .iter()
            .any(|e| matches!(e, CheckError::SecretBranch(_))),
        "{}",
        v.report()
    );
}

#[test]
fn rejects_secret_indexed_access() {
    let src = format!(
        "{UNSEAL}
        ldb r5, [r3+0]       ; secret byte
        add r6, r14, r5      ; secret-derived address
        ldb r7, [r6+0]       ; secret-indexed load
        halt"
    );
    let p = assemble(&src).unwrap();
    let v = verify_program(&p);
    assert!(
        v.errors
            .iter()
            .any(|e| matches!(e, CheckError::SecretIndex(_))),
        "{}",
        v.report()
    );
}

#[test]
fn rejects_secret_loop_bound() {
    // The early-exit compare: a secret-conditioned branch that leaves
    // the loop, so the iteration count leaks the secret. Escalated from
    // SecretBranch to SecretLoopBound.
    let src = format!(
        "{UNSEAL}
        movi r5, 0
        movi r6, 32
    loop:
        jlt r5, r6, body
        jmp done
    body:
        add r7, r3, r5
        ldb r8, [r7+0]       ; secret byte
        jnz r8, done         ; early exit on it (the timing leak)
        movi r9, 1
        add r5, r5, r9
        jmp loop
    done:
        halt"
    );
    let p = assemble(&src).unwrap();
    let v = verify_program(&p);
    assert!(
        v.errors
            .iter()
            .any(|e| matches!(e, CheckError::SecretLoopBound(_))),
        "{}",
        v.report()
    );
}

#[test]
fn rejects_secret_hypercall_operand() {
    let src = format!(
        "{UNSEAL}
        ldb r2, [r3+0]       ; secret byte as a *length* operand
        mov r1, r14
        addi r3, r14, 0x400
        hcall 2              ; release point or not, operands stay public
        halt"
    );
    let p = assemble(&src).unwrap();
    let v = verify_program(&p);
    assert!(
        v.errors
            .iter()
            .any(|e| matches!(e, CheckError::SecretHcallArg(_))),
        "{}",
        v.report()
    );
}

#[test]
fn ct_findings_set_their_classes_and_ct_clean() {
    let src = format!(
        "{UNSEAL}
        ldb r5, [r3+0]
        jz r5, done
        movi r6, 1
    done:
        halt"
    );
    let p = assemble(&src).unwrap();
    let v = verify_program(&p);
    assert!(!v.ct_clean());
    assert!(v
        .errors
        .iter()
        .any(|e| e.is_ct() && e.class() == "ct-branch"));
    // A ct finding shows up in the JSON report with its class.
    assert!(v.to_json().contains("\"class\":\"ct-branch\""));
    // And a fully clean program reports ct_clean.
    let ok = verify_program(&progs::hello_world());
    assert!(ok.ct_clean());
    assert!(ok.to_json().contains("\"verdict\":\"accepted\""));
}

#[test]
fn leaky_password_gate_is_flagged() {
    let v = verify_program(&progs::password_gate_leaky());
    assert!(!v.ct_clean(), "{}", v.report());
    assert!(
        v.errors
            .iter()
            .any(|e| matches!(e, CheckError::SecretLoopBound(_))),
        "early-exit compare must be flagged as a loop-bound leak:\n{}",
        v.report()
    );
}

// ----- check 5: stack hygiene ----------------------------------------------

#[test]
fn rejects_ret_with_empty_stack() {
    let p = assemble("movi r0, 1\nret").unwrap();
    let v = verify_program(&p);
    assert!(v
        .errors
        .iter()
        .any(|e| matches!(e, CheckError::StackHygiene(_))));
}

// ----- acceptance: all shipped programs verify clean -----------------------

#[test]
fn all_canned_programs_verify_clean() {
    let progs = [
        ("hello_world", progs::hello_world()),
        ("trial_division", progs::trial_division()),
        ("kernel_hasher", progs::kernel_hasher()),
        ("password_gate", progs::password_gate()),
        ("storage_auth", progs::storage_auth()),
    ];
    for (name, p) in progs {
        let v = verify_program(&p);
        assert!(v.is_ok(), "{name} must verify:\n{}", v.report());
        assert!(v.ct_clean(), "{name} must be ct-clean:\n{}", v.report());
    }
}

#[test]
fn report_names_the_failing_check() {
    let p = assemble("loop: jmp loop").unwrap();
    let v = verify_program(&p);
    let report = v.report();
    assert!(report.contains("REJECTED"));
    assert!(report.contains("[termination]"));
    let ok = verify_program(&progs::hello_world());
    assert!(ok.report().contains("VERIFIED"));
}
