//! The abstract-interpretation engine: a worklist fixpoint over
//! per-instruction states in the interval × taint × must-written domain
//! (with byte-granular shadow taint over the parameter window), then a
//! reporting pass for checks 2 (memory bounds) and 4 (hypercall
//! discipline).
//!
//! Branch edges refine the tested registers (`jlt r3, r2, body` caps
//! `r3` below `r2` on the taken edge), which is what lets bounded loops
//! like the canned `memory_scanner(inputs, 4)` prove their addresses
//! in-window even after widening sends the raw counter to ⊤.
//!
//! Shadow-taint updates are asymmetric by design: marking a span secret
//! is a weak (may) update over the whole address range the store could
//! hit, while clearing requires an *exactly known* address — the only
//! case where the analysis is certain which bytes were overwritten with
//! public data. The runtime shadow in `flicker_palvm::shadow` performs
//! the same transitions on concrete addresses, so the static set is
//! always a superset of the runtime one (the differential oracle's
//! invariant).

use crate::cfg::Cfg;
use crate::domain::{AbsState, Interval, ShadowBytes, Taint};
use crate::hcall::{spec, HcallKind};
use crate::{CheckError, Diagnostic, VerifierConfig};
use flicker_palvm::{Insn, Opcode};
use std::collections::BTreeMap;

/// Joins per program point before widening kicks in.
const WIDEN_AFTER: u32 = 4;

/// Fixpoint result: the abstract state *entering* each reachable
/// instruction.
#[derive(Debug)]
pub struct Analysis {
    /// Instruction index → joined entry state (absent = unreachable).
    pub in_states: BTreeMap<u32, AbsState>,
}

impl Analysis {
    /// The entry state at `pc`, if the instruction is reachable.
    pub fn at(&self, pc: u32) -> Option<&AbsState> {
        self.in_states.get(&pc)
    }
}

/// The state the SLB Core hands a bytecode PAL: `r14` = input-region
/// address, `r13` = output-region address, `r12` = input length; all
/// other registers zeroed and *unwritten* (the zeroing is the VM's, not
/// the program's). Shadow taint starts all-public over the window.
fn entry_state(config: &VerifierConfig) -> AbsState {
    let mut st = AbsState::zeroed();
    st.regs[14].range = Interval::exact(config.inputs_base);
    st.regs[14].written = true;
    st.regs[13].range = Interval::exact(config.outputs_base);
    st.regs[13].written = true;
    st.regs[12].range = Interval::new(0, config.inputs_max);
    st.regs[12].written = true;
    st.shadow = ShadowBytes::for_window(config.inputs_base, config.window_end - config.inputs_base);
    st
}

/// Widening thresholds: every immediate in the program (±1, since
/// compare bounds refine to `imm - 1` and counters often rest at
/// `imm + 1`), each also offset by the window bases (so *addresses
/// derived from counters* — `r14 + i` with `i < 32` resting at
/// `inputs_base + 31` — have a landing spot too), sorted. A counter held
/// below `jlt rX, rY` with `rY = 32` then widens to 32 instead of ⊤,
/// keeping counter-indexed addressing provable for loops longer than
/// the join budget.
fn thresholds(cfg: &Cfg, config: &VerifierConfig) -> Vec<u32> {
    let bases = [0u32, config.inputs_base, config.outputs_base];
    let mut t: Vec<u32> = cfg
        .insns
        .iter()
        .flat_map(|i| [i.imm.saturating_sub(1), i.imm, i.imm.saturating_add(1)])
        .flat_map(|v| bases.map(|b| b.saturating_add(v)))
        .collect();
    t.extend([config.inputs_base, config.outputs_base, config.window_end]);
    t.sort_unstable();
    t.dedup();
    t
}

/// Runs the fixpoint and returns the per-instruction entry states.
pub fn analyze(cfg: &Cfg, config: &VerifierConfig) -> Analysis {
    // ret -> return continuations (call-site fall-throughs), for the
    // interprocedural propagation.
    let mut ret_targets: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (&site, &callee) in &cfg.call_sites {
        for r in cfg.rets.get(&callee).map(|v| v.as_slice()).unwrap_or(&[]) {
            ret_targets.entry(*r).or_default().push(site + 1);
        }
    }

    let widen_to = thresholds(cfg, config);
    let mut in_states: BTreeMap<u32, AbsState> = BTreeMap::new();
    let mut join_counts: BTreeMap<u32, u32> = BTreeMap::new();
    let mut work = vec![0u32];
    in_states.insert(0, entry_state(config));

    while let Some(pc) = work.pop() {
        let state = in_states[&pc].clone();
        let insn = cfg.insns[pc as usize];
        let out = transfer(&insn, &state, config, None);
        for (succ, succ_state) in edges(&insn, pc, &out, &ret_targets) {
            let (merged, changed) = match in_states.get(&succ) {
                None => (succ_state, true),
                Some(prev) => {
                    let mut joined = prev.join(&succ_state);
                    if joined != *prev {
                        let count = join_counts.entry(succ).or_insert(0);
                        *count += 1;
                        if *count > WIDEN_AFTER {
                            joined = joined.widen(prev, &widen_to);
                        }
                        (joined, true)
                    } else {
                        (joined, false)
                    }
                }
            };
            if changed {
                in_states.insert(succ, merged);
                work.push(succ);
            }
        }
    }
    Analysis { in_states }
}

/// Reporting pass for checks 2 and 4 over the fixpoint states.
pub fn report(cfg: &Cfg, config: &VerifierConfig, analysis: &Analysis) -> Vec<CheckError> {
    let mut errors = Vec::new();
    for (&pc, state) in &analysis.in_states {
        let insn = cfg.insns[pc as usize];
        let mut sink = Some((&mut errors, pc));
        let _ = transfer_inner(&insn, state, config, &mut sink);
    }
    errors
}

/// Successor edges with branch refinement applied to the outgoing state.
/// `call` flows into the callee; `ret` flows to every continuation of a
/// call site that can reach it.
fn edges(
    insn: &Insn,
    pc: u32,
    out: &AbsState,
    ret_targets: &BTreeMap<u32, Vec<u32>>,
) -> Vec<(u32, AbsState)> {
    let mut v = Vec::new();
    match insn.op {
        Opcode::Halt => {}
        Opcode::Ret => {
            for &t in ret_targets.get(&pc).map(|x| x.as_slice()).unwrap_or(&[]) {
                v.push((t, out.clone()));
            }
        }
        Opcode::Jmp => v.push((insn.imm, out.clone())),
        Opcode::Call => v.push((insn.imm, out.clone())),
        Opcode::Jz => {
            if let Some(taken) = refine_eq_zero(out, insn.rs1, true) {
                v.push((insn.imm, taken));
            }
            if let Some(fall) = refine_eq_zero(out, insn.rs1, false) {
                v.push((pc + 1, fall));
            }
        }
        Opcode::Jnz => {
            if let Some(taken) = refine_eq_zero(out, insn.rs1, false) {
                v.push((insn.imm, taken));
            }
            if let Some(fall) = refine_eq_zero(out, insn.rs1, true) {
                v.push((pc + 1, fall));
            }
        }
        Opcode::Jlt => {
            if let Some(taken) = refine_lt(out, insn.rs1, insn.rs2, true) {
                v.push((insn.imm, taken));
            }
            if let Some(fall) = refine_lt(out, insn.rs1, insn.rs2, false) {
                v.push((pc + 1, fall));
            }
        }
        _ => v.push((pc + 1, out.clone())),
    }
    v
}

/// Refine `r == 0` (or `!= 0`); `None` when the edge is infeasible.
fn refine_eq_zero(state: &AbsState, r: u8, zero: bool) -> Option<AbsState> {
    let range = state.regs[r as usize].range;
    let mut out = state.clone();
    if zero {
        if range.lo > 0 {
            return None;
        }
        out.regs[r as usize].range = Interval::exact(0);
    } else {
        if range.hi == 0 {
            return None;
        }
        if range.lo == 0 {
            out.regs[r as usize].range = Interval::new(1.max(range.lo), range.hi.max(1));
        }
    }
    Some(out)
}

/// Refine `a < b` (taken) or `a >= b` (fall-through); `None` when
/// infeasible.
fn refine_lt(state: &AbsState, a: u8, b: u8, taken: bool) -> Option<AbsState> {
    let ra = state.regs[a as usize].range;
    let rb = state.regs[b as usize].range;
    let mut out = state.clone();
    if taken {
        // a < b: a <= b.hi - 1, b >= a.lo + 1.
        if rb.hi == 0 || ra.lo >= rb.hi {
            return None;
        }
        out.regs[a as usize].range = Interval::new(ra.lo, ra.hi.min(rb.hi - 1));
        out.regs[b as usize].range = Interval::new(rb.lo.max(ra.lo + 1), rb.hi);
    } else {
        // a >= b: a >= b.lo, b <= a.hi.
        if ra.hi < rb.lo {
            return None;
        }
        out.regs[a as usize].range = Interval::new(ra.lo.max(rb.lo), ra.hi);
        out.regs[b as usize].range = Interval::new(rb.lo, rb.hi.min(ra.hi));
    }
    Some(out)
}

/// Transfer function; with a `sink`, also emits check-2/check-4
/// diagnostics for this instruction.
fn transfer(
    insn: &Insn,
    state: &AbsState,
    config: &VerifierConfig,
    mut sink: Option<(&mut Vec<CheckError>, u32)>,
) -> AbsState {
    transfer_inner(insn, state, config, &mut sink)
}

#[allow(clippy::too_many_lines)]
fn transfer_inner(
    insn: &Insn,
    state: &AbsState,
    config: &VerifierConfig,
    sink: &mut Option<(&mut Vec<CheckError>, u32)>,
) -> AbsState {
    let mut out = state.clone();
    let reg = |r: u8| state.regs[r as usize];
    let set = |st: &mut AbsState, r: u8, range: Interval, taint: Taint| {
        st.regs[r as usize].range = range;
        st.regs[r as usize].taint = taint;
        st.regs[r as usize].written = true;
    };
    let emit = |sink: &mut Option<(&mut Vec<CheckError>, u32)>,
                e: fn(Diagnostic) -> CheckError,
                r: Option<u8>,
                reason: String| {
        if let Some((errors, pc)) = sink {
            errors.push(e(Diagnostic::new(*pc, r, reason)));
        }
    };

    match insn.op {
        Opcode::Halt
        | Opcode::Jmp
        | Opcode::Jz
        | Opcode::Jnz
        | Opcode::Jlt
        | Opcode::Call
        | Opcode::Ret => {}
        Opcode::Movi => set(&mut out, insn.rd, Interval::exact(insn.imm), Taint::Public),
        Opcode::Mov => set(&mut out, insn.rd, reg(insn.rs1).range, reg(insn.rs1).taint),
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::Divu
        | Opcode::Modu
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::Shr => {
            let (a, b) = (reg(insn.rs1), reg(insn.rs2));
            let range = match insn.op {
                Opcode::Add => a.range.add(&b.range),
                Opcode::Sub => a.range.sub(&b.range),
                Opcode::Mul => a.range.mul(&b.range),
                Opcode::Divu => a.range.divu(&b.range),
                Opcode::Modu => a.range.modu(&b.range),
                Opcode::And => a.range.and(&b.range),
                Opcode::Or | Opcode::Xor => a.range.or_xor(&b.range),
                Opcode::Shl => a.range.shl(&b.range),
                _ => a.range.shr(&b.range),
            };
            set(&mut out, insn.rd, range, a.taint.join(b.taint));
        }
        Opcode::Addi => {
            let a = reg(insn.rs1);
            set(
                &mut out,
                insn.rd,
                a.range.add(&Interval::exact(insn.imm)),
                a.taint,
            );
        }
        Opcode::Ldb | Opcode::Ldw => {
            let width = if insn.op == Opcode::Ldb { 1 } else { 4 };
            let addr = effective(state, insn);
            let taint = check_load(state, config, &addr, width, insn, sink);
            let range = if insn.op == Opcode::Ldb {
                Interval::new(0, 255)
            } else {
                Interval::TOP
            };
            set(&mut out, insn.rd, range, taint);
        }
        Opcode::Stb | Opcode::Stw => {
            let width = if insn.op == Opcode::Stb { 1 } else { 4 };
            let addr = effective(state, insn);
            let span = span_of(&addr, width);
            if !span.within(&config.store_window()) {
                emit(
                    sink,
                    CheckError::MemoryBounds,
                    Some(insn.rs1),
                    format!(
                        "store address range [{:#x}, {:#x}] may leave the writable window [{:#x}, {:#x}]",
                        span.lo,
                        span.hi,
                        config.store_window().lo,
                        config.store_window().hi
                    ),
                );
            }
            if reg(insn.rs2).taint.is_secret() {
                if span.intersects(&config.output_range()) {
                    emit(
                        sink,
                        CheckError::Hypercall,
                        Some(insn.rs2),
                        "tainted (unseal-derived) value stored to the output page without a release point"
                            .to_string(),
                    );
                }
                // Weak update: every byte the store may hit becomes
                // may-secret.
                out.shadow.mark_secret(&span);
            } else if addr.as_exact().is_some() {
                // Strong update: a public value overwrote exactly these
                // bytes, so their secret bits clear.
                out.shadow.clear_secret(&span);
            }
            // Public value at an imprecise address: no change — the
            // may-secret set can only be shrunk by certain overwrites.
        }
        Opcode::Hcall => {
            hcall_transfer(insn, state, &mut out, config, sink);
        }
    }
    out
}

/// Effective address interval of a memory instruction: `rs1 + imm`.
fn effective(state: &AbsState, insn: &Insn) -> Interval {
    state.regs[insn.rs1 as usize]
        .range
        .add(&Interval::exact(insn.imm))
}

/// The closed byte span `[addr.lo, addr.hi + width - 1]` an access of
/// `width` bytes may touch (⊤ when the top would wrap).
fn span_of(addr: &Interval, width: u32) -> Interval {
    match addr.hi.checked_add(width - 1) {
        Some(hi) => Interval::new(addr.lo, hi),
        None => Interval::TOP,
    }
}

/// Bounds-checks a load and returns the loaded value's taint.
fn check_load(
    state: &AbsState,
    config: &VerifierConfig,
    addr: &Interval,
    width: u32,
    insn: &Insn,
    sink: &mut Option<(&mut Vec<CheckError>, u32)>,
) -> Taint {
    let span = span_of(addr, width);
    if !span.within(&config.load_window()) {
        if let Some((errors, pc)) = sink {
            errors.push(CheckError::MemoryBounds(Diagnostic::new(
                *pc,
                Some(insn.rs1),
                format!(
                    "load address range [{:#x}, {:#x}] may leave the readable window [{:#x}, {:#x}]",
                    span.lo,
                    span.hi,
                    config.load_window().lo,
                    config.load_window().hi
                ),
            )));
        }
    }
    if state.shadow.any_secret(&span) {
        Taint::Secret
    } else {
        Taint::Public
    }
}

/// Hypercall transfer + discipline diagnostics.
fn hcall_transfer(
    insn: &Insn,
    state: &AbsState,
    out: &mut AbsState,
    config: &VerifierConfig,
    sink: &mut Option<(&mut Vec<CheckError>, u32)>,
) {
    let emit = |sink: &mut Option<(&mut Vec<CheckError>, u32)>,
                e: fn(Diagnostic) -> CheckError,
                r: Option<u8>,
                reason: String| {
        if let Some((errors, pc)) = sink {
            errors.push(e(Diagnostic::new(*pc, r, reason)));
        }
    };
    let Some(spec) = spec(insn.imm) else {
        emit(
            sink,
            CheckError::Hypercall,
            None,
            format!("unknown hypercall number {}", insn.imm),
        );
        // Conservatively assume an unknown call clobbers r0.
        out.regs[0].range = Interval::TOP;
        out.regs[0].taint = Taint::Secret;
        return;
    };
    for &a in spec.args {
        if !state.regs[a as usize].written {
            emit(
                sink,
                CheckError::Hypercall,
                Some(a),
                format!(
                    "hypercall {} argument register not written on every path",
                    spec.num
                ),
            );
        }
    }
    let r = |i: usize| state.regs[i].range;
    match spec.kind {
        HcallKind::OutputReg => {
            if state.regs[0].taint.is_secret() {
                emit(
                    sink,
                    CheckError::Hypercall,
                    Some(0),
                    "tainted (unseal-derived) register flows into an output hypercall".to_string(),
                );
            }
        }
        HcallKind::OutputMem => {
            let src = span_of(&r(1), r(2).hi.max(1));
            if state.shadow.any_secret(&src) {
                emit(
                    sink,
                    CheckError::Hypercall,
                    Some(1),
                    "output hypercall may emit tainted (unseal-derived) memory without a release point"
                        .to_string(),
                );
            }
        }
        HcallKind::HashRelease => {
            let dst = span_of(&r(3), 20);
            if !dst.within(&config.store_window()) {
                emit(
                    sink,
                    CheckError::MemoryBounds,
                    Some(3),
                    format!(
                        "hash digest destination [{:#x}, {:#x}] may leave the writable window",
                        dst.lo, dst.hi
                    ),
                );
            }
            // The digest is the declared release point: when its
            // destination is exactly known, those 20 bytes become
            // public (strong update). An imprecise destination leaves
            // the shadow untouched — writing public data can only ever
            // reduce secrecy, so skipping the clear stays sound.
            if r(3).as_exact().is_some() {
                out.shadow.clear_secret(&dst);
            }
        }
        HcallKind::Random => {
            out.regs[0].range = Interval::TOP;
            out.regs[0].taint = Taint::Public;
            out.regs[0].written = true;
        }
        HcallKind::PcrExtend => {}
        HcallKind::Unseal => {
            let dst = span_of(&r(3), r(2).hi.max(1));
            if !dst.within(&config.store_window()) {
                emit(
                    sink,
                    CheckError::MemoryBounds,
                    Some(3),
                    format!(
                        "unseal destination [{:#x}, {:#x}] may leave the writable window",
                        dst.lo, dst.hi
                    ),
                );
            }
            // The taint source: every byte the host may write becomes
            // secret. The returned plaintext *length* in r0 stays
            // public — lengths are public metadata in every protocol in
            // this workspace (the runtime shadow makes the same call) —
            // but its *value* is host-chosen, so the interval is ⊤.
            out.shadow.mark_secret(&dst);
            out.regs[0].range = Interval::TOP;
            out.regs[0].taint = Taint::Public;
            out.regs[0].written = true;
        }
    }
}
