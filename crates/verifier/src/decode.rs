//! Check 1: decode soundness.
//!
//! Every 8-byte slot must decode to a known instruction, every
//! `jmp/jz/jnz/jlt/call` target must be an in-range instruction index,
//! and the last slot must not fall through (the program counter would
//! leave the program). Together with the VM's own `pc` checks these are
//! the conditions under which `PcOutOfRange`/`IllegalInstruction` can
//! never fire at runtime.

use crate::{CheckError, Diagnostic};
use flicker_palvm::{Insn, Opcode, INSN_LEN};

/// Runs the decode-soundness check over raw bytes.
pub fn check(code: &[u8]) -> Vec<CheckError> {
    let mut errors = Vec::new();
    if code.is_empty() {
        errors.push(CheckError::Decode(Diagnostic::new(
            0,
            None,
            "empty program",
        )));
        return errors;
    }
    if !code.len().is_multiple_of(INSN_LEN) {
        errors.push(CheckError::Decode(Diagnostic::new(
            (code.len() / INSN_LEN) as u32,
            None,
            format!(
                "{} trailing byte(s) do not form an instruction",
                code.len() % INSN_LEN
            ),
        )));
        return errors;
    }
    let n = (code.len() / INSN_LEN) as u32;
    for (pc, raw) in code.chunks_exact(INSN_LEN).enumerate() {
        let pc = pc as u32;
        let Some(insn) = Insn::decode(raw.try_into().expect("chunk size")) else {
            errors.push(CheckError::Decode(Diagnostic::new(
                pc,
                None,
                format!("undecodable instruction (opcode byte {})", raw[0]),
            )));
            continue;
        };
        if matches!(
            insn.op,
            Opcode::Jmp | Opcode::Jz | Opcode::Jnz | Opcode::Jlt | Opcode::Call
        ) && insn.imm >= n
        {
            errors.push(CheckError::Decode(Diagnostic::new(
                pc,
                None,
                format!(
                    "control target {} outside program of {n} instruction(s)",
                    insn.imm
                ),
            )));
        }
        let falls_through = !matches!(insn.op, Opcode::Halt | Opcode::Jmp | Opcode::Ret);
        if falls_through && pc + 1 >= n {
            errors.push(CheckError::Decode(Diagnostic::new(
                pc,
                None,
                "last instruction falls through off the end of the program",
            )));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use flicker_palvm::assemble;

    #[test]
    fn clean_program_passes() {
        let p = assemble("movi r0, 1\nhalt").unwrap();
        assert!(check(&p.code).is_empty());
    }

    #[test]
    fn undecodable_slot_flagged() {
        let mut code = assemble("halt").unwrap().code;
        code[0] = 200;
        let errs = check(&code);
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], CheckError::Decode(_)));
    }

    #[test]
    fn out_of_range_target_flagged() {
        // Hand-encode `jmp 9` in a 1-instruction program.
        let code = Insn {
            op: Opcode::Jmp,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 9,
        }
        .encode()
        .to_vec();
        let errs = check(&code);
        assert!(errs
            .iter()
            .any(|e| e.diagnostic().reason.contains("control target")));
    }

    #[test]
    fn fall_through_off_end_flagged() {
        let p = assemble("movi r0, 1").unwrap();
        let errs = check(&p.code);
        assert!(errs
            .iter()
            .any(|e| e.diagnostic().reason.contains("falls through")));
    }

    #[test]
    fn truncated_and_empty_flagged() {
        assert!(!check(&[]).is_empty());
        assert!(!check(&[0u8; 9]).is_empty());
    }
}
