//! Control-flow recovery over a decoded PalVM program: per-instruction
//! successors, routine (call-graph) structure, and natural loops.
//!
//! PalVM's `call`/`ret` use a host-side stack, so control flow is fully
//! recoverable from the bytes alone: routine entries are instruction 0
//! plus every `call` target, and a `ret` returns to the fall-through of
//! whichever call site reached the routine. Loop detection runs on each
//! routine's *intra-procedural* graph (a `call` falls through to its
//! continuation) so that a routine invoked from two sites does not fake a
//! cycle through its shared `ret`.

use flicker_palvm::{Insn, Opcode, INSN_LEN};
use std::collections::{BTreeMap, BTreeSet};

/// A decoded program plus recovered structure.
#[derive(Debug)]
pub struct Cfg {
    /// Decoded instructions, one per slot.
    pub insns: Vec<Insn>,
    /// Routine entry → member instruction indices (intra-procedural
    /// reachability from the entry).
    pub routines: BTreeMap<u32, BTreeSet<u32>>,
    /// Routine entry → entries of routines it calls.
    pub call_graph: BTreeMap<u32, BTreeSet<u32>>,
    /// Routine entry → indices of its reachable `ret` instructions.
    pub rets: BTreeMap<u32, Vec<u32>>,
    /// Call-site index → callee entry, for reachable `call`s.
    pub call_sites: BTreeMap<u32, u32>,
    /// Natural loops, one per back-edge.
    pub loops: Vec<Loop>,
}

/// One natural loop (per back-edge) in a routine's subgraph.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header (the back-edge target).
    pub header: u32,
    /// Back-edge source (the instruction that jumps back to the header).
    pub latch: u32,
    /// All instruction indices in the loop body (header included).
    pub nodes: BTreeSet<u32>,
}

/// Intra-procedural successors: `call` continues at its fall-through,
/// `ret`/`halt` terminate.
pub fn intra_succs(insn: &Insn, pc: u32) -> Vec<u32> {
    match insn.op {
        Opcode::Halt | Opcode::Ret => Vec::new(),
        Opcode::Jmp => vec![insn.imm],
        Opcode::Jz | Opcode::Jnz | Opcode::Jlt => vec![insn.imm, pc + 1],
        _ => vec![pc + 1],
    }
}

impl Cfg {
    /// Decodes `code` and recovers routines, the call graph, and loops.
    /// Callers run the decode check first; this returns `None` on any
    /// undecodable slot or out-of-range control target so later passes
    /// never see a malformed graph.
    pub fn build(code: &[u8]) -> Option<Cfg> {
        if code.is_empty() || !code.len().is_multiple_of(INSN_LEN) {
            return None;
        }
        let insns: Vec<Insn> = code
            .chunks_exact(INSN_LEN)
            .map(|raw| Insn::decode(raw.try_into().expect("chunk size")))
            .collect::<Option<_>>()?;
        let n = insns.len() as u32;
        for (pc, insn) in insns.iter().enumerate() {
            if matches!(
                insn.op,
                Opcode::Jmp | Opcode::Jz | Opcode::Jnz | Opcode::Jlt | Opcode::Call
            ) && insn.imm >= n
            {
                return None;
            }
            // A fall-through off the last slot would leave the program.
            let falls = !matches!(insn.op, Opcode::Halt | Opcode::Jmp | Opcode::Ret);
            if falls && pc as u32 + 1 >= n {
                return None;
            }
        }

        // Routine entries: instruction 0 plus every call target, then
        // intra-procedural reachability from each entry.
        let mut entries: BTreeSet<u32> = BTreeSet::from([0]);
        for insn in &insns {
            if insn.op == Opcode::Call {
                entries.insert(insn.imm);
            }
        }
        let mut routines = BTreeMap::new();
        let mut call_graph: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        let mut rets: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut call_sites = BTreeMap::new();
        for &entry in &entries {
            let mut members = BTreeSet::new();
            let mut stack = vec![entry];
            while let Some(pc) = stack.pop() {
                if !members.insert(pc) {
                    continue;
                }
                let insn = &insns[pc as usize];
                if insn.op == Opcode::Call {
                    call_graph.entry(entry).or_default().insert(insn.imm);
                    call_sites.insert(pc, insn.imm);
                }
                if insn.op == Opcode::Ret {
                    rets.entry(entry).or_default().push(pc);
                }
                stack.extend(intra_succs(insn, pc));
            }
            routines.insert(entry, members);
        }

        let loops = find_loops(&insns, &routines);
        Some(Cfg {
            insns,
            routines,
            call_graph,
            rets,
            call_sites,
            loops,
        })
    }

    /// The routine containing `pc` (smallest matching member set wins so a
    /// shared tail attributes to the innermost caller is not needed — any
    /// containing routine serves the loop queries we make).
    pub fn loops_containing(&self, pc: u32) -> impl Iterator<Item = &Loop> {
        self.loops.iter().filter(move |l| l.nodes.contains(&pc))
    }
}

/// Back-edge discovery (iterative DFS per routine) and natural-loop body
/// collection: for back-edge `latch → header`, the body is `header` plus
/// everything that reaches `latch` without passing through `header`.
fn find_loops(insns: &[Insn], routines: &BTreeMap<u32, BTreeSet<u32>>) -> Vec<Loop> {
    let mut loops = Vec::new();
    for (&entry, members) in routines {
        // DFS with colours: 0 unvisited, 1 on stack, 2 done.
        let mut colour: BTreeMap<u32, u8> = BTreeMap::new();
        let mut back_edges = Vec::new();
        let mut stack = vec![(entry, 0usize)];
        colour.insert(entry, 1);
        while let Some(&mut (pc, ref mut next)) = stack.last_mut() {
            let succs = intra_succs(&insns[pc as usize], pc);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match colour.get(&s).copied().unwrap_or(0) {
                    0 => {
                        colour.insert(s, 1);
                        stack.push((s, 0));
                    }
                    1 => back_edges.push((pc, s)),
                    _ => {}
                }
            } else {
                colour.insert(pc, 2);
                stack.pop();
            }
        }
        for (latch, header) in back_edges {
            // Reverse reachability from the latch, not crossing the header.
            let preds = predecessors(insns, members);
            let mut nodes = BTreeSet::from([header, latch]);
            let mut work = vec![latch];
            while let Some(pc) = work.pop() {
                if pc == header {
                    continue;
                }
                for &p in preds.get(&pc).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if nodes.insert(p) {
                        work.push(p);
                    }
                }
            }
            loops.push(Loop {
                header,
                latch,
                nodes,
            });
        }
    }
    loops
}

/// Intra-procedural predecessor map over one routine's members.
fn predecessors(insns: &[Insn], members: &BTreeSet<u32>) -> BTreeMap<u32, Vec<u32>> {
    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &pc in members {
        for s in intra_succs(&insns[pc as usize], pc) {
            preds.entry(s).or_default().push(pc);
        }
    }
    preds
}

/// Whether every path from `header` to `latch` inside `l` passes through
/// `node`: checked by deleting `node` and testing that `latch` becomes
/// unreachable from the header within the loop body.
pub fn cuts_loop(insns: &[Insn], l: &Loop, node: u32) -> bool {
    if node == l.latch {
        return true;
    }
    let mut seen = BTreeSet::from([l.header]);
    let mut work = vec![l.header];
    while let Some(pc) = work.pop() {
        if pc == node {
            continue;
        }
        if pc == l.latch {
            return false;
        }
        for s in intra_succs(&insns[pc as usize], pc) {
            if l.nodes.contains(&s) && seen.insert(s) {
                work.push(s);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use flicker_palvm::assemble;

    #[test]
    fn straight_line_has_no_loops() {
        let p = assemble("movi r0, 1\nhalt").unwrap();
        let cfg = Cfg::build(&p.code).unwrap();
        assert!(cfg.loops.is_empty());
        assert_eq!(cfg.routines.len(), 1);
    }

    #[test]
    fn simple_loop_found() {
        let p =
            assemble("movi r1, 5\nloop: movi r2, 1\nsub r1, r1, r2\njnz r1, loop\nhalt").unwrap();
        let cfg = Cfg::build(&p.code).unwrap();
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!((l.header, l.latch), (1, 3));
        assert_eq!(l.nodes, BTreeSet::from([1, 2, 3]));
        // The decrement (index 2) cuts the loop; the header trivially not.
        assert!(cuts_loop(&cfg.insns, l, 2));
    }

    #[test]
    fn call_does_not_fake_a_cycle() {
        // Two sites calling one routine: no loop anywhere.
        let p = assemble("call f\ncall f\nhalt\nf: addi r0, r0, 1\nret").unwrap();
        let cfg = Cfg::build(&p.code).unwrap();
        assert!(cfg.loops.is_empty());
        assert_eq!(cfg.call_sites.len(), 2);
        assert_eq!(cfg.rets[&3], vec![4]);
    }

    #[test]
    fn malformed_targets_refuse_to_build() {
        let p = assemble("movi r0, 1\nhalt").unwrap();
        let mut code = p.code.clone();
        code[0] = 17; // movi -> jmp with imm 1... in range; instead:
        assert!(Cfg::build(&code).is_some());
        let mut bad = p.code;
        bad[4] = 0xFF; // jmp target way out of range once opcode patched
        bad[0] = 17;
        assert!(Cfg::build(&bad).is_none());
        assert!(Cfg::build(&[]).is_none());
    }
}
