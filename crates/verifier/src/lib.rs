//! Static verifier for PalVM bytecode PALs.
//!
//! Flicker's premise (paper §1, §7.1) is that a remote party trusts only
//! the measured bytes. For bytecode PALs those bytes fully determine
//! behaviour, so bad programs can be rejected *before* `SKINIT` instead
//! of faulting mid-session — no wasted suspend/measure/teardown, and a
//! smaller effective TCB: the interpreter's runtime guards become a
//! second line of defence rather than the only one.
//!
//! The verifier decodes every instruction, recovers the control-flow
//! graph ([`cfg`]), and runs an abstract interpretation (unsigned
//! intervals + taint over the 16 registers, [`domain`]) to prove five
//! properties, each with its own module and [`CheckError`] variant:
//!
//! 1. [`decode`] — every slot decodes, no fall-through off the end, all
//!    branch/call targets in range.
//! 2. [`interp`] (memory bounds) — every `ldb/ldw/stb/stw` address
//!    provably stays inside the PAL's parameter window.
//! 3. [`termination`] — every loop back-edge is cut by a provably
//!    decreasing counter (else `MayDiverge`), and call depth is bounded.
//! 4. [`interp`] (hypercall discipline) — hypercall numbers are known,
//!    argument registers are written on every path, and unseal-derived
//!    (tainted) data never reaches an output sink without passing a
//!    declared release point (a hash digest).
//! 5. [`stack`] — no `ret` reachable with an empty abstract call stack.
//!
//! A [`Verdict`] collects every failed check with its instruction index,
//! register, and reason; [`Verdict::is_ok`] gates SLB construction.

pub mod cfg;
pub mod decode;
pub mod domain;
pub mod hcall;
pub mod interp;
pub mod stack;
pub mod termination;

use flicker_palvm::{Program, CALL_STACK_MAX, INSN_LEN};

/// Where one check failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Instruction index (slot) the finding anchors to.
    pub insn: u32,
    /// The register involved, when one is.
    pub register: Option<u8>,
    /// Human-readable reason.
    pub reason: String,
}

impl Diagnostic {
    pub(crate) fn new(insn: u32, register: Option<u8>, reason: impl Into<String>) -> Diagnostic {
        Diagnostic {
            insn,
            register,
            reason: reason.into(),
        }
    }
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.register {
            Some(r) => write!(f, "insn {}: r{}: {}", self.insn, r, self.reason),
            None => write!(f, "insn {}: {}", self.insn, self.reason),
        }
    }
}

/// A failed check, tagged by class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Undecodable bytes, bad control target, or fall-through off the end.
    Decode(Diagnostic),
    /// A load/store address may leave the PAL's parameter window.
    MemoryBounds(Diagnostic),
    /// A loop back-edge with no provably decreasing counter, or unbounded
    /// call depth.
    MayDiverge(Diagnostic),
    /// Unknown hypercall number, unwritten argument register, or tainted
    /// data reaching an output sink without a release point.
    Hypercall(Diagnostic),
    /// A `ret` reachable with an empty abstract call stack.
    StackHygiene(Diagnostic),
}

impl CheckError {
    /// The check class as a short label (for reports and counters).
    pub fn class(&self) -> &'static str {
        match self {
            CheckError::Decode(_) => "decode",
            CheckError::MemoryBounds(_) => "memory-bounds",
            CheckError::MayDiverge(_) => "termination",
            CheckError::Hypercall(_) => "hypercall",
            CheckError::StackHygiene(_) => "stack-hygiene",
        }
    }

    /// The underlying diagnostic.
    pub fn diagnostic(&self) -> &Diagnostic {
        match self {
            CheckError::Decode(d)
            | CheckError::MemoryBounds(d)
            | CheckError::MayDiverge(d)
            | CheckError::Hypercall(d)
            | CheckError::StackHygiene(d) => d,
        }
    }
}

impl core::fmt::Display for CheckError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.class(), self.diagnostic())
    }
}

/// The window and limits the verifier proves accesses against.
///
/// Defaults mirror the Figure-3 layout constants in
/// `flicker_core::slb` (the core asserts the two stay in sync); the
/// verifier crate keeps its own copy so it depends only on `flicker-palvm`.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Logical address of the input page (`INPUTS_OFFSET`).
    pub inputs_base: u32,
    /// Logical address of the output page (`OUTPUTS_OFFSET`).
    pub outputs_base: u32,
    /// Capacity of the input region before the saved-state stash.
    pub inputs_max: u32,
    /// Usable output bytes (`OUTPUTS_MAX`).
    pub outputs_max: u32,
    /// One past the last PAL-accessible logical address
    /// (`OVERFLOW_OFFSET`: end of the output page).
    pub window_end: u32,
    /// The VM's call-stack depth cap.
    pub call_stack_max: u32,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            inputs_base: 0x10000,
            outputs_base: 0x11000,
            inputs_max: 0xE00,
            outputs_max: 0x1000 - 4,
            window_end: 0x12000,
            call_stack_max: CALL_STACK_MAX as u32,
        }
    }
}

impl VerifierConfig {
    /// Addresses a PAL may read: both parameter pages.
    pub(crate) fn load_window(&self) -> domain::Interval {
        domain::Interval::new(self.inputs_base, self.window_end - 1)
    }

    /// Addresses a PAL may write: the input page (scratch) plus the usable
    /// output bytes (the driver owns the output page's length header).
    pub(crate) fn store_window(&self) -> domain::Interval {
        domain::Interval::new(self.inputs_base, self.outputs_base + self.outputs_max - 1)
    }

    /// The output-page byte range (the secret-flow sink).
    pub(crate) fn output_range(&self) -> domain::Interval {
        domain::Interval::new(self.outputs_base, self.window_end - 1)
    }
}

/// The verifier's result: program shape plus every failed check.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Instruction count.
    pub insns: usize,
    /// Reachable-loop count (a proxy for CFG complexity in reports).
    pub loops: usize,
    /// Every check failure, in discovery order.
    pub errors: Vec<CheckError>,
}

impl Verdict {
    /// True when every check passed.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// A human-readable multi-line report (the `palvm_tool verify` output).
    pub fn report(&self) -> String {
        let mut out = format!(
            "{} instruction(s), {} loop(s): {}\n",
            self.insns,
            self.loops,
            if self.is_ok() { "VERIFIED" } else { "REJECTED" }
        );
        for e in &self.errors {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }
}

/// Verifies raw encoded bytecode against the default window.
pub fn verify(code: &[u8]) -> Verdict {
    verify_with(code, &VerifierConfig::default())
}

/// Verifies an assembled [`Program`] against the default window.
pub fn verify_program(program: &Program) -> Verdict {
    verify(&program.code)
}

/// Verifies raw encoded bytecode against an explicit window/config.
pub fn verify_with(code: &[u8], config: &VerifierConfig) -> Verdict {
    let mut errors = decode::check(code);
    if !errors.is_empty() {
        return Verdict {
            insns: code.len() / INSN_LEN,
            loops: 0,
            errors,
        };
    }
    let cfg = cfg::Cfg::build(code).expect("decode check passed");
    let analysis = interp::analyze(&cfg, config);
    errors.extend(stack::check(&cfg));
    errors.extend(termination::check(&cfg, config, &analysis));
    errors.extend(interp::report(&cfg, config, &analysis));
    Verdict {
        insns: cfg.insns.len(),
        loops: cfg.loops.len(),
        errors,
    }
}
