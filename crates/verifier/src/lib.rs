//! Static verifier for PalVM bytecode PALs.
//!
//! Flicker's premise (paper §1, §7.1) is that a remote party trusts only
//! the measured bytes. For bytecode PALs those bytes fully determine
//! behaviour, so bad programs can be rejected *before* `SKINIT` instead
//! of faulting mid-session — no wasted suspend/measure/teardown, and a
//! smaller effective TCB: the interpreter's runtime guards become a
//! second line of defence rather than the only one.
//!
//! The verifier decodes every instruction, recovers the control-flow
//! graph ([`cfg`]), and runs an abstract interpretation (unsigned
//! intervals + a secret/public lattice over the 16 registers, plus
//! byte-granular shadow taint over the parameter window, [`domain`]) to
//! prove six properties, each with its own module and [`CheckError`]
//! variant(s):
//!
//! 1. [`decode`] — every slot decodes, no fall-through off the end, all
//!    branch/call targets in range.
//! 2. [`interp`] (memory bounds) — every `ldb/ldw/stb/stw` address
//!    provably stays inside the PAL's parameter window.
//! 3. [`termination`] — every loop back-edge is cut by a provably
//!    decreasing counter (else `MayDiverge`), and call depth is bounded.
//! 4. [`interp`] (hypercall discipline) — hypercall numbers are known,
//!    argument registers are written on every path, and unseal-derived
//!    (secret) data never reaches an output sink without passing a
//!    declared release point (a hash digest).
//! 5. [`stack`] — no `ret` reachable with an empty abstract call stack.
//! 6. [`ct`] (constant time) — no secret-dependent branch, loop bound,
//!    memory address, or hypercall operand; checked against the runtime
//!    shadow-taint oracle by the differential property test (see
//!    [`mod@oracle`]).
//!
//! A [`Verdict`] collects every failed check with its instruction index,
//! register, and reason; [`Verdict::is_ok`] gates SLB construction.

pub mod cfg;
pub mod ct;
pub mod decode;
pub mod domain;
pub mod hcall;
pub mod interp;
pub mod oracle;
pub mod stack;
pub mod termination;

use flicker_palvm::{Program, CALL_STACK_MAX, INSN_LEN};

/// Where one check failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Instruction index (slot) the finding anchors to.
    pub insn: u32,
    /// The register involved, when one is.
    pub register: Option<u8>,
    /// Human-readable reason.
    pub reason: String,
}

impl Diagnostic {
    pub(crate) fn new(insn: u32, register: Option<u8>, reason: impl Into<String>) -> Diagnostic {
        Diagnostic {
            insn,
            register,
            reason: reason.into(),
        }
    }
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.register {
            Some(r) => write!(f, "insn {}: r{}: {}", self.insn, r, self.reason),
            None => write!(f, "insn {}: {}", self.insn, self.reason),
        }
    }
}

/// A failed check, tagged by class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Undecodable bytes, bad control target, or fall-through off the end.
    Decode(Diagnostic),
    /// A load/store address may leave the PAL's parameter window.
    MemoryBounds(Diagnostic),
    /// A loop back-edge with no provably decreasing counter, or unbounded
    /// call depth.
    MayDiverge(Diagnostic),
    /// Unknown hypercall number, unwritten argument register, or tainted
    /// data reaching an output sink without a release point.
    Hypercall(Diagnostic),
    /// A `ret` reachable with an empty abstract call stack.
    StackHygiene(Diagnostic),
    /// A `jz`/`jnz`/`jlt` tests a secret (unseal-derived) register.
    SecretBranch(Diagnostic),
    /// A load/store address derives from a secret register.
    SecretIndex(Diagnostic),
    /// A secret-conditioned branch controls a loop: the iteration count
    /// leaks the secret through timing.
    SecretLoopBound(Diagnostic),
    /// A hypercall operand register holds a secret value (operands are
    /// host-observable; only data behind a release point may leave).
    SecretHcallArg(Diagnostic),
}

impl CheckError {
    /// The check class as a short label (for reports and counters).
    pub fn class(&self) -> &'static str {
        match self {
            CheckError::Decode(_) => "decode",
            CheckError::MemoryBounds(_) => "memory-bounds",
            CheckError::MayDiverge(_) => "termination",
            CheckError::Hypercall(_) => "hypercall",
            CheckError::StackHygiene(_) => "stack-hygiene",
            CheckError::SecretBranch(_) => "ct-branch",
            CheckError::SecretIndex(_) => "ct-index",
            CheckError::SecretLoopBound(_) => "ct-loop-bound",
            CheckError::SecretHcallArg(_) => "ct-hcall-arg",
        }
    }

    /// True for the constant-time pass's findings (the `ct-*` classes).
    pub fn is_ct(&self) -> bool {
        self.class().starts_with("ct-")
    }

    /// The underlying diagnostic.
    pub fn diagnostic(&self) -> &Diagnostic {
        match self {
            CheckError::Decode(d)
            | CheckError::MemoryBounds(d)
            | CheckError::MayDiverge(d)
            | CheckError::Hypercall(d)
            | CheckError::StackHygiene(d)
            | CheckError::SecretBranch(d)
            | CheckError::SecretIndex(d)
            | CheckError::SecretLoopBound(d)
            | CheckError::SecretHcallArg(d) => d,
        }
    }
}

impl core::fmt::Display for CheckError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.class(), self.diagnostic())
    }
}

/// The window and limits the verifier proves accesses against.
///
/// Defaults mirror the Figure-3 layout constants in
/// `flicker_core::slb` (the core asserts the two stay in sync); the
/// verifier crate keeps its own copy so it depends only on `flicker-palvm`.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Logical address of the input page (`INPUTS_OFFSET`).
    pub inputs_base: u32,
    /// Logical address of the output page (`OUTPUTS_OFFSET`).
    pub outputs_base: u32,
    /// Capacity of the input region before the saved-state stash.
    pub inputs_max: u32,
    /// Usable output bytes (`OUTPUTS_MAX`).
    pub outputs_max: u32,
    /// One past the last PAL-accessible logical address
    /// (`OVERFLOW_OFFSET`: end of the output page).
    pub window_end: u32,
    /// The VM's call-stack depth cap.
    pub call_stack_max: u32,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            inputs_base: 0x10000,
            outputs_base: 0x11000,
            inputs_max: 0xE00,
            outputs_max: 0x1000 - 4,
            window_end: 0x12000,
            call_stack_max: CALL_STACK_MAX as u32,
        }
    }
}

impl VerifierConfig {
    /// Addresses a PAL may read: both parameter pages.
    pub(crate) fn load_window(&self) -> domain::Interval {
        domain::Interval::new(self.inputs_base, self.window_end - 1)
    }

    /// Addresses a PAL may write: the input page (scratch) plus the usable
    /// output bytes (the driver owns the output page's length header).
    pub(crate) fn store_window(&self) -> domain::Interval {
        domain::Interval::new(self.inputs_base, self.outputs_base + self.outputs_max - 1)
    }

    /// The output-page byte range (the secret-flow sink).
    pub(crate) fn output_range(&self) -> domain::Interval {
        domain::Interval::new(self.outputs_base, self.window_end - 1)
    }
}

/// The verifier's result: program shape plus every failed check.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Instruction count.
    pub insns: usize,
    /// Reachable-loop count (a proxy for CFG complexity in reports).
    pub loops: usize,
    /// Every check failure, in discovery order.
    pub errors: Vec<CheckError>,
}

impl Verdict {
    /// True when every check passed.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// True when the constant-time pass found nothing (the coarser
    /// signal `run_session` records as `verify.ct_accept/ct_reject`).
    pub fn ct_clean(&self) -> bool {
        !self.errors.iter().any(CheckError::is_ct)
    }

    /// A human-readable multi-line report (the `palvm_tool verify` output).
    pub fn report(&self) -> String {
        let mut out = format!(
            "{} instruction(s), {} loop(s): {}\n",
            self.insns,
            self.loops,
            if self.is_ok() { "VERIFIED" } else { "REJECTED" }
        );
        for e in &self.errors {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }

    /// The machine-readable report `palvm_tool verify --json` and
    /// `analyze --json` emit: one stable object per verdict —
    /// `{"insns":N,"loops":N,"verdict":"accepted"|"rejected",`
    /// `"ct_clean":bool,"findings":[{class,insn,register,reason}...]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"insns\":{},\"loops\":{},\"verdict\":\"{}\",\"ct_clean\":{},\"findings\":[",
            self.insns,
            self.loops,
            if self.is_ok() { "accepted" } else { "rejected" },
            self.ct_clean(),
        );
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let d = e.diagnostic();
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"insn\":{},\"register\":{},\"reason\":\"{}\"}}",
                e.class(),
                d.insn,
                d.register.map_or("null".to_string(), |r| r.to_string()),
                json_escape(&d.reason),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Verifies raw encoded bytecode against the default window.
pub fn verify(code: &[u8]) -> Verdict {
    verify_with(code, &VerifierConfig::default())
}

/// Verifies an assembled [`Program`] against the default window.
pub fn verify_program(program: &Program) -> Verdict {
    verify(&program.code)
}

/// Verifies raw encoded bytecode against an explicit window/config.
pub fn verify_with(code: &[u8], config: &VerifierConfig) -> Verdict {
    let mut errors = decode::check(code);
    if !errors.is_empty() {
        return Verdict {
            insns: code.len() / INSN_LEN,
            loops: 0,
            errors,
        };
    }
    let cfg = cfg::Cfg::build(code).expect("decode check passed");
    let analysis = interp::analyze(&cfg, config);
    errors.extend(stack::check(&cfg));
    errors.extend(termination::check(&cfg, config, &analysis));
    errors.extend(interp::report(&cfg, config, &analysis));
    errors.extend(ct::check(&cfg, &analysis));
    Verdict {
        insns: cfg.insns.len(),
        loops: cfg.loops.len(),
        errors,
    }
}
