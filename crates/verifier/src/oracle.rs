//! The differential taint oracle: runs generated programs under the
//! runtime shadow-taint monitor and checks the verifier's constant-time
//! verdict against what actually happens.
//!
//! The property this module exists to test (and that
//! `tests/differential.rs` asserts over thousands of programs):
//! **verifier acceptance implies no runtime taint fault** — the static
//! shadow set is a superset of the runtime one, so a program the `ct`
//! pass clears can never trip `VmFault::TaintFault` under
//! [`flicker_palvm::shadow::ShadowTaint`]. A divergence is a verifier
//! soundness bug; every one is captured as a [`Divergence`] record and
//! can be dumped as JSONL for offline triage (the flight recorder
//! `palvm_tool analyze --differential` and the proptest harness share).
//!
//! The generator is deterministic (xorshift64 over a caller seed): the
//! same seed reproduces the same program byte-for-byte, which is what
//! makes a dumped divergence a *repro*, not just an anecdote.

use crate::{verify, Verdict, VerifierConfig};
use flicker_palvm::shadow::ShadowTaint;
use flicker_palvm::{run_with_hook, Insn, Opcode, VmBus, VmFault, INSN_LEN, NUM_REGS};

/// Fuel for oracle runs (matches the soundness harness).
const FUEL: u64 = 100_000;

/// A window-enforcing bus mirroring the SLB Core's `VmBusAdapter`:
/// loads anywhere in the parameter window, stores up to the usable
/// output bytes, hypercalls 0–6 with honest memory effects. Registers
/// the verifier models as unknown (`r0` after `hcall 3`/`hcall 6`) are
/// driven from an adversarial xorshift stream.
pub struct OracleBus {
    cfg: VerifierConfig,
    ram: Vec<u8>,
    stream: u64,
    /// Bytes emitted through hypercalls 0/1/5.
    pub output: Vec<u8>,
}

impl OracleBus {
    /// A bus over the default window with `inputs` at the input base.
    pub fn new(inputs: &[u8], seed: u64) -> OracleBus {
        let cfg = VerifierConfig::default();
        let mut ram = vec![0u8; (cfg.window_end - cfg.inputs_base) as usize];
        ram[..inputs.len()].copy_from_slice(inputs);
        OracleBus {
            cfg,
            ram,
            stream: seed | 1,
            output: Vec::new(),
        }
    }

    fn next(&mut self) -> u32 {
        self.stream ^= self.stream << 13;
        self.stream ^= self.stream >> 7;
        self.stream ^= self.stream << 17;
        self.stream as u32
    }

    fn load_index(&self, addr: u32) -> Result<usize, String> {
        if addr < self.cfg.inputs_base || addr >= self.cfg.window_end {
            return Err(format!("load outside window ({addr:#x})"));
        }
        Ok((addr - self.cfg.inputs_base) as usize)
    }

    fn store_index(&self, addr: u32) -> Result<usize, String> {
        let store_end = self.cfg.outputs_base + self.cfg.outputs_max;
        if addr < self.cfg.inputs_base || addr >= store_end {
            return Err(format!("store outside window ({addr:#x})"));
        }
        Ok((addr - self.cfg.inputs_base) as usize)
    }

    fn read_span(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, String> {
        let end = addr
            .checked_add(len)
            .ok_or_else(|| "span wraps the address space".to_string())?;
        let mut out = Vec::with_capacity(len as usize);
        for a in addr..end {
            out.push(self.ram[self.load_index(a)?]);
        }
        Ok(out)
    }

    fn write_span(&mut self, addr: u32, bytes: &[u8]) -> Result<(), String> {
        for (i, b) in bytes.iter().enumerate() {
            let idx = self.store_index(addr.wrapping_add(i as u32))?;
            self.ram[idx] = *b;
        }
        Ok(())
    }
}

impl VmBus for OracleBus {
    fn load_u8(&mut self, addr: u32) -> Result<u8, String> {
        let idx = self.load_index(addr)?;
        Ok(self.ram[idx])
    }

    fn store_u8(&mut self, addr: u32, v: u8) -> Result<(), String> {
        let idx = self.store_index(addr)?;
        self.ram[idx] = v;
        Ok(())
    }

    fn hcall(&mut self, num: u32, regs: &mut [u32; NUM_REGS]) -> Result<(), String> {
        match num {
            0 | 1 => {
                self.output.push(regs[0] as u8);
                Ok(())
            }
            2 => {
                let data = self.read_span(regs[1], regs[2])?;
                let digest = flicker_crypto::sha1::sha1(&data);
                self.write_span(regs[3], &digest)
            }
            3 => {
                regs[0] = self.next();
                Ok(())
            }
            4 => self.read_span(regs[1], 20).map(|_| ()),
            5 => {
                if regs[2] > self.cfg.outputs_max {
                    return Err("output larger than the output page".to_string());
                }
                let data = self.read_span(regs[1], regs[2])?;
                self.output.extend_from_slice(&data);
                Ok(())
            }
            6 => {
                // "Unseal" by exposing the blob bytes as plaintext —
                // exactly the span the shadow monitor marks secret. The
                // reported length register is host-chosen (adversarial).
                let blob = self.read_span(regs[1], regs[2])?;
                self.write_span(regs[3], &blob)?;
                regs[0] = self.next();
                Ok(())
            }
            _ => Err(format!("unknown hypercall {num}")),
        }
    }
}

/// A tiny deterministic RNG so sweeps are reproducible from one seed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn insn(op: Opcode, rd: u8, rs1: u8, rs2: u8, imm: u32) -> Insn {
    Insn {
        op,
        rd,
        rs1,
        rs2,
        imm,
    }
}

/// Appends one program fragment chosen by `kind`. Kinds 0–6 are the
/// benign envelope (arithmetic, window-respecting memory, counted loops,
/// clean hypercalls, call/ret); kinds 7–12 are *secret-flavoured*:
/// unseal, loads from the unseal landing zone, hash release, branches
/// and stores on maybe-secret registers, and register output — the mix
/// that makes the ct verdict non-trivial in both directions.
pub fn push_fragment(code: &mut Vec<Insn>, kind: u8, a: u8, b: u8, c: u8, imm: u32) {
    use Opcode::*;
    match kind % 13 {
        0 => {
            const OPS: [Opcode; 12] =
                [Add, Sub, Mul, Divu, Modu, And, Or, Xor, Shl, Shr, Mov, Addi];
            let op = OPS[(b % 12) as usize];
            let (rd, rs1, rs2) = (a % 12, c % 12, (a ^ c) % 12);
            match op {
                Mov => code.push(insn(Mov, rd, rs1, 0, 0)),
                Addi => code.push(insn(Addi, rd, rs1, 0, imm % 4096)),
                _ => code.push(insn(op, rd, rs1, rs2, 0)),
            }
        }
        1 => code.push(insn(Movi, a % 12, 0, 0, imm)),
        2 => {
            let op = if b.is_multiple_of(2) { Ldb } else { Ldw };
            code.push(insn(op, a % 12, 14, 0, imm % (0xE00 - 4)));
        }
        3 => {
            let (op, base, bound) = if b.is_multiple_of(2) {
                (Stw, 14u8, 0xE00 - 4)
            } else {
                (Stb, 13u8, 0x1000 - 8)
            };
            code.push(insn(op, 0, base, c % 12, imm % bound));
        }
        4 => {
            let counter = a % 6;
            let step = 6 + b % 3;
            let here = code.len() as u32;
            code.push(insn(Movi, counter, 0, 0, 1 + imm % 24));
            code.push(insn(Add, 9, 10, 11, 0));
            code.push(insn(Movi, step, 0, 0, 1));
            code.push(insn(Sub, counter, counter, step, 0));
            code.push(insn(Jnz, 0, counter, 0, here + 1));
        }
        5 => match c % 4 {
            0 => {
                code.push(insn(Movi, 0, 0, 0, imm));
                code.push(insn(Hcall, 0, 0, 0, (b % 2) as u32));
            }
            1 => {
                code.push(insn(Hcall, 0, 0, 0, 3));
                code.push(insn(And, a % 12, 0, 0, 0));
            }
            2 => {
                code.push(insn(Mov, 1, 14, 0, 0));
                code.push(insn(Movi, 2, 0, 0, 1 + imm % 64));
                code.push(insn(Addi, 3, 14, 0, 0x200));
                code.push(insn(Hcall, 0, 0, 0, 2));
            }
            _ => {
                code.push(insn(Mov, 1, 14, 0, 0));
                code.push(insn(Hcall, 0, 0, 0, 4));
            }
        },
        6 => {
            let here = code.len() as u32;
            code.push(insn(Call, 0, 0, 0, here + 2));
            code.push(insn(Jmp, 0, 0, 0, here + 4));
            code.push(insn(Add, 9, 10, 11, 0));
            code.push(insn(Ret, 0, 0, 0, 0));
        }
        // Unseal a prefix of the inputs into the landing zone at
        // r14+0x800: the taint source. At least 32 bytes, so the loads
        // of kind 8 always land inside the secret span.
        7 => {
            code.push(insn(Mov, 1, 14, 0, 0));
            code.push(insn(Movi, 2, 0, 0, 32 + imm % 64));
            code.push(insn(Addi, 3, 14, 0, 0x800));
            code.push(insn(Hcall, 0, 0, 0, 6));
        }
        // Load from the landing zone into r5 (the register the
        // secret-consuming fragments favour): secret iff an unseal ran
        // earlier.
        8 => {
            code.push(insn(Addi, 10, 14, 0, 0x800 + imm % 32));
            code.push(insn(Ldb, 5, 10, 0, 0));
        }
        // Hash-release the landing zone into scratch: declassifies the
        // digest bytes wherever they land.
        9 => {
            code.push(insn(Addi, 1, 14, 0, 0x800));
            code.push(insn(Movi, 2, 0, 0, 1 + imm % 64));
            code.push(insn(Addi, 3, 14, 0, 0x400 + 32 * ((b % 4) as u32)));
            code.push(insn(Hcall, 0, 0, 0, 2));
        }
        // Branch on r5 (often the landing-zone byte) or an arbitrary
        // low register: a ct violation exactly when it is secret here.
        10 => {
            let here = code.len() as u32;
            let r = if b.is_multiple_of(2) { 5 } else { c % 12 };
            code.push(insn(Jz, 0, r, 0, here + 2));
            code.push(insn(Add, 9, 10, 11, 0));
        }
        // Store a low register into scratch: propagates whatever taint
        // it carries into memory.
        11 => {
            let r = if b.is_multiple_of(2) { 5 } else { c % 12 };
            code.push(insn(Stb, 0, 14, r, 0x600 + imm % 0x100));
        }
        // Emit r5 or an arbitrary register: a flow violation when
        // secret.
        _ => {
            let r = if b.is_multiple_of(2) { 5 } else { c % 12 };
            code.push(insn(Mov, 0, r, 0, 0));
            code.push(insn(Hcall, 0, 0, 0, (b % 2) as u32));
        }
    }
}

/// Generates one complete, halt-terminated program from a seed. Kind
/// selection over-weights the secret-flavoured fragments (unseal,
/// secret load, secret branch) so the ct verdict is exercised in both
/// directions rather than being a rare accident.
pub fn generate_program(seed: u64) -> Vec<u8> {
    let mut rng = XorShift(seed | 1);
    let n_frags = 2 + rng.below(9) as usize;
    let mut insns = Vec::new();
    for _ in 0..n_frags {
        let kind = match rng.below(16) as u8 {
            13 => 7,  // extra weight: unseal
            14 => 8,  // extra weight: load from the landing zone
            15 => 10, // extra weight: branch
            k => k,
        };
        let (a, b, c) = (rng.next() as u8, rng.next() as u8, rng.next() as u8);
        let imm = rng.next() as u32;
        push_fragment(&mut insns, kind, a, b, c, imm);
    }
    insns.push(insn(Opcode::Halt, 0, 0, 0, 0));
    let mut code = Vec::with_capacity(insns.len() * INSN_LEN);
    for i in &insns {
        code.extend_from_slice(&i.encode());
    }
    code
}

/// Runs `code` under the shadow-taint monitor on an [`OracleBus`], with
/// the SLB Core's start-up conventions (r14/r13/r12).
pub fn run_shadowed(code: &[u8], seed: u64) -> Result<flicker_palvm::VmExit, VmFault> {
    let cfg = VerifierConfig::default();
    let inputs: Vec<u8> = (0..cfg.inputs_max)
        .map(|i| (i as u8).wrapping_mul(37))
        .collect();
    let mut bus = OracleBus::new(&inputs, seed);
    let mut regs = [0u32; NUM_REGS];
    regs[14] = cfg.inputs_base;
    regs[13] = cfg.outputs_base;
    regs[12] = inputs.len() as u32;
    let mut hook = ShadowTaint::new(cfg.inputs_base, cfg.window_end - cfg.inputs_base);
    run_with_hook(code, &mut bus, FUEL, regs, &mut hook)
}

/// Faults an accepted program may legitimately raise (availability, not
/// safety): the environment absorbs these.
pub fn allowed_fault(fault: &VmFault) -> bool {
    matches!(
        fault,
        VmFault::OutOfFuel
            | VmFault::DivideByZero(_)
            | VmFault::HcallFault { .. }
            | VmFault::CallStackOverflow(_)
    )
}

/// One verifier-vs-runtime disagreement: the flight-recorder record.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed that reproduces the program and the bus stream.
    pub seed: u64,
    /// The program bytes, hex-encoded.
    pub code_hex: String,
    /// The fault the accepted program raised.
    pub fault: String,
    /// The static verdict, as its JSON report.
    pub verdict_json: String,
}

impl Divergence {
    /// One JSONL line for the flight recorder.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"seed\":{},\"code\":\"{}\",\"fault\":\"{}\",\"verdict\":{}}}",
            self.seed,
            self.code_hex,
            crate::json_escape(&self.fault),
            self.verdict_json,
        )
    }
}

/// Writes divergences as JSONL (one record per line) to `path`.
pub fn dump_divergences(divergences: &[Divergence], path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    for d in divergences {
        writeln!(f, "{}", d.to_json_line())?;
    }
    Ok(())
}

fn hex(code: &[u8]) -> String {
    code.iter().map(|b| format!("{b:02x}")).collect()
}

/// How one generated program fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Accepted and ran without a disallowed fault.
    AcceptedClean,
    /// Rejected, with at least one `ct-*` finding.
    RejectedCt,
    /// Rejected on other checks only.
    RejectedOther,
    /// Accepted but faulted at runtime: a soundness divergence.
    Diverged,
}

/// Verifies one program and, if accepted, runs it under the monitor.
/// Returns the outcome and the divergence record if there is one.
pub fn check_program(code: &[u8], seed: u64) -> (Outcome, Verdict, Option<Divergence>) {
    let verdict = verify(code);
    if !verdict.is_ok() {
        let outcome = if verdict.ct_clean() {
            Outcome::RejectedOther
        } else {
            Outcome::RejectedCt
        };
        return (outcome, verdict, None);
    }
    match run_shadowed(code, seed) {
        Ok(_) => (Outcome::AcceptedClean, verdict, None),
        Err(f) if allowed_fault(&f) => (Outcome::AcceptedClean, verdict, None),
        Err(f) => {
            let d = Divergence {
                seed,
                code_hex: hex(code),
                fault: f.to_string(),
                verdict_json: verdict.to_json(),
            };
            (Outcome::Diverged, verdict, Some(d))
        }
    }
}

/// Aggregate result of a deterministic sweep.
#[derive(Debug, Default)]
pub struct SweepStats {
    /// Programs generated.
    pub total: usize,
    /// Accepted and taint-clean at runtime.
    pub accepted: usize,
    /// Rejected with a `ct-*` finding.
    pub ct_rejected: usize,
    /// Rejected on non-ct checks only.
    pub rejected_other: usize,
    /// Soundness divergences (must be empty).
    pub divergences: Vec<Divergence>,
}

impl SweepStats {
    /// Machine-readable summary (the `analyze --differential` output).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"total\":{},\"accepted\":{},\"ct_rejected\":{},\"rejected_other\":{},\"divergences\":[",
            self.total, self.accepted, self.ct_rejected, self.rejected_other,
        );
        for (i, d) in self.divergences.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json_line());
        }
        out.push_str("]}");
        out
    }
}

/// Generates and checks `count` programs from `seed`. Deterministic:
/// the same `(count, seed)` always examines the same programs.
pub fn differential_sweep(count: usize, seed: u64) -> SweepStats {
    let mut stats = SweepStats::default();
    for i in 0..count {
        let program_seed = seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            | 1;
        let code = generate_program(program_seed);
        let (outcome, _, divergence) = check_program(&code, program_seed);
        stats.total += 1;
        match outcome {
            Outcome::AcceptedClean => stats.accepted += 1,
            Outcome::RejectedCt => stats.ct_rejected += 1,
            Outcome::RejectedOther => stats.rejected_other += 1,
            Outcome::Diverged => stats.divergences.extend(divergence),
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hcall::SPECS;

    /// The runtime monitor's hypercall-operand table must match the
    /// verifier's spec table register-for-register, or the two halves of
    /// the ct discipline would silently drift apart.
    #[test]
    fn shadow_hcall_args_match_verifier_specs() {
        for spec in SPECS {
            assert_eq!(
                flicker_palvm::shadow::hcall_args(spec.num),
                spec.args,
                "hcall {} operand tables diverge",
                spec.num
            );
        }
        assert!(flicker_palvm::shadow::hcall_args(99).is_empty());
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate_program(42), generate_program(42));
        // (`seed | 1` means 42/43 share a stream; 44 does not.)
        assert_ne!(generate_program(42), generate_program(44));
    }

    #[test]
    fn divergence_record_round_trips_as_json_line() {
        let d = Divergence {
            seed: 7,
            code_hex: "00".into(),
            fault: "taint fault at insn 3: \"quoted\"".into(),
            verdict_json: "{\"x\":1}".into(),
        };
        let line = d.to_json_line();
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.starts_with("{\"seed\":7,"));
    }
}
