//! Check 5: stack hygiene.
//!
//! PalVM's `call`/`ret` use a host-side stack, so the abstract call
//! stack is fully determined by control flow: execution starts in
//! routine 0 with an empty stack, a `call` pushes, a `ret` pops. A `ret`
//! reachable *intra-procedurally* from instruction 0 (i.e. without an
//! enclosing `call`) would pop an empty stack — the VM's
//! `CallStackUnderflow` fault, caught here before launch.

use crate::cfg::Cfg;
use crate::{CheckError, Diagnostic};

/// Runs the stack-hygiene check.
pub fn check(cfg: &Cfg) -> Vec<CheckError> {
    cfg.rets
        .get(&0)
        .map(|rets| {
            rets.iter()
                .map(|&pc| {
                    CheckError::StackHygiene(Diagnostic::new(
                        pc,
                        None,
                        "ret reachable with an empty call stack",
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use flicker_palvm::assemble;

    #[test]
    fn balanced_call_ret_passes() {
        let p = assemble("call f\nhalt\nf: addi r0, r0, 1\nret").unwrap();
        let cfg = Cfg::build(&p.code).unwrap();
        assert!(check(&cfg).is_empty());
    }

    #[test]
    fn bare_ret_flagged() {
        let p = assemble("movi r0, 1\nret").unwrap();
        let cfg = Cfg::build(&p.code).unwrap();
        let errs = check(&cfg);
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], CheckError::StackHygiene(_)));
        assert_eq!(errs[0].diagnostic().insn, 1);
    }

    #[test]
    fn jump_into_shared_tail_flagged() {
        // After f returns, main jumps into f's body: the second arrival
        // at `ret` has an empty stack.
        let p = assemble("call f\njmp f\nf: addi r0, r0, 1\nret").unwrap();
        let cfg = Cfg::build(&p.code).unwrap();
        assert!(!check(&cfg).is_empty());
    }
}
